# Build micached, the simulation-as-a-service server, into a minimal
# image. The module is dependency-free, so the build stage needs nothing
# beyond the toolchain and the final stage nothing beyond the binary.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY cmd/ cmd/
COPY internal/ internal/
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/micached ./cmd/micached

FROM alpine:3.20
# wget ships in busybox and serves the compose healthcheck; no curl needed.
RUN adduser -D -H micached
USER micached
COPY --from=build /out/micached /usr/local/bin/micached
EXPOSE 8080
ENTRYPOINT ["/usr/local/bin/micached"]
