package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(100)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1100 {
		t.Fatalf("Counter = %d, want %d", got, 8*1100)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	g.Add(4)
	if got := g.Load(); got != 7 {
		t.Fatalf("Gauge = %d, want 7", got)
	}
}

func TestWriteText(t *testing.T) {
	var b strings.Builder
	err := WriteText(&b, []Metric{
		{Name: "app_requests_total", Help: "Requests served.", Kind: KindCounter, Value: 42},
		{Name: "app_queue_depth", Help: "Waiting requests.", Kind: KindGauge, Value: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "# HELP app_requests_total Requests served.\n" +
		"# TYPE app_requests_total counter\n" +
		"app_requests_total 42\n" +
		"# HELP app_queue_depth Waiting requests.\n" +
		"# TYPE app_queue_depth gauge\n" +
		"app_queue_depth 3\n"
	if b.String() != want {
		t.Fatalf("WriteText:\n%s\nwant:\n%s", b.String(), want)
	}
}
