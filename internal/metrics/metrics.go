// Package metrics provides dependency-free atomic counters and gauges
// plus a Prometheus-text-format renderer. It exists so simulation-side
// packages (internal/core's SystemPool, the result cache) can report
// operational counters without importing any HTTP machinery: they
// expose metrics.Counter values, and the serving layer (cmd/micached)
// collects them into []Metric and renders the exposition text.
//
// Only the fraction of the Prometheus exposition format the server
// needs is implemented: untyped-free counters and gauges, one sample
// per family, no labels. That keeps the package at zero dependencies
// and a few dozen lines, which is the point.
package metrics

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways
// (queue depth, inflight runs, cache occupancy). The zero value is
// ready to use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Kind is the Prometheus metric type of one family.
type Kind uint8

const (
	// KindCounter renders as "# TYPE name counter".
	KindCounter Kind = iota
	// KindGauge renders as "# TYPE name gauge".
	KindGauge
)

func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// Metric is one sample ready for WriteText: a family name, its help
// line, its kind, and the current value. Values are float64 because
// that is what the exposition format carries; counters above 2^53
// would lose precision, far beyond anything a simulation server
// accumulates.
type Metric struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64
}

// WriteText renders the samples in Prometheus text exposition format
// (version 0.0.4): a HELP and TYPE comment per family followed by the
// sample line. Families render in the order given.
func WriteText(w io.Writer, ms []Metric) error {
	for _, m := range ms {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.Name, m.Help, m.Name, m.Kind, m.Name,
			strconv.FormatFloat(m.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
