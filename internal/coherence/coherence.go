// Package coherence implements the GPU-side coherence semantics the paper
// studies: the three static caching policies (Uncached, CacheR, CacheRW),
// write-through/self-invalidate behaviour at kernel boundaries, the
// system-scope dirty flush, and the directory hop that connects the GPU
// L2 to the conventional CPU coherence fabric.
package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/mem"
)

// Policy selects one of the paper's static GPU caching policies.
type Policy int

const (
	// Uncached: loads and stores bypass all GPU caches.
	Uncached Policy = iota
	// CacheR: loads cache in L1 and L2; stores bypass all GPU caches.
	CacheR
	// CacheRW: loads cache in L1 and L2; stores bypass L1 and combine
	// in the L2 until a system-scope flush.
	CacheRW
)

// Policies lists the static policies in presentation order.
var Policies = []Policy{Uncached, CacheR, CacheRW}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Uncached:
		return "Uncached"
	case CacheR:
		return "CacheR"
	case CacheRW:
		return "CacheRW"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "Uncached", "uncached":
		return Uncached, nil
	case "CacheR", "cacher":
		return CacheR, nil
	case "CacheRW", "cacherw":
		return CacheRW, nil
	}
	return 0, fmt.Errorf("coherence: unknown policy %q", s)
}

// CachesLoads reports whether loads allocate in GPU caches under p.
func (p Policy) CachesLoads() bool { return p != Uncached }

// CombinesStores reports whether stores combine in the L2 under p.
func (p Policy) CombinesStores() bool { return p == CacheRW }

// Directory models the shared system directory between the GPU L2 and
// memory: every GPU request that leaves the L2 pays a fabric hop. It is
// where a tightly coupled CPU would also attach; the paper's workloads
// are GPU-resident between kernel launches, so the CPU contributes launch
// latency (modelled in gpu.Config) rather than traffic.
type Directory struct {
	sim     *event.Sim
	lower   cache.Port
	latency event.Cycle

	// hop defers requests across the fabric without allocating a
	// closure per request.
	hop *event.Queue[*mem.Request]

	// Requests counts traffic through the directory.
	Requests uint64
}

// NewDirectory builds a directory hop in front of lower.
func NewDirectory(sim *event.Sim, lower cache.Port, latency event.Cycle) *Directory {
	if sim == nil || lower == nil {
		panic("coherence: directory needs a sim and a lower level")
	}
	d := &Directory{sim: sim, lower: lower, latency: latency}
	d.hop = event.NewQueue(sim, func(req *mem.Request) { d.lower.Submit(req) })
	return d
}

// BoundaryLatency declares the minimum delay between the directory
// accepting a request and presenting it at its lower port — the fabric
// hop latency. Zero means the hand-off is synchronous (no cut-edge
// slack at all); partition builders must ignore a zero bound rather
// than treat it as lookahead.
func (d *Directory) BoundaryLatency() event.Cycle { return d.latency }

// Submit implements cache.Port.
func (d *Directory) Submit(req *mem.Request) {
	d.Requests++
	if d.latency == 0 {
		d.lower.Submit(req)
		return
	}
	d.hop.Push(d.latency, req)
}

// Reset drops undelivered fabric traffic and zeroes the request counter,
// returning the directory to its just-built state. Call it together with
// the owning Sim's Reset.
func (d *Directory) Reset() {
	d.hop.Reset()
	d.Requests = 0
}

// Engine applies a Policy to a built memory hierarchy: it decorates GPU
// requests and performs the coherence actions at kernel boundaries and
// workload end.
type Engine struct {
	// PolicyKind is the active static policy.
	PolicyKind Policy
	// L1s are the per-CU L1 caches, across every tile.
	L1s []*cache.Cache
	// L2s are the banked L2 slices, one per GPU tile (a single-tile
	// system has exactly one). Coherence actions apply to all of them:
	// kernel-boundary self-invalidation touches every slice, and a
	// system-scope flush completes only when every slice has drained.
	L2s []*cache.Banked
	// Sim is the event engine.
	Sim *event.Sim
	// SyncLatency is the fixed cost of a kernel-boundary coherence
	// action (invalidate trigger, pipeline drain).
	SyncLatency event.Cycle

	// Flushes and Invalidations count coherence actions performed.
	Flushes, Invalidations uint64
}

// Reset zeroes the coherence-action counters. The engine holds no other
// run state; the caches it acts on have their own Reset.
func (e *Engine) Reset() {
	e.Flushes = 0
	e.Invalidations = 0
}

// Decorate marks a GPU request according to the policy. It matches the
// gpu.GPU Decorate hook.
func (e *Engine) Decorate(req *mem.Request) {
	if e.PolicyKind == Uncached {
		req.Bypass = true
	}
	// CacheR vs CacheRW store handling is configured structurally:
	// the L1 never store-allocates, and the L2's StoreAllocate flag is
	// set when the hierarchy is built (see internal/core).
}

// KernelBoundary performs the coherence actions after kernel k completes,
// then resumes the GPU. It matches the gpu.GPU OnKernelDone hook.
func (e *Engine) KernelBoundary(k *gpu.Kernel, resume func()) {
	e.boundary(k != nil && k.SystemSync, resume)
}

// Finish performs the workload-final system-scope synchronization: all
// dirty GPU data must be visible to the CPU, so the L2 flushes.
func (e *Engine) Finish(done func()) {
	e.boundary(true, done)
}

func (e *Engine) boundary(systemScope bool, resume func()) {
	if resume == nil {
		resume = func() {}
	}
	if e.PolicyKind.CachesLoads() {
		e.Invalidations++
		for _, l1 := range e.L1s {
			l1.InvalidateClean()
		}
		for _, l2 := range e.L2s {
			l2.InvalidateClean()
		}
	}
	after := func() { e.Sim.Schedule(e.SyncLatency, resume) }
	if systemScope && e.PolicyKind.CombinesStores() {
		e.Flushes++
		if len(e.L2s) == 1 {
			// The single-slice fast path keeps the pre-topology event
			// schedule byte-identical: no barrier closure between the
			// flush walker and the resume.
			e.L2s[0].FlushDirty(after)
			return
		}
		remaining := len(e.L2s)
		for _, l2 := range e.L2s {
			l2.FlushDirty(func() {
				remaining--
				if remaining == 0 {
					after()
				}
			})
		}
		return
	}
	after()
}
