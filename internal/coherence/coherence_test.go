package coherence

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// fakeMem records value copies at submit time: completed requests may be
// recycled by their originating cache, so pointers must not be retained
// past Done.
type fakeMem struct {
	sim     *event.Sim
	lat     event.Cycle
	arrived []mem.Request
}

func (f *fakeMem) Submit(req *mem.Request) {
	f.arrived = append(f.arrived, *req)
	if req.Done != nil {
		f.sim.Schedule(f.lat, req.Done)
	}
}

func (f *fakeMem) count(k mem.Kind) int {
	n := 0
	for _, r := range f.arrived {
		if r.Kind == k {
			n++
		}
	}
	return n
}

// stack builds a 1-CU hierarchy: L1 → L2 (1 bank) → directory → fakeMem.
func stack(p Policy) (*Engine, *cache.Cache, *cache.Banked, *fakeMem, *event.Sim) {
	sim := event.New()
	memPort := &fakeMem{sim: sim, lat: 60}
	dir := NewDirectory(sim, memPort, 10)
	l2 := cache.NewBanked(cache.Config{
		Name: "L2", Sets: 16, Ways: 4,
		HitLatency: 30, LookupLatency: 2, FillLatency: 2,
		MSHRs: 16, BypassEntries: 64, PortsPerCycle: 2,
		StoreAllocate: p.CombinesStores(),
	}, 1, sim, dir)
	l1 := cache.New(cache.Config{
		Name: "L1", Sets: 4, Ways: 4,
		HitLatency: 10, LookupLatency: 2, FillLatency: 2,
		MSHRs: 8, BypassEntries: 64, PortsPerCycle: 2,
	}, sim, l2)
	eng := &Engine{PolicyKind: p, L1s: []*cache.Cache{l1}, L2s: []*cache.Banked{l2}, Sim: sim, SyncLatency: 20}
	return eng, l1, l2, memPort, sim
}

func submit(eng *Engine, l1 *cache.Cache, kind mem.Kind, line mem.Addr, done func()) {
	r := &mem.Request{Line: line, Kind: kind, Done: done}
	eng.Decorate(r)
	l1.Submit(r)
}

func TestPolicyStrings(t *testing.T) {
	if Uncached.String() != "Uncached" || CacheR.String() != "CacheR" || CacheRW.String() != "CacheRW" {
		t.Fatal("bad strings")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should format")
	}
	for _, name := range []string{"Uncached", "CacheR", "CacheRW", "uncached", "cacher", "cacherw"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestUncachedAllocatesNothing(t *testing.T) {
	eng, l1, l2, fm, sim := stack(Uncached)
	done := 0
	submit(eng, l1, mem.Load, 0x1000, func() { done++ })
	submit(eng, l1, mem.Store, 0x2000, func() { done++ })
	sim.Run()
	// Repeat the load: must go to memory again.
	submit(eng, l1, mem.Load, 0x1000, func() { done++ })
	sim.Run()
	if done != 3 {
		t.Fatalf("done = %d", done)
	}
	if l1.ValidLines() != 0 || l2.ValidLines() != 0 {
		t.Fatal("Uncached must not allocate")
	}
	if fm.count(mem.Load) != 2 || fm.count(mem.Store) != 1 {
		t.Fatalf("memory traffic loads=%d stores=%d", fm.count(mem.Load), fm.count(mem.Store))
	}
}

func TestCacheRCachesLoadsStoresPassThrough(t *testing.T) {
	eng, l1, l2, fm, sim := stack(CacheR)
	submit(eng, l1, mem.Load, 0x1000, nil)
	sim.Run()
	submit(eng, l1, mem.Load, 0x1000, nil) // L1 hit
	sim.Run()
	if fm.count(mem.Load) != 1 {
		t.Fatalf("memory loads = %d, want 1 (second was a hit)", fm.count(mem.Load))
	}
	if l1.Stats.Hits != 1 {
		t.Fatalf("L1 hits = %d", l1.Stats.Hits)
	}
	submit(eng, l1, mem.Store, 0x3000, nil)
	sim.Run()
	if fm.count(mem.Store) != 1 {
		t.Fatal("store must reach memory under CacheR")
	}
	if l2.DirtyLines() != 0 {
		t.Fatal("CacheR must not hold dirty data")
	}
}

func TestCacheRWCombinesStores(t *testing.T) {
	eng, l1, l2, fm, sim := stack(CacheRW)
	for i := 0; i < 4; i++ {
		submit(eng, l1, mem.Store, 0x4000, nil)
		sim.Run()
	}
	if fm.count(mem.Store) != 0 {
		t.Fatalf("memory stores = %d, want 0 (combined at L2)", fm.count(mem.Store))
	}
	if l2.DirtyLines() != 1 {
		t.Fatalf("L2 dirty lines = %d, want 1", l2.DirtyLines())
	}
	if l1.ValidLines() != 0 {
		t.Fatal("stores must bypass L1 under CacheRW")
	}
}

func TestStoreThenLoadHitsDirtyL2(t *testing.T) {
	eng, l1, _, fm, sim := stack(CacheRW)
	submit(eng, l1, mem.Store, 0x5000, nil)
	sim.Run()
	submit(eng, l1, mem.Load, 0x5000, nil)
	sim.Run()
	if fm.count(mem.Load) != 0 {
		t.Fatal("load of combined store data must hit in L2")
	}
}

func TestKernelBoundaryInvalidatesClean(t *testing.T) {
	eng, l1, l2, _, sim := stack(CacheRW)
	submit(eng, l1, mem.Load, 0x1000, nil)
	submit(eng, l1, mem.Store, 0x2000, nil)
	sim.Run()
	resumed := false
	eng.KernelBoundary(nil, func() { resumed = true })
	sim.Run()
	if !resumed {
		t.Fatal("boundary did not resume")
	}
	if l1.ValidLines() != 0 {
		t.Fatal("L1 clean data must self-invalidate at kernel boundary")
	}
	// Dirty combined store survives a non-system-scope boundary.
	if l2.DirtyLines() != 1 {
		t.Fatalf("L2 dirty lines = %d, want 1 after GPU-scope boundary", l2.DirtyLines())
	}
	if eng.Invalidations != 1 {
		t.Fatalf("invalidations = %d", eng.Invalidations)
	}
}

func TestFinishFlushesDirty(t *testing.T) {
	eng, l1, l2, fm, sim := stack(CacheRW)
	submit(eng, l1, mem.Store, 0x6000, nil)
	submit(eng, l1, mem.Store, 0x7000, nil)
	sim.Run()
	finished := false
	eng.Finish(func() { finished = true })
	sim.Run()
	if !finished {
		t.Fatal("finish did not complete")
	}
	if fm.count(mem.Store) != 2 {
		t.Fatalf("memory stores = %d, want 2 after flush", fm.count(mem.Store))
	}
	if l2.DirtyLines() != 0 {
		t.Fatal("flush left dirty lines")
	}
	if eng.Flushes != 1 {
		t.Fatalf("flushes = %d", eng.Flushes)
	}
}

func TestUncachedBoundaryIsCheap(t *testing.T) {
	eng, _, _, _, sim := stack(Uncached)
	resumed := false
	eng.KernelBoundary(nil, func() { resumed = true })
	sim.Run()
	if !resumed {
		t.Fatal("boundary did not resume")
	}
	if eng.Invalidations != 0 || eng.Flushes != 0 {
		t.Fatal("Uncached must not invalidate or flush")
	}
}

func TestDirectoryAddsLatencyAndCounts(t *testing.T) {
	sim := event.New()
	fm := &fakeMem{sim: sim, lat: 0}
	dir := NewDirectory(sim, fm, 25)
	var at event.Cycle
	dir.Submit(&mem.Request{Line: 0, Kind: mem.Load, Done: func() { at = sim.Now() }})
	sim.Run()
	if at != 25 {
		t.Fatalf("directory latency = %d, want 25", at)
	}
	if dir.Requests != 1 {
		t.Fatalf("requests = %d", dir.Requests)
	}
}

func TestDirectoryZeroLatencyForwardsInline(t *testing.T) {
	sim := event.New()
	fm := &fakeMem{sim: sim, lat: 0}
	dir := NewDirectory(sim, fm, 0)
	dir.Submit(&mem.Request{Line: 0, Kind: mem.Load})
	if len(fm.arrived) != 1 {
		t.Fatal("zero-latency directory must forward synchronously")
	}
}

func TestPolicyPredicates(t *testing.T) {
	if Uncached.CachesLoads() || !CacheR.CachesLoads() || !CacheRW.CachesLoads() {
		t.Fatal("CachesLoads wrong")
	}
	if Uncached.CombinesStores() || CacheR.CombinesStores() || !CacheRW.CombinesStores() {
		t.Fatal("CombinesStores wrong")
	}
}
