package resultcache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

func snapN(n uint64) stats.Snapshot { return stats.Snapshot{Cycles: n, VectorOps: n * 2} }

func TestHitMissAndLRUOrder(t *testing.T) {
	c := New(2, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", snapN(1))
	c.Put("b", snapN(2))
	// Touch a so b is the LRU victim when c arrives.
	if s, ok := c.Get("a"); !ok || !s.Equal(snapN(1)) {
		t.Fatalf("a lookup = %+v/%v", s, ok)
	}
	c.Put("c", snapN(3))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("newest entry c missing")
	}
	hits, misses, evictions := c.Counters()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if hits != 3 || misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 3/2", hits, misses)
	}
}

func TestByteBound(t *testing.T) {
	per := snapN(1).SizeBytes() + 1 // key length 1
	c := New(100, 2*per)
	c.Put("a", snapN(1))
	c.Put("b", snapN(2))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Put("c", snapN(3))
	if c.Len() != 2 {
		t.Fatalf("byte bound not enforced: Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("LRU victim a survived byte-bound eviction")
	}
	if c.Bytes() > 2*per {
		t.Fatalf("Bytes = %d over bound %d", c.Bytes(), 2*per)
	}
}

func TestOversizedEntryNotStored(t *testing.T) {
	c := New(100, 4)
	c.Put("a", snapN(1))
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversized entry stored: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestSingleFlightCollapse(t *testing.T) {
	c := New(8, 0)
	_, hit, f, leader := c.Acquire("k")
	if hit || !leader {
		t.Fatalf("first Acquire: hit=%v leader=%v, want miss+leader", hit, leader)
	}

	const followers = 4
	var wg sync.WaitGroup
	got := make([]stats.Snapshot, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		_, hit, ff, lead := c.Acquire("k")
		if hit || lead {
			t.Fatalf("follower %d: hit=%v leader=%v, want join", i, hit, lead)
		}
		wg.Add(1)
		go func(i int, ff *Flight) {
			defer wg.Done()
			got[i], errs[i] = ff.Wait(context.Background())
		}(i, ff)
	}

	want := snapN(7)
	c.Complete(f, want, nil)
	wg.Wait()
	for i := 0; i < followers; i++ {
		if errs[i] != nil || !got[i].Equal(want) {
			t.Fatalf("follower %d: snap=%+v err=%v", i, got[i], errs[i])
		}
	}
	// The leader's Complete cached before releasing the flight: a new
	// Acquire is a plain hit.
	if _, hit, _, _ := c.Acquire("k"); !hit {
		t.Fatal("post-flight Acquire missed")
	}
	hits, misses, _ := c.Counters()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (one simulation for %d requests)", misses, followers+2)
	}
	if hits != followers+1 {
		t.Fatalf("hits = %d, want %d (followers + final Acquire)", hits, followers+1)
	}
}

func TestFlightErrorNotCachedAndRetryable(t *testing.T) {
	c := New(8, 0)
	_, _, f, leader := c.Acquire("k")
	if !leader {
		t.Fatal("expected leadership")
	}
	_, _, follower, lead2 := c.Acquire("k")
	if lead2 {
		t.Fatal("second Acquire stole leadership")
	}

	boom := errors.New("budget exceeded")
	done := make(chan error, 1)
	go func() {
		_, err := follower.Wait(context.Background())
		done <- err
	}()
	c.Complete(f, stats.Snapshot{}, boom)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("follower err = %v, want %v", err, boom)
	}
	if c.Len() != 0 {
		t.Fatal("failed result was cached")
	}
	// The key is retryable: the next Acquire becomes a fresh leader.
	_, hit, _, leader2 := c.Acquire("k")
	if hit || !leader2 {
		t.Fatalf("post-failure Acquire: hit=%v leader=%v, want new leader", hit, leader2)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	c := New(8, 0)
	_, _, f, _ := c.Acquire("k")
	_, _, follower, _ := c.Acquire("k")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := follower.Wait(ctx)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait ignored context cancellation")
	}
	c.Complete(f, snapN(1), nil) // leader must still be able to resolve
}
