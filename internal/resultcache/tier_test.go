package resultcache

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

// fakeStore is an in-memory Store with per-operation error switches,
// standing in for internal/persist (which has its own suite) so these
// tests pin the cache-side contract alone.
type fakeStore struct {
	mu      sync.Mutex
	m       map[string]stats.Snapshot
	getErr  error
	putErr  error
	gets    int
	puts    int
	lastPut string
}

func newFakeStore() *fakeStore { return &fakeStore{m: make(map[string]stats.Snapshot)} }

func (s *fakeStore) Get(key string) (stats.Snapshot, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.getErr != nil {
		return stats.Snapshot{}, false, s.getErr
	}
	snap, ok := s.m[key]
	return snap, ok, nil
}

func (s *fakeStore) Put(key string, snap stats.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.lastPut = key
	if s.putErr != nil {
		return s.putErr
	}
	s.m[key] = snap
	return nil
}

func (s *fakeStore) setErrs(get, put error) {
	s.mu.Lock()
	s.getErr, s.putErr = get, put
	s.mu.Unlock()
}

func (s *fakeStore) counts() (gets, puts int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.puts
}

func TestCompleteWritesThrough(t *testing.T) {
	c := New(4, 0)
	st := newFakeStore()
	c.SetStore(st)

	_, hit, f, leader := c.Acquire("k1")
	if hit || !leader {
		t.Fatalf("expected leadership on cold cache, hit=%v leader=%v", hit, leader)
	}
	c.Complete(f, snapN(7), nil)

	if snap, ok := st.m["k1"]; !ok || !snap.Equal(snapN(7)) {
		t.Fatalf("Complete did not write through to the store: %+v ok=%v", snap, ok)
	}
	// Failed runs must not reach the disk either.
	_, _, f2, _ := c.Acquire("k2")
	c.Complete(f2, stats.Snapshot{}, errors.New("boom"))
	if _, ok := st.m["k2"]; ok {
		t.Fatal("errored flight was written to the store")
	}
}

func TestAcquireFallsBackToDisk(t *testing.T) {
	c := New(4, 0)
	st := newFakeStore()
	st.m["warm"] = snapN(9)
	c.SetStore(st)

	snap, hit, _, leader := c.Acquire("warm")
	if !hit || leader || !snap.Equal(snapN(9)) {
		t.Fatalf("disk entry not served as a hit: hit=%v leader=%v snap=%+v", hit, leader, snap)
	}
	dh, dm, de := c.DiskCounters()
	if dh != 1 || dm != 0 || de != 0 {
		t.Fatalf("disk counters = %d/%d/%d, want 1/0/0", dh, dm, de)
	}
	if _, puts := st.counts(); puts != 0 {
		t.Fatal("disk hit must not be written back to the store")
	}

	// Promoted: the second lookup is a pure memory hit.
	gets0, _ := st.counts()
	if _, hit, _, _ := c.Acquire("warm"); !hit {
		t.Fatal("promoted entry missing from memory")
	}
	if gets, _ := st.counts(); gets != gets0 {
		t.Fatal("memory hit consulted the disk")
	}
}

func TestGetFallsBackToDisk(t *testing.T) {
	c := New(4, 0)
	st := newFakeStore()
	st.m["warm"] = snapN(3)
	c.SetStore(st)

	if snap, ok := c.Get("warm"); !ok || !snap.Equal(snapN(3)) {
		t.Fatalf("Get did not fall back to disk: ok=%v snap=%+v", ok, snap)
	}
	if _, ok := c.Get("cold"); ok {
		t.Fatal("Get invented an entry")
	}
	dh, dm, _ := c.DiskCounters()
	if dh != 1 || dm != 1 {
		t.Fatalf("disk counters = %d hits %d misses, want 1/1", dh, dm)
	}
}

func TestStoreErrorsAreMissesNotFailures(t *testing.T) {
	c := New(4, 0)
	st := newFakeStore()
	st.setErrs(errors.New("io: read"), errors.New("io: write"))
	c.SetStore(st)

	// Read error → clean leadership, no panic, no served garbage.
	_, hit, f, leader := c.Acquire("k")
	if hit || !leader {
		t.Fatalf("read error must degrade to a miss: hit=%v leader=%v", hit, leader)
	}
	// Write error on Complete → snapshot still served from memory.
	c.Complete(f, snapN(5), nil)
	if snap, ok := c.Get("k"); !ok || !snap.Equal(snapN(5)) {
		t.Fatalf("write error lost the in-memory entry: ok=%v snap=%+v", ok, snap)
	}
	if _, _, de := c.DiskCounters(); de != 2 {
		t.Fatalf("disk errors = %d, want 2 (one read, one write)", de)
	}
}

func TestPutWritesThrough(t *testing.T) {
	c := New(4, 0)
	st := newFakeStore()
	c.SetStore(st)
	c.Put("k", snapN(2))
	if snap, ok := st.m["k"]; !ok || !snap.Equal(snapN(2)) {
		t.Fatal("Put did not write through")
	}
}

func TestOversizedEntryStillReachesDisk(t *testing.T) {
	c := New(4, 8) // byte budget below any entry's size
	st := newFakeStore()
	c.SetStore(st)
	c.Put("big", snapN(1))
	if c.Len() != 0 {
		t.Fatal("oversized entry stored in memory")
	}
	if _, ok := st.m["big"]; !ok {
		t.Fatal("oversized entry dropped from disk, which has no byte bound")
	}
}

func TestDiskHitResolvesWaiters(t *testing.T) {
	c := New(4, 0)
	st := newFakeStore()
	st.m["k"] = snapN(11)
	c.SetStore(st)

	// A waiter that joined the flight before the leader's disk lookup
	// resolved must get the disk snapshot without a simulation.
	_, hit, f, leader := c.Acquire("k")
	if !hit {
		t.Fatalf("expected disk hit, leader=%v f=%v", leader, f != nil)
	}
	// The flight is resolved; a late Acquire is a plain memory hit.
	if _, hit, _, _ := c.Acquire("k"); !hit {
		t.Fatal("flight resolution did not populate memory")
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	st := newFakeStore()
	b := NewBreaker(st, 3, 25*time.Millisecond)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}
	st.setErrs(errors.New("disk gone"), errors.New("disk gone"))
	for i := 0; i < 3; i++ {
		if _, _, err := b.Get("k"); err == nil {
			t.Fatal("closed breaker should pass errors through")
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}

	// Open: operations short-circuit — no store traffic, no errors.
	gets0, puts0 := st.counts()
	if _, ok, err := b.Get("k"); ok || err != nil {
		t.Fatalf("open Get = ok=%v err=%v, want clean miss", ok, err)
	}
	if err := b.Put("k", snapN(1)); err != nil {
		t.Fatalf("open Put returned %v, want dropped nil", err)
	}
	if gets, puts := st.counts(); gets != gets0 || puts != puts0 {
		t.Fatal("open breaker touched the store")
	}

	// After cooldown the next op is a probe; still failing → re-open.
	time.Sleep(30 * time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if _, _, err := b.Get("k"); err == nil {
		t.Fatal("probe should reach the failing store")
	}
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state=%v trips=%d, want open/2", b.State(), b.Trips())
	}

	// Disk heals; after another cooldown the probe closes the breaker.
	st.setErrs(nil, nil)
	time.Sleep(30 * time.Millisecond)
	if err := b.Put("k", snapN(4)); err != nil {
		t.Fatalf("healed probe failed: %v", err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if snap, ok, err := b.Get("k"); err != nil || !ok || !snap.Equal(snapN(4)) {
		t.Fatalf("closed breaker lookup = %+v ok=%v err=%v", snap, ok, err)
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	st := newFakeStore()
	b := NewBreaker(st, 1, time.Hour) // never cools down on its own
	st.setErrs(errors.New("x"), nil)
	b.Get("k") // trips
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}
	// Force half-open by resetting openedAt into the past.
	b.mu.Lock()
	b.openedAt = time.Now().Add(-2 * time.Hour)
	b.mu.Unlock()

	// First op becomes the probe and blocks rivals: simulate by holding
	// the probe slot manually via allow().
	if !b.allow() {
		t.Fatal("probe not admitted")
	}
	if b.allow() {
		t.Fatal("second concurrent op admitted during probe")
	}
	b.record(outcomeSuccess)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
}

func TestBreakerNeutralProbeStaysHalfOpen(t *testing.T) {
	st := newFakeStore()
	b := NewBreaker(st, 1, time.Hour)
	st.setErrs(errors.New("x"), errors.New("x"))
	b.Get("k") // trips
	b.mu.Lock()
	b.openedAt = time.Now().Add(-2 * time.Hour) // cooldown elapsed
	b.mu.Unlock()

	// The store heals for reads but the key is absent: the probe is a
	// clean miss — no disk evidence either way, so the breaker stays
	// half-open (releasing the probe slot) rather than closing on air.
	st.setErrs(nil, errors.New("still broken"))
	if _, ok, err := b.Get("missing"); ok || err != nil {
		t.Fatalf("probe = ok=%v err=%v, want clean miss", ok, err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after neutral probe = %v, want half-open", b.State())
	}
	// The next op probes again; a real failure re-opens.
	if err := b.Put("k", snapN(1)); err == nil {
		t.Fatal("probe Put should fail")
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	st := newFakeStore()
	b := NewBreaker(st, 2, time.Hour)
	fail := errors.New("x")
	st.setErrs(fail, nil)
	b.Get("k") // failure 1
	st.setErrs(nil, nil)
	b.Put("k", snapN(1)) // disk evidence: success resets the streak
	st.setErrs(fail, nil)
	b.Get("k") // failure 1 again — must not trip
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
	b.Get("k") // failure 2 — trips
	if b.State() != BreakerOpen {
		t.Fatal("consecutive failures did not trip the breaker")
	}
}

func TestBreakerCleanMissDoesNotResetStreak(t *testing.T) {
	st := newFakeStore()
	b := NewBreaker(st, 2, time.Hour)
	fail := errors.New("write: disk gone")

	// Alternating clean Get misses (index fast-path, no I/O) and Put
	// failures — the realistic shape of miss-then-write-through traffic
	// against a write-dead disk. The misses must not keep the breaker
	// from tripping.
	st.setErrs(nil, fail)
	b.Get("a")
	b.Put("a", snapN(1)) // failure 1
	b.Get("b")
	b.Put("b", snapN(2)) // failure 2 — trips
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open (clean misses reset the streak?)", b.State())
	}
}

func TestCacheBehindTrippedBreakerIsMemoryOnly(t *testing.T) {
	c := New(4, 0)
	st := newFakeStore()
	b := NewBreaker(st, 1, time.Hour)
	c.SetStore(b)

	st.setErrs(nil, errors.New("disk gone"))
	_, _, f, _ := c.Acquire("k1")
	c.Complete(f, snapN(1), nil) // write-through fails → breaker trips

	if b.State() != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", b.State())
	}
	// Memory-only from here: requests still work, store untouched.
	gets0, puts0 := st.counts()
	_, _, f2, leader := c.Acquire("k2")
	if !leader {
		t.Fatal("expected leadership")
	}
	c.Complete(f2, snapN(2), nil)
	if snap, hit, _, _ := c.Acquire("k2"); !hit || !snap.Equal(snapN(2)) {
		t.Fatal("memory-only mode lost the entry")
	}
	if gets, puts := st.counts(); gets != gets0 || puts != puts0 {
		t.Fatal("tripped breaker let traffic through")
	}
}
