// Package resultcache is a bounded, content-addressed LRU of simulation
// snapshots with single-flight collapsing. The simulator is
// deterministic, so a canonical serialization of the request tuple
// (see stats.CanonicalKey) is a content address: a cached snapshot is
// byte-identical to what a fresh run would produce, and serving it
// costs a map lookup instead of a simulation.
//
// Single-flight makes the miss path collapse too: when N identical
// requests arrive concurrently, Acquire elects one leader to run the
// simulation while the other N-1 wait on the leader's Flight; the
// leader's Complete fills the cache before releasing the flight, so
// every later request — waiter or newcomer — is a hit. Failed runs are
// never cached; their waiters see the error and may retry (typically by
// re-entering Acquire, where one of them becomes the next leader).
//
// Cached snapshots are shared by reference (including their per-tile
// and per-link slices); callers must treat them as immutable.
package resultcache

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Store is a second, persistent tier behind the in-memory LRU: a
// content-addressed snapshot store keyed by the same canonical keys.
// Get distinguishes a clean miss (false, nil) from a read failure
// (error != nil) so callers can track disk health; both are served as
// misses here. Implementations must be safe for concurrent use.
// *persist.Store implements it, as does the Breaker that wraps one.
type Store interface {
	Get(key string) (stats.Snapshot, bool, error)
	Put(key string, snap stats.Snapshot) error
}

// Cache is the bounded LRU plus the in-flight table. All methods are
// safe for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64 // 0 = no byte bound

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*Flight
	bytes   int64
	store   Store // optional disk tier; nil = memory only

	hits, misses, evictions       metrics.Counter
	diskHits, diskMisses, diskErr metrics.Counter
}

type entry struct {
	key  string
	snap stats.Snapshot
	size int64
}

// New builds a cache bounded to maxEntries entries (must be positive;
// callers disable caching by not constructing one) and, when maxBytes
// is positive, to that many accounted bytes (stats.Snapshot.SizeBytes
// plus key length per entry).
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		panic("resultcache: maxEntries must be positive (omit the cache to disable it)")
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flights:    make(map[string]*Flight),
	}
}

// SetStore attaches a persistent tier. The cache writes completed
// snapshots through to it and falls back to it on memory misses; store
// failures are counted, never propagated — a broken disk degrades the
// cache to memory-only behavior, it does not fail requests. Attach
// before serving traffic.
func (c *Cache) SetStore(s Store) {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// Flight is one in-progress computation of a key. The leader (the
// caller Acquire elected) runs the simulation and must call Complete
// exactly once; everyone else Waits.
type Flight struct {
	c    *Cache
	key  string
	done chan struct{}
	snap stats.Snapshot
	err  error
}

// Acquire resolves key, returning exactly one of three outcomes: a
// cached snapshot (hit == true); leadership of a new flight
// (leader == true — run the simulation and Complete f); or an existing
// flight to Wait on (f != nil, leader == false). A hit counts toward
// the hit counter; an elected leader counts a miss (a simulation will
// run); joining an existing flight counts nothing until it resolves.
//
// When a Store is attached, the elected leader consults it before
// being handed the miss: a disk hit is promoted into memory and
// resolves the flight immediately (every concurrent waiter gets the
// snapshot, so disk reads collapse exactly like simulations do), and
// Acquire reports it as a plain hit. The disk lookup happens outside
// the cache lock — memory hits and unrelated keys never wait on I/O.
func (c *Cache) Acquire(key string) (snap stats.Snapshot, hit bool, f *Flight, leader bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		snap = el.Value.(*entry).snap
		c.mu.Unlock()
		return snap, true, nil, false
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		return stats.Snapshot{}, false, f, false
	}
	f = &Flight{c: c, key: key, done: make(chan struct{})}
	c.flights[key] = f
	store := c.store
	c.mu.Unlock()

	if store != nil {
		if dsnap, ok := c.diskGet(store, key); ok {
			c.mu.Lock()
			c.putLocked(key, dsnap)
			delete(c.flights, key)
			c.hits.Inc()
			c.mu.Unlock()
			// No write-back: the entry came from disk.
			f.snap = dsnap
			close(f.done)
			return dsnap, true, nil, false
		}
	}
	c.misses.Inc()
	return stats.Snapshot{}, false, f, true
}

// diskGet consults the persistent tier, folding read failures into
// misses (counted separately) so a sick disk can never fail a lookup.
func (c *Cache) diskGet(store Store, key string) (stats.Snapshot, bool) {
	snap, ok, err := store.Get(key)
	switch {
	case err != nil:
		c.diskErr.Inc()
		return stats.Snapshot{}, false
	case ok:
		c.diskHits.Inc()
		return snap, true
	default:
		c.diskMisses.Inc()
		return stats.Snapshot{}, false
	}
}

// Complete resolves a flight: on err == nil the snapshot is cached
// (before the flight is released, so no request can slip between the
// flight ending and the cache filling and run the simulation again)
// and written through to the Store if one is attached, then every Wait
// returns. The disk write happens before the flight resolves — after
// Complete returns, the entry is durable or the failure is counted —
// but a write failure never fails the request; the snapshot is still
// served from memory. Error or interrupted results are never cached.
// Only the flight's leader may call it, exactly once.
func (c *Cache) Complete(f *Flight, snap stats.Snapshot, err error) {
	c.mu.Lock()
	var store Store
	if err == nil {
		c.putLocked(f.key, snap)
		store = c.store
	}
	delete(c.flights, f.key)
	c.mu.Unlock()
	if store != nil {
		c.writeThrough(store, f.key, snap)
	}
	f.snap, f.err = snap, err
	close(f.done)
}

func (c *Cache) writeThrough(store Store, key string, snap stats.Snapshot) {
	if err := store.Put(key, snap); err != nil {
		c.diskErr.Inc()
	}
}

// Wait blocks until the flight's leader Completes it or ctx is done.
// A successful result counts as a cache hit for the waiter: it was
// served without a simulation of its own.
func (f *Flight) Wait(ctx context.Context) (stats.Snapshot, error) {
	select {
	case <-f.done:
		if f.err != nil {
			return stats.Snapshot{}, f.err
		}
		f.c.hits.Inc()
		return f.snap, nil
	case <-ctx.Done():
		return stats.Snapshot{}, ctx.Err()
	}
}

// Get is a plain lookup for callers that manage their own collapsing
// (the matrix sweep runs cells through one admission slot, so it has no
// concurrent duplicates to collapse). Falls back to the Store on a
// memory miss, promoting disk hits into memory. Counts a hit or a
// miss.
func (c *Cache) Get(key string) (stats.Snapshot, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		snap := el.Value.(*entry).snap
		c.mu.Unlock()
		return snap, true
	}
	store := c.store
	c.mu.Unlock()
	if store != nil {
		if snap, ok := c.diskGet(store, key); ok {
			c.mu.Lock()
			c.putLocked(key, snap)
			c.hits.Inc()
			c.mu.Unlock()
			return snap, true
		}
	}
	c.misses.Inc()
	return stats.Snapshot{}, false
}

// Put stores a completed run's snapshot, evicting from the LRU tail
// until both bounds hold, and writes it through to the Store if one is
// attached. A snapshot alone larger than the byte budget is not stored
// in memory (storing it would evict the whole cache and then itself),
// but it still goes to disk, which has no byte bound.
func (c *Cache) Put(key string, snap stats.Snapshot) {
	c.mu.Lock()
	c.putLocked(key, snap)
	store := c.store
	c.mu.Unlock()
	if store != nil {
		c.writeThrough(store, key, snap)
	}
}

func (c *Cache) putLocked(key string, snap stats.Snapshot) {
	size := snap.SizeBytes() + int64(len(key))
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		// Deterministic simulator: a re-Put of a key carries the same
		// snapshot. Refresh recency, keep accounting consistent anyway.
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.snap, e.size = snap, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, snap: snap, size: size})
		c.bytes += size
	}
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.ll.Back()
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions.Inc()
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the accounted size of the cached entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Counters reports lifetime hits (cache or collapsed-flight), misses
// (simulations started), and evictions, for /metrics.
func (c *Cache) Counters() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// DiskCounters reports the persistent tier's view from the cache side:
// lookups served from disk, disk lookups that missed, and store
// operations (Get or Put) that returned an error. All zero when no
// Store is attached.
func (c *Cache) DiskCounters() (hits, misses, errors uint64) {
	return c.diskHits.Load(), c.diskMisses.Load(), c.diskErr.Load()
}
