// Package resultcache is a bounded, content-addressed LRU of simulation
// snapshots with single-flight collapsing. The simulator is
// deterministic, so a canonical serialization of the request tuple
// (see stats.CanonicalKey) is a content address: a cached snapshot is
// byte-identical to what a fresh run would produce, and serving it
// costs a map lookup instead of a simulation.
//
// Single-flight makes the miss path collapse too: when N identical
// requests arrive concurrently, Acquire elects one leader to run the
// simulation while the other N-1 wait on the leader's Flight; the
// leader's Complete fills the cache before releasing the flight, so
// every later request — waiter or newcomer — is a hit. Failed runs are
// never cached; their waiters see the error and may retry (typically by
// re-entering Acquire, where one of them becomes the next leader).
//
// Cached snapshots are shared by reference (including their per-tile
// and per-link slices); callers must treat them as immutable.
package resultcache

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Cache is the bounded LRU plus the in-flight table. All methods are
// safe for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64 // 0 = no byte bound

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flights map[string]*Flight
	bytes   int64

	hits, misses, evictions metrics.Counter
}

type entry struct {
	key  string
	snap stats.Snapshot
	size int64
}

// New builds a cache bounded to maxEntries entries (must be positive;
// callers disable caching by not constructing one) and, when maxBytes
// is positive, to that many accounted bytes (stats.Snapshot.SizeBytes
// plus key length per entry).
func New(maxEntries int, maxBytes int64) *Cache {
	if maxEntries <= 0 {
		panic("resultcache: maxEntries must be positive (omit the cache to disable it)")
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flights:    make(map[string]*Flight),
	}
}

// Flight is one in-progress computation of a key. The leader (the
// caller Acquire elected) runs the simulation and must call Complete
// exactly once; everyone else Waits.
type Flight struct {
	c    *Cache
	key  string
	done chan struct{}
	snap stats.Snapshot
	err  error
}

// Acquire resolves key under one lock, returning exactly one of three
// outcomes: a cached snapshot (hit == true); leadership of a new
// flight (leader == true — run the simulation and Complete f); or an
// existing flight to Wait on (f != nil, leader == false). A hit counts
// toward the hit counter; an elected leader counts a miss (a
// simulation will run); joining an existing flight counts nothing
// until it resolves.
func (c *Cache) Acquire(key string) (snap stats.Snapshot, hit bool, f *Flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*entry).snap, true, nil, false
	}
	if f, ok := c.flights[key]; ok {
		return stats.Snapshot{}, false, f, false
	}
	f = &Flight{c: c, key: key, done: make(chan struct{})}
	c.flights[key] = f
	c.misses.Inc()
	return stats.Snapshot{}, false, f, true
}

// Complete resolves a flight: on err == nil the snapshot is cached
// (before the flight is released, so no request can slip between the
// flight ending and the cache filling and run the simulation again),
// then every Wait returns. Error or interrupted results are never
// cached. Only the flight's leader may call it, exactly once.
func (c *Cache) Complete(f *Flight, snap stats.Snapshot, err error) {
	c.mu.Lock()
	if err == nil {
		c.putLocked(f.key, snap)
	}
	delete(c.flights, f.key)
	c.mu.Unlock()
	f.snap, f.err = snap, err
	close(f.done)
}

// Wait blocks until the flight's leader Completes it or ctx is done.
// A successful result counts as a cache hit for the waiter: it was
// served without a simulation of its own.
func (f *Flight) Wait(ctx context.Context) (stats.Snapshot, error) {
	select {
	case <-f.done:
		if f.err != nil {
			return stats.Snapshot{}, f.err
		}
		f.c.hits.Inc()
		return f.snap, nil
	case <-ctx.Done():
		return stats.Snapshot{}, ctx.Err()
	}
}

// Get is a plain lookup for callers that manage their own collapsing
// (the matrix sweep runs cells through one admission slot, so it has no
// concurrent duplicates to collapse). Counts a hit or a miss.
func (c *Cache) Get(key string) (stats.Snapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		return el.Value.(*entry).snap, true
	}
	c.misses.Inc()
	return stats.Snapshot{}, false
}

// Put stores a completed run's snapshot, evicting from the LRU tail
// until both bounds hold. A snapshot alone larger than the byte budget
// is not stored at all (storing it would evict the whole cache and then
// itself).
func (c *Cache) Put(key string, snap stats.Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, snap)
}

func (c *Cache) putLocked(key string, snap stats.Snapshot) {
	size := snap.SizeBytes() + int64(len(key))
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	if el, ok := c.items[key]; ok {
		// Deterministic simulator: a re-Put of a key carries the same
		// snapshot. Refresh recency, keep accounting consistent anyway.
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.snap, e.size = snap, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry{key: key, snap: snap, size: size})
		c.bytes += size
	}
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		back := c.ll.Back()
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions.Inc()
	}
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the accounted size of the cached entries.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Counters reports lifetime hits (cache or collapsed-flight), misses
// (simulations started), and evictions, for /metrics.
func (c *Cache) Counters() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
