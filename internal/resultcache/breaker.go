package resultcache

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Breaker wraps a Store in a circuit breaker so a failing disk cannot
// drag every request through its error path. Closed, it is a
// transparent proxy that counts consecutive failures; after Failures
// of them in a row it trips open, and while open every Get is an
// instant clean miss and every Put is dropped — the cache above
// degrades to memory-only without seeing a single store error. After
// Cooldown it lets exactly one probe operation through (half-open): a
// success closes the breaker again, a failure re-opens it for another
// cooldown.
//
// "Failure" means an operation error — persist.Store returns errors
// only for I/O faults (media trouble), not for corruption or misses,
// so the breaker reacts to the disk being sick, not to cache contents.
type Breaker struct {
	under    Store
	failures int           // consecutive failures that trip the breaker
	cooldown time.Duration // open duration before a half-open probe

	mu       sync.Mutex
	state    BreakerState
	consec   int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	trips metrics.Counter
}

// BreakerState is the breaker position; the zero value is closed.
type BreakerState uint8

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// NewBreaker wraps under, tripping after failures consecutive errors
// (minimum 1) and probing again after cooldown.
func NewBreaker(under Store, failures int, cooldown time.Duration) *Breaker {
	if failures < 1 {
		failures = 1
	}
	return &Breaker{under: under, failures: failures, cooldown: cooldown}
}

// Get implements Store. While open it reports a clean miss without
// touching the underlying store. A clean miss from the store is
// recorded as neutral, not success: persist answers index misses from
// memory without any I/O, so a miss is no evidence the disk works —
// treating it as one would let miss/write-fail traffic reset the
// failure streak forever and the breaker would never trip.
func (b *Breaker) Get(key string) (stats.Snapshot, bool, error) {
	if !b.allow() {
		return stats.Snapshot{}, false, nil
	}
	snap, ok, err := b.under.Get(key)
	switch {
	case err != nil:
		b.record(outcomeFailure)
	case ok:
		b.record(outcomeSuccess)
	default:
		b.record(outcomeNeutral)
	}
	return snap, ok, err
}

// Put implements Store. While open it drops the write without
// touching the underlying store.
func (b *Breaker) Put(key string, snap stats.Snapshot) error {
	if !b.allow() {
		return nil
	}
	err := b.under.Put(key, snap)
	if err != nil {
		b.record(outcomeFailure)
	} else {
		b.record(outcomeSuccess)
	}
	return err
}

// allow decides whether an operation may reach the underlying store,
// transitioning open → half-open when the cooldown has elapsed. In
// half-open, only the single probe that caused the transition
// proceeds; concurrent operations are rejected until it resolves.
func (b *Breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// outcome classifies one store operation for the breaker's health
// accounting: failure (an error — real disk trouble), success (data
// moved to or from the disk), or neutral (a clean miss that performed
// no I/O, so it is evidence of nothing).
type outcome uint8

const (
	outcomeFailure outcome = iota
	outcomeSuccess
	outcomeNeutral
)

// record books an operation outcome: in half-open it resolves the
// probe (close on success, re-open on failure, release the probe slot
// but stay half-open on neutral — the next operation probes again);
// closed it counts consecutive failures and trips when the threshold
// is reached, with neutral outcomes leaving the streak untouched.
func (b *Breaker) record(o outcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
		switch o {
		case outcomeFailure:
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.trips.Inc()
		case outcomeSuccess:
			b.state = BreakerClosed
			b.consec = 0
		}
		return
	}
	switch o {
	case outcomeSuccess:
		b.consec = 0
	case outcomeFailure:
		b.consec++
		if b.state == BreakerClosed && b.consec >= b.failures {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.trips.Inc()
		}
	}
}

// State reports the breaker position. An elapsed cooldown is reported
// as half-open even before an operation arrives to probe, so /readyz
// and /metrics see "recovering" rather than a stale "open".
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() uint64 { return b.trips.Load() }
