package noc

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Link is one directed channel of the interconnect. It serializes
// admissions at Bandwidth per cycle with the same virtual-slot
// arithmetic the caches use for tag ports, bounds in-flight occupancy
// at Queue transfers (an admission past that waits for the oldest
// transfer to depart), and delivers each transfer Latency cycles after
// its admission through one pooled event.Queue — no per-request
// closures, no allocation on the steady-state path.
type Link struct {
	src, dst int
	cfg      LinkConfig
	sim      *event.Sim
	q        *event.Queue[*flit]

	// nextSlot is the next admission slot in bandwidth units
	// (cycle × Bandwidth), exactly the cache port-slot idiom.
	nextSlot uint64
	// departs ring-buffers the departure cycles of the last Queue
	// admissions; the slot about to be overwritten is the oldest
	// in-flight transfer, whose departure gates a full link.
	departs []event.Cycle
	di      int

	// Counters for stats.LinkStats.
	forwarded   uint64
	stallCycles uint64
	queuePeak   int
}

// send admits f and schedules its delivery. Called on the simulation
// goroutine only.
func (l *Link) send(f *flit) {
	now := uint64(l.sim.Now())
	bw := uint64(l.cfg.Bandwidth)
	if l.nextSlot < now*bw {
		l.nextSlot = now * bw
	}
	admit := event.Cycle(l.nextSlot / bw)
	l.nextSlot++
	// Bounded queue: the link holds at most len(departs) transfers in
	// flight, so admission waits for the oldest one to depart.
	if d := l.departs[l.di]; d > admit {
		admit = d
	}
	depart := admit + l.cfg.Latency
	l.departs[l.di] = depart
	l.di++
	if l.di == len(l.departs) {
		l.di = 0
	}
	if a := uint64(admit); a > now {
		l.stallCycles += a - now
	}
	l.forwarded++
	l.q.PushAt(depart, f)
	if n := l.q.Len(); n > l.queuePeak {
		l.queuePeak = n
	}
}

// deliver is the link's drain callback: advance the flit one hop, or
// hand the request to the path's sink and recycle the envelope.
func (l *Link) deliver(f *flit) {
	p := f.path
	f.hop++
	if f.hop < len(p.links) {
		p.links[f.hop].send(f)
		return
	}
	req := f.req
	f.req = nil
	p.flits = append(p.flits, f)
	p.sink.Submit(req)
}

// reset returns the link to its just-built state: in-flight transfers
// dropped, slots and counters zeroed. Call together with the owning
// Sim's Reset.
func (l *Link) reset() {
	l.q.Reset()
	l.nextSlot = 0
	for i := range l.departs {
		l.departs[i] = 0
	}
	l.di = 0
	l.forwarded = 0
	l.stallCycles = 0
	l.queuePeak = 0
}

// flit is the pooled multi-hop envelope: which path the request is on
// and how far along it is. Shared links route flits from many paths.
type flit struct {
	path *Path
	req  *mem.Request
	hop  int
}

// Path is a routed source→destination connection: an ordered chain of
// links ending at a sink port. It implements cache.Port, so hierarchy
// layers submit to it exactly as they would to the component it fronts.
type Path struct {
	sim   *event.Sim
	links []*Link
	sink  cache.Port
	// lat is the uncontended one-way latency (sum of link latencies);
	// the response direction pays it again, uncontended (see Submit).
	lat event.Cycle

	flits []*flit
	rets  []*ret
}

// ret is the pooled response-delay wrapper: it replaces a request's
// Done so the completion pays the path's return latency. fire restores
// the request's original Done before deferring it — upper levels attach
// Done closures once and recycle requests with the field intact, so the
// wrapper must never remain visible after the response completes.
type ret struct {
	req  *mem.Request
	orig func()
	fire func()
}

// Submit implements cache.Port: the request traverses the path's links
// (paying per-hop latency, bandwidth serialization, and bounded-queue
// contention) and is then submitted to the sink. The response direction
// is modelled as pure latency: the request's Done is deferred by the
// path's uncontended one-way latency. Requests whose Done is nil (none
// in the current hierarchy) would skip that deferral.
func (p *Path) Submit(req *mem.Request) {
	if req.Done != nil && p.lat > 0 {
		var r *ret
		if n := len(p.rets); n > 0 {
			r = p.rets[n-1]
			p.rets = p.rets[:n-1]
		} else {
			r = &ret{}
			r.fire = func() {
				orig := r.orig
				r.req.Done = orig
				r.req = nil
				r.orig = nil
				p.rets = append(p.rets, r)
				p.sim.Schedule(p.lat, orig)
			}
		}
		r.req = req
		r.orig = req.Done
		req.Done = r.fire
	}
	var f *flit
	if n := len(p.flits); n > 0 {
		f = p.flits[n-1]
		p.flits = p.flits[:n-1]
	} else {
		f = &flit{path: p}
	}
	f.req = req
	f.hop = 0
	p.links[0].send(f)
}

// Latency returns the uncontended one-way latency of the path.
func (p *Path) Latency() event.Cycle { return p.lat }

// Hops returns the number of links the path crosses.
func (p *Path) Hops() int { return len(p.links) }

// Network is a built interconnect: the links of one topology graph plus
// precomputed shortest-hop routes between every node pair.
type Network struct {
	sim   *event.Sim
	nodes int
	links []*Link
	// next[src*nodes+dst] is the index of the link to take from src
	// toward dst (-1 on the diagonal).
	next  []int32
	paths []*Path
	// minPath is the smallest one-way latency among the cross-node
	// paths built so far (0 until the first Connect crosses nodes);
	// same-node connections are direct hand-offs and do not count.
	minPath event.Cycle
}

// NewNetwork builds the links of a topology graph and its routing
// tables. The graph must be connected in both directions (every node
// must reach every other); a graph that is not is rejected with
// ErrDisconnected, malformed edges with ErrEdge, and an invalid link
// model with the LinkConfig errors — all named, so the fuzz harness and
// the config surface can distinguish rejection from breakage.
func NewNetwork(nodes int, edges []Edge, link LinkConfig, sim *event.Sim) (*Network, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("%w (graph has %d nodes)", ErrEdge, nodes)
	}
	if err := link.validate(); err != nil {
		return nil, err
	}
	n := &Network{sim: sim, nodes: nodes}
	for _, e := range edges {
		if e.Src < 0 || e.Src >= nodes || e.Dst < 0 || e.Dst >= nodes || e.Src == e.Dst {
			return nil, fmt.Errorf("%w (%d→%d in a %d-node graph)", ErrEdge, e.Src, e.Dst, nodes)
		}
		l := &Link{src: e.Src, dst: e.Dst, cfg: link, sim: sim,
			departs: make([]event.Cycle, link.Queue)}
		l.q = event.NewQueue(sim, l.deliver)
		n.links = append(n.links, l)
	}
	if err := n.route(); err != nil {
		return nil, err
	}
	return n, nil
}

// route fills the next-hop table with deterministic shortest-hop routes
// (BFS per destination over reversed edges; ties break toward the
// lowest link index, so routing — and therefore timing — is a pure
// function of the edge order Graph emits).
func (n *Network) route() error {
	n.next = make([]int32, n.nodes*n.nodes)
	for i := range n.next {
		n.next[i] = -1
	}
	// in[v] lists links arriving at v, in link-index order.
	in := make([][]int32, n.nodes)
	for i, l := range n.links {
		in[l.dst] = append(in[l.dst], int32(i))
	}
	queue := make([]int, 0, n.nodes)
	for dst := 0; dst < n.nodes; dst++ {
		seen := 1
		queue = queue[:0]
		queue = append(queue, dst)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			for _, li := range in[v] {
				u := n.links[li].src
				if u == dst || n.next[u*n.nodes+dst] != -1 {
					continue
				}
				n.next[u*n.nodes+dst] = li
				seen++
				queue = append(queue, u)
			}
		}
		if seen != n.nodes {
			return fmt.Errorf("%w (%d of %d nodes reach node %d)", ErrDisconnected, seen, n.nodes, dst)
		}
	}
	return nil
}

// Connect returns a cache.Port that carries requests from node src to
// sink at node dst across the network. A same-node connection is
// zero-cost: the sink itself is returned, so degenerate topologies add
// no objects and no latency to the hand-off they replace.
func (n *Network) Connect(src, dst int, sink cache.Port) cache.Port {
	if src < 0 || src >= n.nodes || dst < 0 || dst >= n.nodes {
		panic(fmt.Sprintf("noc: Connect(%d, %d) outside %d-node graph", src, dst, n.nodes))
	}
	if src == dst {
		return sink
	}
	p := &Path{sim: n.sim, sink: sink}
	for at := src; at != dst; {
		l := n.links[n.next[at*n.nodes+dst]]
		p.links = append(p.links, l)
		p.lat += l.cfg.Latency
		at = l.dst
	}
	n.paths = append(n.paths, p)
	if n.minPath == 0 || p.lat < n.minPath {
		n.minPath = p.lat
	}
	return p
}

// MinPathLatency declares the minimum one-way latency across the
// cross-node paths wired so far — the network's cut-edge latency bound
// for partitioned execution (see core's partition builder). It is 0
// until a cross-node Connect exists; callers must ignore a zero bound.
func (n *Network) MinPathLatency() event.Cycle { return n.minPath }

// Reset returns every link and path to its just-built state (in-flight
// transfers dropped, counters zeroed, pools kept). Call together with
// the owning Sim's Reset, like every other component Reset.
func (n *Network) Reset() {
	for _, l := range n.links {
		l.reset()
	}
	for _, p := range n.paths {
		// Pooled envelopes and return wrappers stay pooled; entries
		// still marked in-flight at reset time are abandoned to the
		// garbage collector, never double-recycled (their owning queue
		// entries were just dropped).
		for _, r := range p.rets {
			r.req = nil
			r.orig = nil
		}
	}
}

// Links returns the number of links in the network.
func (n *Network) Links() int { return len(n.links) }

// LinkStats appends one stats.LinkStats per link, in the deterministic
// graph edge order, and returns the extended slice.
func (n *Network) LinkStats(dst []stats.LinkStats) []stats.LinkStats {
	for _, l := range n.links {
		dst = append(dst, stats.LinkStats{
			Src:         l.src,
			Dst:         l.dst,
			Forwarded:   l.forwarded,
			StallCycles: l.stallCycles,
			QueuePeak:   uint64(l.queuePeak),
		})
	}
	return dst
}
