package noc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/stats"
)

// sink records delivery cycles, implementing cache.Port.
type sink struct {
	sim   *event.Sim
	at    []event.Cycle
	count int
}

func (s *sink) Submit(req *mem.Request) {
	s.at = append(s.at, s.sim.Now())
	s.count++
	if req.Done != nil {
		req.Done()
	}
}

func TestParseKind(t *testing.T) {
	for _, name := range Kinds() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", name, err)
		}
		if k.String() != name {
			t.Fatalf("ParseKind(%q).String() = %q", name, k.String())
		}
	}
	_, err := ParseKind("torus")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, name := range Kinds() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid kind %q", err, name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (single tile) rejected: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"tiles not power of two", Config{Tiles: 3}, ErrTiles},
		{"tiles too many", Config{Tiles: 128}, ErrTiles},
		{"negative tiles", Config{Tiles: -2}, ErrTiles},
		{"zero bandwidth", Config{Tiles: 4, Link: LinkConfig{Latency: 8, Queue: 4}}, ErrZeroBandwidth},
		{"zero queue", Config{Tiles: 4, Link: LinkConfig{Latency: 8, Bandwidth: 1}}, ErrQueue},
		{"huge latency", Config{Tiles: 4, Link: LinkConfig{Latency: MaxLinkLatency + 1, Bandwidth: 1, Queue: 4}}, ErrLatency},
		{"huge bandwidth", Config{Tiles: 4, Link: LinkConfig{Latency: 1, Bandwidth: MaxLinkBandwidth + 1, Queue: 4}}, ErrBandwidth},
		{"home lines not power of two", Config{Tiles: 2, HomeLines: 3}, ErrHomeLines},
		{"bad kind", Config{Tiles: 2, Kind: Kind(9)}, ErrKind},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	d := (Config{}).WithDefaults()
	if d.Tiles != 1 || d.Link != DefaultLinkConfig() || d.HomeLines != 64 {
		t.Fatalf("zero config defaults wrong: %+v", d)
	}
	if k := (Config{Tiles: 4}).WithDefaults().Kind; k != Crossbar {
		t.Fatalf("multi-tile default kind = %v, want crossbar", k)
	}
	// An explicitly chosen kind survives.
	if k := (Config{Tiles: 4, Kind: Mesh}).WithDefaults().Kind; k != Mesh {
		t.Fatalf("explicit mesh overridden to %v", k)
	}
}

func TestGraphShapes(t *testing.T) {
	if n, e := Graph(Direct, 1); n != 1 || len(e) != 0 {
		t.Fatalf("direct graph: %d nodes, %d edges", n, len(e))
	}
	if n, e := Graph(Crossbar, 4); n != 5 || len(e) != 8 {
		t.Fatalf("4-tile crossbar: %d nodes, %d edges (want 5, 8)", n, len(e))
	}
	// 4-tile mesh is a 2×2 grid (4 bidirectional grid channels) plus
	// the hub pair: 2*4+2 = 10 directed edges over 5 nodes.
	if n, e := Graph(Mesh, 4); n != 5 || len(e) != 10 {
		t.Fatalf("4-tile mesh: %d nodes, %d edges (want 5, 10)", n, len(e))
	}
	// Every built-in shape must route (NewNetwork validates
	// connectivity).
	for _, k := range []Kind{Crossbar, Mesh} {
		for _, tiles := range []int{2, 4, 8, 16, 64} {
			sim := event.New()
			nodes, edges := Graph(k, tiles)
			if _, err := NewNetwork(nodes, edges, DefaultLinkConfig(), sim); err != nil {
				t.Fatalf("%v/%d tiles: %v", k, tiles, err)
			}
		}
	}
}

func TestNewNetworkRejections(t *testing.T) {
	sim := event.New()
	link := DefaultLinkConfig()
	if _, err := NewNetwork(2, []Edge{{0, 5}}, link, sim); !errors.Is(err, ErrEdge) {
		t.Fatalf("out-of-range edge: %v", err)
	}
	if _, err := NewNetwork(2, []Edge{{1, 1}}, link, sim); !errors.Is(err, ErrEdge) {
		t.Fatalf("self loop: %v", err)
	}
	if _, err := NewNetwork(2, nil, link, sim); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("no edges: %v", err)
	}
	// One direction only: node 1 cannot reach node 0.
	if _, err := NewNetwork(2, []Edge{{0, 1}}, link, sim); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("one-way pair: %v", err)
	}
	if _, err := NewNetwork(2, []Edge{{0, 1}, {1, 0}}, LinkConfig{Latency: 1, Queue: 4}, sim); !errors.Is(err, ErrZeroBandwidth) {
		t.Fatalf("zero bandwidth: %v", err)
	}
}

// buildPair returns a two-node network with one bidirectional channel
// and a recording sink connected 0→1.
func buildPair(t *testing.T, link LinkConfig) (*event.Sim, cache.Port, *sink, *Network) {
	t.Helper()
	sim := event.New()
	net, err := NewNetwork(2, []Edge{{0, 1}, {1, 0}}, link, sim)
	if err != nil {
		t.Fatal(err)
	}
	sk := &sink{sim: sim}
	return sim, net.Connect(0, 1, sk), sk, net
}

func TestPathLatency(t *testing.T) {
	sim, port, sk, _ := buildPair(t, LinkConfig{Latency: 7, Bandwidth: 8, Queue: 8})
	port.Submit(&mem.Request{})
	sim.Run()
	if len(sk.at) != 1 || sk.at[0] != 7 {
		t.Fatalf("delivery at %v, want [7]", sk.at)
	}
}

func TestSameNodeConnectIsDirect(t *testing.T) {
	sim := event.New()
	net, err := NewNetwork(2, []Edge{{0, 1}, {1, 0}}, DefaultLinkConfig(), sim)
	if err != nil {
		t.Fatal(err)
	}
	sk := &sink{sim: sim}
	if got := net.Connect(1, 1, sk); got != cache.Port(sk) {
		t.Fatal("same-node Connect must return the sink itself")
	}
}

func TestLinkBandwidthSerializes(t *testing.T) {
	sim, port, sk, _ := buildPair(t, LinkConfig{Latency: 10, Bandwidth: 1, Queue: 64})
	for i := 0; i < 4; i++ {
		port.Submit(&mem.Request{})
	}
	sim.Run()
	want := []event.Cycle{10, 11, 12, 13}
	if len(sk.at) != len(want) {
		t.Fatalf("deliveries %v, want %v", sk.at, want)
	}
	for i := range want {
		if sk.at[i] != want[i] {
			t.Fatalf("deliveries %v, want %v", sk.at, want)
		}
	}
}

func TestLinkBoundedQueue(t *testing.T) {
	// Queue 1: each admission waits for the previous transfer to
	// depart, so deliveries space at the full link latency even though
	// bandwidth alone would admit one per cycle.
	sim, port, sk, _ := buildPair(t, LinkConfig{Latency: 10, Bandwidth: 4, Queue: 1})
	for i := 0; i < 3; i++ {
		port.Submit(&mem.Request{})
	}
	sim.Run()
	want := []event.Cycle{10, 20, 30}
	for i := range want {
		if sk.at[i] != want[i] {
			t.Fatalf("deliveries %v, want %v", sk.at, want)
		}
	}
}

func TestResponseDelayMatchesPathLatency(t *testing.T) {
	sim, port, _, _ := buildPair(t, LinkConfig{Latency: 9, Bandwidth: 8, Queue: 8})
	var doneAt event.Cycle
	port.Submit(&mem.Request{Done: func() { doneAt = sim.Now() }})
	sim.Run()
	// Forward 9 cycles, sink fires Done immediately, return pays 9
	// more: round trip 18.
	if doneAt != 18 {
		t.Fatalf("Done at cycle %d, want 18", doneAt)
	}
}

func TestMultiHopRouting(t *testing.T) {
	// 8-tile mesh (2×4 grid + hub off tile 0): tile 7 is the far
	// corner, 1+3 grid hops from tile 0 plus the hub link = 5 hops.
	sim := event.New()
	nodes, edges := Graph(Mesh, 8)
	net, err := NewNetwork(nodes, edges, LinkConfig{Latency: 5, Bandwidth: 8, Queue: 16}, sim)
	if err != nil {
		t.Fatal(err)
	}
	sk := &sink{sim: sim}
	p, ok := net.Connect(7, Hub(8), sk).(*Path)
	if !ok {
		t.Fatal("cross-node Connect must return a *Path")
	}
	if p.Hops() != 5 {
		t.Fatalf("tile 7 → hub hops = %d, want 5", p.Hops())
	}
	if p.Latency() != 25 {
		t.Fatalf("path latency = %d, want 25", p.Latency())
	}
	p.Submit(&mem.Request{})
	sim.Run()
	if len(sk.at) != 1 || sk.at[0] != 25 {
		t.Fatalf("delivery at %v, want [25]", sk.at)
	}
}

func TestLinkStats(t *testing.T) {
	sim, port, _, net := buildPair(t, LinkConfig{Latency: 10, Bandwidth: 1, Queue: 64})
	for i := 0; i < 4; i++ {
		port.Submit(&mem.Request{})
	}
	sim.Run()
	ls := net.LinkStats(nil)
	if len(ls) != 2 {
		t.Fatalf("link count %d, want 2", len(ls))
	}
	fwd := ls[0]
	if fwd.Src != 0 || fwd.Dst != 1 {
		t.Fatalf("edge order changed: %+v", fwd)
	}
	if fwd.Forwarded != 4 {
		t.Fatalf("forwarded %d, want 4", fwd.Forwarded)
	}
	// Admissions 0,1,2,3 were delayed 0+1+2+3 cycles by bandwidth 1.
	if fwd.StallCycles != 6 {
		t.Fatalf("stall cycles %d, want 6", fwd.StallCycles)
	}
	if fwd.QueuePeak != 4 {
		t.Fatalf("queue peak %d, want 4", fwd.QueuePeak)
	}
	if back := ls[1]; back.Forwarded != 0 {
		t.Fatalf("reverse link carried %d", back.Forwarded)
	}
	var zero stats.LinkStats
	if zero != (stats.LinkStats{}) {
		t.Fatal("LinkStats must stay comparable")
	}
}

// TestNetworkResetEquivalence pins the noc Reset contract the system
// reset-equivalence suite relies on: after Reset (even mid-flight) a
// rerun produces identical deliveries and statistics.
func TestNetworkResetEquivalence(t *testing.T) {
	link := LinkConfig{Latency: 6, Bandwidth: 1, Queue: 2}
	drive := func(sim *event.Sim, port cache.Port, net *Network) ([]event.Cycle, []stats.LinkStats) {
		sk := port.(*Path).sink.(*sink)
		sk.at = sk.at[:0]
		for i := 0; i < 5; i++ {
			port.Submit(&mem.Request{})
		}
		sim.Run()
		return append([]event.Cycle(nil), sk.at...), net.LinkStats(nil)
	}
	sim, port, _, net := buildPair(t, link)
	firstAt, firstLS := drive(sim, port, net)

	// Reset mid-flight: submit, step a little, then reset and redrive.
	port.Submit(&mem.Request{})
	port.Submit(&mem.Request{})
	sim.RunUntil(sim.Now() + 2)
	sim.Reset()
	net.Reset()
	againAt, againLS := drive(sim, port, net)

	if len(firstAt) != len(againAt) {
		t.Fatalf("delivery counts differ: %d vs %d", len(firstAt), len(againAt))
	}
	for i := range firstAt {
		if firstAt[i] != againAt[i] {
			t.Fatalf("deliveries differ after reset: %v vs %v", firstAt, againAt)
		}
	}
	for i := range firstLS {
		if firstLS[i] != againLS[i] {
			t.Fatalf("link stats differ after reset:\nfresh: %+v\nreset: %+v", firstLS, againLS)
		}
	}
}

// TestNoCForwardSteadyStateNoAllocs pins the steady-state forwarding
// path at 0 allocs/op: pooled envelopes, pooled return wrappers, the
// link's event.Queue, and the engine's wheel all reuse warm storage.
func TestNoCForwardSteadyStateNoAllocs(t *testing.T) {
	sim := event.New()
	nodes, edges := Graph(Crossbar, 4)
	net, err := NewNetwork(nodes, edges, LinkConfig{Latency: 24, Bandwidth: 2, Queue: 8}, sim)
	if err != nil {
		t.Fatal(err)
	}
	sk := &sink{sim: sim}
	ports := make([]cache.Port, 4)
	for tile := range ports {
		ports[tile] = net.Connect(tile, Hub(4), sk)
	}
	reqs := make([]*mem.Request, 16)
	for i := range reqs {
		reqs[i] = &mem.Request{}
	}
	// Done is consumed by the path's return wrapper, so restore it per
	// submission exactly as the GPU front end does on recycled requests.
	noop := func() {}
	drive := func() {
		for i, r := range reqs {
			r.Done = noop
			ports[i%len(ports)].Submit(r)
		}
		sim.Run()
	}
	// Warm the pools, the queues, and the wheel.
	for i := 0; i < 4; i++ {
		drive()
	}
	if allocs := testing.AllocsPerRun(50, drive); allocs != 0 {
		t.Fatalf("steady-state NoC forwarding allocates %v/op, want 0", allocs)
	}
}
