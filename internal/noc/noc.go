// Package noc models the on-chip/on-package interconnect between GPU
// tiles and the shared memory-side agents: point-to-point links with
// configurable latency and bandwidth, per-link bounded queuing, and hop
// routing over a small topology graph.
//
// The package deliberately reuses the simulator's established idioms so
// the interconnect costs nothing it does not model: each Link defers
// in-flight transfers through one pooled event.Queue (one pre-armed
// drain event, no per-request closures), admission serialization uses
// the same virtual-slot arithmetic as cache tag ports, and multi-hop
// envelopes are free-listed so steady-state forwarding performs no
// allocation (pinned by TestNoCForwardSteadyStateNoAllocs).
//
// A Network is built from a node/edge graph (see Graph for the built-in
// topology shapes) and hands out Paths via Connect. A Path implements
// cache.Port, so any existing hierarchy hand-off (L1→L2, L2→directory,
// directory→DRAM) can be lifted onto the interconnect without the
// endpoints knowing; a same-node Connect returns the sink itself, so a
// single-tile "topology" lowers to exactly the direct wiring it
// replaces.
package noc

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/event"
)

// Kind selects a built-in topology shape.
type Kind uint8

const (
	// Direct is the degenerate single-tile topology: no links, every
	// hand-off is a direct port call. Multi-tile configs that leave
	// Kind unset default to Crossbar (see Config.WithDefaults).
	Direct Kind = iota
	// Crossbar connects every tile to one central hub node by a
	// dedicated link pair; the shared directory sits on the hub.
	Crossbar
	// Mesh arranges the tiles in a near-square 2D grid with links
	// between orthogonal neighbours; the hub hangs off tile 0.
	Mesh
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Direct:
		return "direct"
	case Crossbar:
		return "crossbar"
	case Mesh:
		return "mesh"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds lists the valid topology names in presentation order.
func Kinds() []string { return []string{"direct", "crossbar", "mesh"} }

// ParseKind resolves a topology name; the error for an unknown name
// lists the valid ones (the CLI and server surface it verbatim).
func ParseKind(s string) (Kind, error) {
	switch s {
	case "direct":
		return Direct, nil
	case "crossbar", "xbar":
		return Crossbar, nil
	case "mesh":
		return Mesh, nil
	}
	return 0, fmt.Errorf("noc: unknown topology %q (valid: %s)", s, strings.Join(Kinds(), ", "))
}

// Sanity ceilings. Like gpu.MaxCUs they exist to turn absurd inputs
// (fuzzers, malformed service requests) into errors instead of
// gigabyte allocations; the real machines are far below them.
const (
	// MaxTiles bounds the tile count (power of two required).
	MaxTiles = 64
	// MaxLinkLatency bounds one hop's latency in cycles.
	MaxLinkLatency = event.Cycle(1) << 20
	// MaxLinkBandwidth bounds per-link admissions per cycle.
	MaxLinkBandwidth = 1 << 16
	// MaxLinkQueue bounds one link's in-flight occupancy (the departure
	// ring is allocated at this size per link).
	MaxLinkQueue = 1 << 12
	// MaxHomeLines bounds the per-tile memory interleave granularity.
	MaxHomeLines = 1 << 20
)

// Named validation errors, reachable through errors.Is on anything
// Config.Validate or NewNetwork returns.
var (
	// ErrTiles: tile count not a power of two in [1, MaxTiles].
	ErrTiles = errors.New("noc: Tiles must be a power of two in [1, 64]")
	// ErrKind: topology kind is not one of Kinds().
	ErrKind = errors.New("noc: unknown topology kind")
	// ErrZeroBandwidth: a link admits no traffic.
	ErrZeroBandwidth = errors.New("noc: link bandwidth must be positive")
	// ErrQueue: link queue capacity out of [1, MaxLinkQueue].
	ErrQueue = errors.New("noc: link queue capacity out of range")
	// ErrLatency: link latency above MaxLinkLatency.
	ErrLatency = errors.New("noc: link latency out of range")
	// ErrBandwidth: link bandwidth above MaxLinkBandwidth.
	ErrBandwidth = errors.New("noc: link bandwidth out of range")
	// ErrHomeLines: home interleave not a power of two in [1, MaxHomeLines].
	ErrHomeLines = errors.New("noc: HomeLines must be a power of two in [1, 1<<20]")
	// ErrEdge: an edge references a node outside the graph or loops on
	// itself.
	ErrEdge = errors.New("noc: edge endpoint out of range")
	// ErrDisconnected: the topology graph does not connect every node
	// to every other.
	ErrDisconnected = errors.New("noc: topology graph is disconnected")
)

// LinkConfig is the per-link cost model: every hop pays Latency cycles,
// admits Bandwidth line requests per cycle, and holds at most Queue
// transfers in flight (an admission waits for the oldest in-flight
// transfer to depart once the link is full).
type LinkConfig struct {
	Latency   event.Cycle
	Bandwidth int
	Queue     int
}

// DefaultLinkConfig returns the link model the built-in topologies use
// unless overridden: a 24-cycle hop, one line per cycle, 16 in flight.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{Latency: 24, Bandwidth: 1, Queue: 16}
}

// validate checks one link model against the sanity ceilings.
func (l LinkConfig) validate() error {
	if l.Bandwidth <= 0 {
		return fmt.Errorf("%w (got %d)", ErrZeroBandwidth, l.Bandwidth)
	}
	if l.Bandwidth > MaxLinkBandwidth {
		return fmt.Errorf("%w (got %d, max %d)", ErrBandwidth, l.Bandwidth, MaxLinkBandwidth)
	}
	if l.Queue <= 0 || l.Queue > MaxLinkQueue {
		return fmt.Errorf("%w (got %d, max %d)", ErrQueue, l.Queue, MaxLinkQueue)
	}
	if l.Latency > MaxLinkLatency {
		return fmt.Errorf("%w (got %d, max %d)", ErrLatency, l.Latency, MaxLinkLatency)
	}
	return nil
}

// Config describes one interconnect: how many GPU tiles, the topology
// shape connecting them to the shared hub, the link cost model, and the
// address-interleave granularity that assigns each cache line a home
// tile (and so a home HBM stack).
//
// The zero value means "no interconnect": WithDefaults resolves it to a
// single tile with direct wiring, which the system layer lowers to
// byte-identical pre-NoC construction. Unset fields of a multi-tile
// config take defaults (Crossbar, DefaultLinkConfig, 64-line homes); an
// explicitly wrong field — a zero-bandwidth link next to a non-zero
// latency, a non-power-of-two tile count — is rejected by Validate with
// a named error, never silently patched.
type Config struct {
	// Tiles is the number of GPU tiles (power of two, ≤ MaxTiles).
	// 0 and 1 both mean a single tile with zero-cost direct wiring.
	Tiles int
	// Kind is the topology shape for Tiles > 1.
	Kind Kind
	// Link is the cost model applied to every link in the graph.
	Link LinkConfig
	// HomeLines is the contiguous run of cache lines mapped to one
	// home tile before the interleave moves to the next (power of
	// two; 64 lines = 4 KB stripes by default).
	HomeLines int
}

// DefaultConfig returns the explicit single-tile interconnect.
func DefaultConfig() Config {
	return Config{Tiles: 1, Kind: Direct, Link: DefaultLinkConfig(), HomeLines: 64}
}

// WithDefaults resolves the "unset" conventions: zero Tiles becomes 1,
// an all-zero Link becomes DefaultLinkConfig, zero HomeLines becomes
// 64, and a multi-tile config with Kind left at Direct becomes a
// Crossbar. It never mutates the receiver.
func (c Config) WithDefaults() Config {
	if c.Tiles == 0 {
		c.Tiles = 1
	}
	if c.Link == (LinkConfig{}) {
		c.Link = DefaultLinkConfig()
	}
	if c.HomeLines == 0 {
		c.HomeLines = 64
	}
	if c.Tiles > 1 && c.Kind == Direct {
		c.Kind = Crossbar
	}
	return c
}

// Validate reports configuration errors after resolving WithDefaults.
// Every failure wraps one of the package's named errors.
func (c Config) Validate() error {
	d := c.WithDefaults()
	if d.Tiles < 1 || d.Tiles > MaxTiles || d.Tiles&(d.Tiles-1) != 0 {
		return fmt.Errorf("%w (got %d)", ErrTiles, d.Tiles)
	}
	if d.Kind != Direct && d.Kind != Crossbar && d.Kind != Mesh {
		return fmt.Errorf("%w (got %d)", ErrKind, uint8(d.Kind))
	}
	if d.HomeLines < 1 || d.HomeLines > MaxHomeLines || d.HomeLines&(d.HomeLines-1) != 0 {
		return fmt.Errorf("%w (got %d)", ErrHomeLines, d.HomeLines)
	}
	if d.Tiles == 1 {
		// No links exist; the link model is irrelevant.
		return nil
	}
	return d.Link.validate()
}

// Edge is one directed link in a topology graph.
type Edge struct{ Src, Dst int }

// Graph returns the node count and directed edge list of kind over the
// given tile count. Nodes 0..tiles-1 are the tile endpoints; node
// Hub(tiles) is the shared hub where the directory attaches. Every
// built-in shape emits both directions of each physical channel, in a
// deterministic order (link statistics index into this order).
func Graph(kind Kind, tiles int) (nodes int, edges []Edge) {
	switch kind {
	case Direct:
		return 1, nil
	case Crossbar:
		hub := tiles
		edges = make([]Edge, 0, 2*tiles)
		for t := 0; t < tiles; t++ {
			edges = append(edges, Edge{t, hub}, Edge{hub, t})
		}
		return tiles + 1, edges
	case Mesh:
		rows, cols := meshDims(tiles)
		hub := tiles
		for t := 0; t < tiles; t++ {
			r, c := t/cols, t%cols
			if c+1 < cols {
				edges = append(edges, Edge{t, t + 1}, Edge{t + 1, t})
			}
			if r+1 < rows {
				edges = append(edges, Edge{t, t + cols}, Edge{t + cols, t})
			}
		}
		// The hub (directory + CPU-side fabric) hangs off tile 0's
		// corner router, like an off-mesh I/O die.
		edges = append(edges, Edge{0, hub}, Edge{hub, 0})
		return tiles + 1, edges
	default:
		panic(fmt.Sprintf("noc: Graph called with invalid kind %d", uint8(kind)))
	}
}

// Hub returns the hub node id for a tile count.
func Hub(tiles int) int { return tiles }

// meshDims picks the near-square grid for a power-of-two tile count:
// 4 → 2×2, 8 → 2×4, 16 → 4×4.
func meshDims(tiles int) (rows, cols int) {
	rows = 1
	for rows*rows*4 <= tiles {
		rows *= 2
	}
	return rows, tiles / rows
}
