package noc

import (
	"errors"
	"testing"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// FuzzNoCConfigValidate fuzzes Config over arbitrary parameter tuples
// and asserts the validate-then-build contract: either Validate rejects
// the configuration with one of the package's named errors, or the
// topology graph builds into a Network that delivers requests between
// every tile and the hub — never a panic, never a hang. dropEdge
// optionally removes one directed edge before building, so disconnected
// graphs are exercised too: NewNetwork must answer with ErrDisconnected
// (or ErrEdge), not a bad route table.
func FuzzNoCConfigValidate(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.Tiles, int(d.Kind), uint64(d.Link.Latency), d.Link.Bandwidth, d.Link.Queue, d.HomeLines, -1)
	f.Add(0, 0, uint64(0), 0, 0, 0, -1)
	f.Add(4, int(Crossbar), uint64(24), 1, 16, 64, 2)
	f.Add(8, int(Mesh), uint64(5), 2, 4, 128, 0)
	f.Add(64, int(Mesh), uint64(1), 1, 1, 1, -1)
	f.Add(3, int(Crossbar), uint64(10), 1, 8, 64, -1)
	f.Add(2, int(Crossbar), uint64(0), 0, 0, 64, -1)
	f.Fuzz(func(t *testing.T, tiles, kind int, latency uint64, bandwidth, queue, homeLines, dropEdge int) {
		cfg := Config{
			Tiles: tiles, Kind: Kind(kind),
			Link:      LinkConfig{Latency: event.Cycle(latency), Bandwidth: bandwidth, Queue: queue},
			HomeLines: homeLines,
		}
		err := cfg.Validate()
		if err != nil {
			// Rejections must be named, so callers can errors.Is them.
			named := false
			for _, want := range []error{ErrTiles, ErrKind, ErrZeroBandwidth, ErrQueue,
				ErrLatency, ErrBandwidth, ErrHomeLines} {
				if errors.Is(err, want) {
					named = true
					break
				}
			}
			if !named {
				t.Fatalf("unnamed validation error for %+v: %v", cfg, err)
			}
			return
		}
		cfg = cfg.WithDefaults()
		if cfg.Tiles == 1 {
			// Single tile lowers to direct wiring; no network to build.
			return
		}
		sim := event.New()
		nodes, edges := Graph(cfg.Kind, cfg.Tiles)
		if dropEdge >= 0 && dropEdge < len(edges) {
			edges = append(append([]Edge(nil), edges[:dropEdge]...), edges[dropEdge+1:]...)
		}
		net, err := NewNetwork(nodes, edges, cfg.Link, sim)
		if err != nil {
			if !errors.Is(err, ErrDisconnected) && !errors.Is(err, ErrEdge) {
				t.Fatalf("unnamed build error for %+v: %v", cfg, err)
			}
			return
		}
		// Drive one request along every tile↔hub path both ways and
		// assert delivery: the route tables a successful build produced
		// must actually work.
		hub := Hub(cfg.Tiles)
		delivered := 0
		to := cache.PortFunc(func(req *mem.Request) { delivered++ })
		for tile := 0; tile < cfg.Tiles; tile++ {
			net.Connect(tile, hub, to).Submit(&mem.Request{})
			net.Connect(hub, tile, to).Submit(&mem.Request{})
		}
		sim.Run()
		if want := 2 * cfg.Tiles; delivered != want {
			t.Fatalf("%+v delivered %d of %d requests", cfg, delivered, want)
		}
	})
}
