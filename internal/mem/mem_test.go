package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct {
		in, want Addr
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 64},
		{65, 64},
		{127, 64},
		{128, 128},
		{0xdeadbeef, 0xdeadbec0},
	}
	for _, c := range cases {
		if got := LineAddr(c.in); got != c.want {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", uint64(c.in), uint64(got), uint64(c.want))
		}
	}
}

func TestLineIndex(t *testing.T) {
	if LineIndex(0) != 0 || LineIndex(63) != 0 || LineIndex(64) != 1 || LineIndex(640) != 10 {
		t.Fatal("LineIndex arithmetic wrong")
	}
}

// Property: LineAddr is idempotent, aligned, and never exceeds its input.
func TestPropertyLineAddr(t *testing.T) {
	f := func(a uint64) bool {
		la := LineAddr(Addr(a))
		return la == LineAddr(la) && uint64(la)%LineSize == 0 && la <= Addr(a) && Addr(a)-la < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestRequestValidate(t *testing.T) {
	ok := Request{ID: 1, Line: 128, Kind: Load}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	misaligned := Request{ID: 2, Line: 100, Kind: Load}
	if err := misaligned.Validate(); err == nil {
		t.Fatal("misaligned line accepted")
	}
	badKind := Request{ID: 3, Line: 64, Kind: Kind(7)}
	if err := badKind.Validate(); err == nil {
		t.Fatal("invalid kind accepted")
	}
	badCU := Request{ID: 4, Line: 64, Kind: Store, CU: -1}
	if err := badCU.Validate(); err == nil {
		t.Fatal("negative CU accepted")
	}
}

func TestRequestString(t *testing.T) {
	r := Request{ID: 5, Line: 0x1000, Kind: Store, CU: 3, Wavefront: 11, Bypass: true}
	s := r.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, sub := range []string{"store", "bypass", "cu=3"} {
		if !contains(s, sub) {
			t.Errorf("String() = %q missing %q", s, sub)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestIDSourceUnique(t *testing.T) {
	var src IDSource
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := src.Next()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}
