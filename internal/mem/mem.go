// Package mem defines the memory request vocabulary shared by every level
// of the simulated memory hierarchy: addresses, cache-line arithmetic,
// access kinds, and the Request type that flows from the GPU coalescer
// through the caches to DRAM.
package mem

import "fmt"

// Addr is a byte address in the unified CPU-GPU address space.
type Addr uint64

// LineSize is the cache line size in bytes at every level (Table 1: 64 B).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// LineAddr returns the line-aligned address containing a.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// LineIndex returns the line number of a (address divided by the line size).
func LineIndex(a Addr) uint64 { return uint64(a) >> LineShift }

// Kind distinguishes load and store requests.
type Kind uint8

const (
	// Load is a read request.
	Load Kind = iota
	// Store is a write request.
	Store
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", k)
	}
}

// Request is one line-granularity memory request. The GPU coalescer emits
// one Request per unique line touched by a wavefront memory instruction.
type Request struct {
	// ID is unique per request within a run; used for deterministic
	// bookkeeping and debugging.
	ID uint64
	// PC identifies the static memory instruction that issued the
	// request. The PC-based bypass predictor indexes on it.
	PC uint64
	// Line is the line-aligned target address.
	Line Addr
	// Kind is Load or Store.
	Kind Kind
	// CU is the issuing compute unit (selects the L1).
	CU int
	// Wavefront is the issuing wavefront's global id.
	Wavefront int
	// Bypass marks a request that must not allocate in GPU caches.
	// The policy layer sets it for Uncached traffic, store traffic
	// under CacheR, L1 store traffic under CacheRW, allocation-bypass
	// conversions, and PC-predictor bypass decisions.
	Bypass bool
	// Done is invoked exactly once when the request's data returns to
	// (loads) or is accepted on behalf of (stores) the issuing wavefront.
	//
	// Done is the request's last touch: originators recycle request
	// objects through free lists once it has fired, so components must
	// not retain a *Request (or read its fields) after invoking Done.
	// Observers that need request data later must copy it at Submit
	// time.
	Done func()
}

// Validate performs basic structural checks, returning a descriptive error
// for malformed requests. Components call it in debug paths and tests.
func (r *Request) Validate() error {
	if r.Line != LineAddr(r.Line) {
		return fmt.Errorf("mem: request %d line %#x is not line-aligned", r.ID, uint64(r.Line))
	}
	if r.Kind != Load && r.Kind != Store {
		return fmt.Errorf("mem: request %d has invalid kind %d", r.ID, r.Kind)
	}
	if r.CU < 0 {
		return fmt.Errorf("mem: request %d has negative CU %d", r.ID, r.CU)
	}
	return nil
}

// String implements fmt.Stringer for debugging output.
func (r *Request) String() string {
	by := ""
	if r.Bypass {
		by = " bypass"
	}
	return fmt.Sprintf("req#%d %s line=%#x pc=%#x cu=%d wf=%d%s",
		r.ID, r.Kind, uint64(r.Line), r.PC, r.CU, r.Wavefront, by)
}

// IDSource hands out unique request IDs. The zero value is ready to use.
type IDSource struct{ next uint64 }

// Next returns a fresh request id.
func (s *IDSource) Next() uint64 { s.next++; return s.next }

// Reset restarts the sequence from 1, so a reset component hands out the
// same ids a fresh one would.
func (s *IDSource) Reset() { s.next = 0 }
