package stats

import (
	"strconv"
	"strings"
	"unsafe"
)

// CanonicalKey joins label/value pairs into a stable content-address
// string ("w=FwSoft|v=CacheRW|s=0.05|..."). The simulator is
// deterministic, so a canonical serialization of the parameters that
// select a result IS a content address for that result: two requests
// with the same key are guaranteed byte-identical snapshots. Callers
// choose the labels and their order; the only contract here is that
// equal pair lists produce equal keys and that neither labels nor
// values may contain the '|' separator or '='.
func CanonicalKey(pairs ...string) string {
	if len(pairs)%2 != 0 {
		panic("stats: CanonicalKey requires label/value pairs")
	}
	var b strings.Builder
	n := 0
	for _, p := range pairs {
		n += len(p) + 1
	}
	b.Grow(n)
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(pairs[i])
		b.WriteByte('=')
		b.WriteString(pairs[i+1])
	}
	return b.String()
}

// KeyFloat renders a float for CanonicalKey in the shortest form that
// round-trips exactly (strconv 'g', precision -1), so 1, 1.0, and
// 0.9999999999999999 canonicalize by value, not by how the client
// spelled them.
func KeyFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SizeBytes estimates the snapshot's in-memory footprint: the struct
// itself plus its per-tile and per-link slices. Result caches use it to
// enforce a byte budget; it is an accounting figure, not an exact heap
// measurement.
func (s Snapshot) SizeBytes() int64 {
	n := int64(unsafe.Sizeof(s))
	n += int64(len(s.Tiles)) * int64(unsafe.Sizeof(TileStats{}))
	n += int64(len(s.Links)) * int64(unsafe.Sizeof(LinkStats{}))
	return n
}
