package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCacheStatsAccessesAndHitRate(t *testing.T) {
	c := CacheStats{Hits: 30, Misses: 10, Bypasses: 5, Coalesced: 5}
	if c.Accesses() != 50 {
		t.Fatalf("Accesses = %d, want 50", c.Accesses())
	}
	if got := c.HitRate(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("HitRate = %v, want 0.75", got)
	}
	var zero CacheStats
	if zero.HitRate() != 0 {
		t.Fatal("zero-value HitRate should be 0")
	}
}

func TestCacheStatsAdd(t *testing.T) {
	a := CacheStats{Hits: 1, Misses: 2, Bypasses: 3, Coalesced: 4, Stalls: 5,
		Writebacks: 6, Rinses: 7, Invalidates: 8, PredBypass: 9, AllocBypass: 10}
	b := a
	a.Add(b)
	if a.Hits != 2 || a.Misses != 4 || a.Bypasses != 6 || a.Coalesced != 8 ||
		a.Stalls != 10 || a.Writebacks != 12 || a.Rinses != 14 ||
		a.Invalidates != 16 || a.PredBypass != 18 || a.AllocBypass != 20 {
		t.Fatalf("Add missed a field: %+v", a)
	}
}

func TestDRAMStats(t *testing.T) {
	d := DRAMStats{Reads: 70, Writes: 30, RowHits: 60, RowMisses: 20, RowConflicts: 20}
	if d.Accesses() != 100 {
		t.Fatalf("Accesses = %d, want 100", d.Accesses())
	}
	if got := d.RowHitRate(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("RowHitRate = %v, want 0.6", got)
	}
	var zero DRAMStats
	if zero.RowHitRate() != 0 {
		t.Fatal("zero-value RowHitRate should be 0")
	}
}

func TestDRAMStatsAdd(t *testing.T) {
	a := DRAMStats{Reads: 1, Writes: 2, RowHits: 3, RowMisses: 4, RowConflicts: 5,
		LoadRowHits: 6, LoadRowTotal: 7, StoreRowHits: 8, StoreRowTotal: 9}
	b := a
	a.Add(b)
	if a.Reads != 2 || a.Writes != 4 || a.RowHits != 6 || a.RowMisses != 8 ||
		a.RowConflicts != 10 || a.LoadRowHits != 12 || a.LoadRowTotal != 14 ||
		a.StoreRowHits != 16 || a.StoreRowTotal != 18 {
		t.Fatalf("Add missed a field: %+v", a)
	}
}

func TestGVOPSAndGMRs(t *testing.T) {
	s := Snapshot{Cycles: 1600e6, VectorOps: 3200e9, GPUMemRequests: 16e9}
	// 1600e6 cycles at 1600 MHz = 1 second.
	if got := s.GVOPS(1600); math.Abs(got-3200) > 1e-6 {
		t.Fatalf("GVOPS = %v, want 3200", got)
	}
	if got := s.GMRs(1600); math.Abs(got-16) > 1e-9 {
		t.Fatalf("GMRs = %v, want 16", got)
	}
	var zero Snapshot
	if zero.GVOPS(1600) != 0 || zero.GMRs(1600) != 0 {
		t.Fatal("zero-cycle snapshot should report 0 bandwidth")
	}
}

func TestStallsPerRequest(t *testing.T) {
	s := Snapshot{GPUMemRequests: 100, L1: CacheStats{Stalls: 40}, L2: CacheStats{Stalls: 10}}
	if got := s.StallsPerRequest(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("StallsPerRequest = %v, want 0.5", got)
	}
	var zero Snapshot
	if zero.StallsPerRequest() != 0 {
		t.Fatal("zero-request snapshot should report 0")
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{Cycles: 10, VectorOps: 20, GPUMemRequests: 2,
		DRAM: DRAMStats{Reads: 1, RowHits: 1}}
	str := s.String()
	if !strings.Contains(str, "cycles=10") || !strings.Contains(str, "dram=1") {
		t.Fatalf("String() = %q", str)
	}
}

// Property: Add is commutative over the counted fields.
func TestPropertyCacheAddCommutative(t *testing.T) {
	f := func(h1, m1, h2, m2 uint32) bool {
		a := CacheStats{Hits: uint64(h1), Misses: uint64(m1)}
		b := CacheStats{Hits: uint64(h2), Misses: uint64(m2)}
		x, y := a, b
		x.Add(b)
		y.Add(a)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: HitRate is always within [0,1].
func TestPropertyHitRateBounded(t *testing.T) {
	f := func(h, m uint32) bool {
		c := CacheStats{Hits: uint64(h), Misses: uint64(m)}
		r := c.HitRate()
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
