// Package stats collects the counters every simulator component reports
// and the per-run Snapshot the experiment harness consumes. Keeping all
// statistics in one place makes figure generation a pure function of a
// Snapshot.
package stats

import (
	"fmt"
	"slices"
)

// Snapshot aggregates every statistic the paper's figures need for one
// simulated run (one workload under one cache configuration).
type Snapshot struct {
	// Cycles is the end-to-end execution time in GPU cycles.
	Cycles uint64
	// VectorOps is the total vector (SIMD lane) operations executed.
	VectorOps uint64
	// GPUMemRequests is the number of line requests issued by the GPU
	// coalescer to the memory system (the denominator of Figure 8 and
	// the numerator of Figure 5).
	GPUMemRequests uint64

	// L1, L2 are per-level cache statistics summed over all instances.
	L1, L2 CacheStats

	// DRAM is the memory controller's view.
	DRAM DRAMStats

	// Kernels is the number of kernels dispatched.
	Kernels uint64
	// FootprintBytes is the number of distinct bytes touched.
	FootprintBytes uint64

	// Tiles holds per-tile statistics when the run used a multi-tile
	// topology (internal/noc); nil for single-tile runs, so the
	// pre-topology Snapshot layout — and the 0 allocs/op contract of
	// Add on single-tile slabs — is unchanged. Index is the tile id.
	Tiles []TileStats `json:"Tiles,omitempty"`
	// Links holds per-link statistics in the topology graph's edge
	// order; nil for single-tile runs.
	Links []LinkStats `json:"Links,omitempty"`
}

// TileStats is one GPU tile's share of the hierarchy counters: its own
// L1s, its L2 slice, and its local HBM stack.
type TileStats struct {
	L1, L2 CacheStats
	DRAM   DRAMStats
}

// Add accumulates other into t.
func (t *TileStats) Add(other TileStats) {
	t.L1.Add(other.L1)
	t.L2.Add(other.L2)
	t.DRAM.Add(other.DRAM)
}

// LinkStats counts traffic on one interconnect link (one direction of
// one physical channel). Src and Dst are topology node ids: tiles are
// 0..Tiles-1 and the hub (directory) is node Tiles.
type LinkStats struct {
	Src, Dst int
	// Forwarded is the number of requests the link carried.
	Forwarded uint64
	// StallCycles sums the admission delay imposed by the link's
	// bandwidth serialization and bounded queue.
	StallCycles uint64
	// QueuePeak is the in-flight occupancy high-water mark. Merging
	// snapshots keeps the maximum, not the sum.
	QueuePeak uint64
}

// add merges other into l: traffic sums, the occupancy peak takes the
// maximum. A zero-valued l adopts other's link identity.
func (l *LinkStats) add(other LinkStats) {
	if *l == (LinkStats{}) {
		l.Src, l.Dst = other.Src, other.Dst
	}
	l.Forwarded += other.Forwarded
	l.StallCycles += other.StallCycles
	if other.QueuePeak > l.QueuePeak {
		l.QueuePeak = other.QueuePeak
	}
}

// CacheStats counts events at one cache level.
type CacheStats struct {
	Hits        uint64 // requests served from a valid line
	Misses      uint64 // requests that allocated and fetched
	Bypasses    uint64 // requests that skipped this level
	Coalesced   uint64 // requests merged into a pending MSHR or bypass entry
	Stalls      uint64 // cycles a ready request was blocked from querying the cache
	Writebacks  uint64 // dirty lines written toward memory
	Rinses      uint64 // extra writebacks triggered by the dirty-block-index rinser
	Invalidates uint64 // lines dropped by kernel-boundary self-invalidation
	PredBypass  uint64 // requests bypassed by the PC predictor
	AllocBypass uint64 // requests converted to bypass by allocation bypassing

	// Stall attribution (cycles; the components sum to Stalls):
	StallPort   uint64 // waiting for a tag-port slot
	StallAlloc  uint64 // blocking allocation: every way in the set busy
	StallMSHR   uint64 // all MSHRs in use
	StallBypass uint64 // all bypass-coalescing entries in use
	StallLine   uint64 // store waiting for its line's pending fill
}

// Accesses returns the total requests that consulted this level.
func (c CacheStats) Accesses() uint64 { return c.Hits + c.Misses + c.Coalesced + c.Bypasses }

// HitRate returns hits / (hits+misses), or 0 when the level was unused.
func (c CacheStats) HitRate() float64 {
	den := c.Hits + c.Misses
	if den == 0 {
		return 0
	}
	return float64(c.Hits) / float64(den)
}

// Add accumulates other into c.
func (c *CacheStats) Add(other CacheStats) {
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.Bypasses += other.Bypasses
	c.Coalesced += other.Coalesced
	c.Stalls += other.Stalls
	c.Writebacks += other.Writebacks
	c.Rinses += other.Rinses
	c.Invalidates += other.Invalidates
	c.PredBypass += other.PredBypass
	c.AllocBypass += other.AllocBypass
	c.StallPort += other.StallPort
	c.StallAlloc += other.StallAlloc
	c.StallMSHR += other.StallMSHR
	c.StallBypass += other.StallBypass
	c.StallLine += other.StallLine
}

// DRAMStats counts memory-controller events.
type DRAMStats struct {
	Reads         uint64
	Writes        uint64
	RowHits       uint64
	RowMisses     uint64 // row empty (activate only)
	RowConflicts  uint64 // different row open (precharge+activate)
	LoadRowHits   uint64
	LoadRowTotal  uint64
	StoreRowHits  uint64
	StoreRowTotal uint64
}

// Accesses returns total DRAM accesses (the quantity of Figures 7 and 11).
func (d DRAMStats) Accesses() uint64 { return d.Reads + d.Writes }

// RowHitRate returns the fraction of accesses that hit an open row
// (Figures 9 and 13).
func (d DRAMStats) RowHitRate() float64 {
	den := d.RowHits + d.RowMisses + d.RowConflicts
	if den == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(den)
}

// Add accumulates other into d.
func (d *DRAMStats) Add(other DRAMStats) {
	d.Reads += other.Reads
	d.Writes += other.Writes
	d.RowHits += other.RowHits
	d.RowMisses += other.RowMisses
	d.RowConflicts += other.RowConflicts
	d.LoadRowHits += other.LoadRowHits
	d.LoadRowTotal += other.LoadRowTotal
	d.StoreRowHits += other.StoreRowHits
	d.StoreRowTotal += other.StoreRowTotal
}

// Add accumulates other into s field-wise: cycles, GPU counters, cache
// and DRAM statistics, kernels, and footprint bytes all sum. It is the
// single merge the harness uses wherever snapshots combine — per-worker
// matrix aggregation slabs, report totals, trace replay summaries — so
// no caller hand-sums a subset of fields and silently drops the rest
// when Snapshot grows one.
// Per-tile and per-link slices merge element-wise, growing s as needed;
// when both sides are nil (every single-tile run) no allocation happens,
// preserving the slab contract pinned by TestTotalsAllocationFree.
func (s *Snapshot) Add(other Snapshot) {
	s.Cycles += other.Cycles
	s.VectorOps += other.VectorOps
	s.GPUMemRequests += other.GPUMemRequests
	s.L1.Add(other.L1)
	s.L2.Add(other.L2)
	s.DRAM.Add(other.DRAM)
	s.Kernels += other.Kernels
	s.FootprintBytes += other.FootprintBytes
	if len(other.Tiles) > 0 {
		for len(s.Tiles) < len(other.Tiles) {
			s.Tiles = append(s.Tiles, TileStats{})
		}
		for i := range other.Tiles {
			s.Tiles[i].Add(other.Tiles[i])
		}
	}
	if len(other.Links) > 0 {
		for len(s.Links) < len(other.Links) {
			s.Links = append(s.Links, LinkStats{})
		}
		for i := range other.Links {
			s.Links[i].add(other.Links[i])
		}
	}
}

// Equal reports whether two snapshots are identical, field for field.
// Snapshot stopped being a comparable struct when the per-tile and
// per-link slices arrived; every byte-identity contract in the test
// suite (golden matrix, reset-vs-fresh, sequential-vs-parallel,
// NoC-vs-direct) goes through this method instead of ==.
// Like Add, it enumerates every field: a new field must be added here
// too, or byte-identity tests stop seeing it.
func (s Snapshot) Equal(o Snapshot) bool {
	return s.Cycles == o.Cycles &&
		s.VectorOps == o.VectorOps &&
		s.GPUMemRequests == o.GPUMemRequests &&
		s.L1 == o.L1 &&
		s.L2 == o.L2 &&
		s.DRAM == o.DRAM &&
		s.Kernels == o.Kernels &&
		s.FootprintBytes == o.FootprintBytes &&
		slices.Equal(s.Tiles, o.Tiles) &&
		slices.Equal(s.Links, o.Links)
}

// GVOPS returns giga vector operations per second given the GPU clock in
// MHz (Figure 4).
func (s Snapshot) GVOPS(clockMHz float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	seconds := float64(s.Cycles) / (clockMHz * 1e6)
	return float64(s.VectorOps) / seconds / 1e9
}

// GMRs returns giga GPU memory requests per second given the GPU clock in
// MHz (Figure 5).
func (s Snapshot) GMRs(clockMHz float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	seconds := float64(s.Cycles) / (clockMHz * 1e6)
	return float64(s.GPUMemRequests) / seconds / 1e9
}

// StallsPerRequest returns total GPU cache stalls divided by GPU memory
// requests (Figures 8 and 12).
func (s Snapshot) StallsPerRequest() float64 {
	if s.GPUMemRequests == 0 {
		return 0
	}
	return float64(s.L1.Stalls+s.L2.Stalls) / float64(s.GPUMemRequests)
}

// String gives a compact human-readable summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("cycles=%d vops=%d memreq=%d dram=%d rowhit=%.1f%% stalls/req=%.3f",
		s.Cycles, s.VectorOps, s.GPUMemRequests, s.DRAM.Accesses(), 100*s.DRAM.RowHitRate(), s.StallsPerRequest())
}
