package stats

import "testing"

func TestCanonicalKeyStable(t *testing.T) {
	a := CanonicalKey("w", "FwSoft", "v", "CacheRW", "s", KeyFloat(0.05))
	b := CanonicalKey("w", "FwSoft", "v", "CacheRW", "s", KeyFloat(0.05))
	if a != b {
		t.Fatalf("equal tuples gave different keys: %q vs %q", a, b)
	}
	if want := "w=FwSoft|v=CacheRW|s=0.05"; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if c := CanonicalKey("w", "FwSoft", "v", "CacheR", "s", KeyFloat(0.05)); c == a {
		t.Fatalf("different variants collided on %q", c)
	}
}

func TestCanonicalKeyOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd pair count did not panic")
		}
	}()
	CanonicalKey("w", "FwSoft", "orphan")
}

func TestKeyFloatByValue(t *testing.T) {
	if KeyFloat(1) != KeyFloat(1.0) {
		t.Fatal("1 and 1.0 canonicalized differently")
	}
	if KeyFloat(0.25) == KeyFloat(0.250001) {
		t.Fatal("distinct scales collided")
	}
}

func TestSizeBytes(t *testing.T) {
	var s Snapshot
	base := s.SizeBytes()
	if base <= 0 {
		t.Fatalf("empty snapshot SizeBytes = %d, want > 0", base)
	}
	s.Tiles = make([]TileStats, 4)
	s.Links = make([]LinkStats, 3)
	grown := s.SizeBytes()
	if grown <= base {
		t.Fatalf("snapshot with tiles/links SizeBytes = %d, want > %d", grown, base)
	}
}
