// Package dram models the HBM2 main memory of the simulated APU
// (Table 1: 16 channels, 16 banks per channel, ~512 GB/s) at the level of
// detail the paper's Figures 9 and 13 require: per-bank open rows, row
// hit/miss/conflict timing, and per-bank FR-FCFS scheduling.
//
// Address interleaving spreads consecutive InterleaveLines-line blocks
// across channels (256 B granularity by default, as GPU memory
// controllers do to preserve row-buffer locality); within a channel,
// consecutive blocks fill a row's columns, then move to the next bank.
// Regular streaming traffic therefore enjoys high row-buffer locality —
// exactly the property the paper observes MI workloads to have, and
// which caching can disrupt.
package dram

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Config parameterizes the memory system. All timings are in GPU cycles.
type Config struct {
	// Channels and BanksPerChannel define the parallelism (Table 1:
	// 16 and 16). Both must be powers of two.
	Channels, BanksPerChannel int
	// RowBytes is the row-buffer size per bank (2 KB → 32 lines).
	RowBytes int
	// InterleaveLines is the channel-interleave granularity in cache
	// lines (4 → 256 B blocks). Must be a power of two.
	InterleaveLines int
	// TRCD is the activate (row open) latency.
	TRCD event.Cycle
	// TRP is the precharge (row close) latency.
	TRP event.Cycle
	// TCL is the CAS (column access) latency.
	TCL event.Cycle
	// TBurst is the data-bus occupancy of one line transfer; it sets
	// the per-channel bandwidth ceiling.
	TBurst event.Cycle
	// Lookahead bounds how deep FR-FCFS searches each bank queue for
	// a row hit before falling back to oldest-first.
	Lookahead int
	// FixedLatency is the controller/interconnect overhead added to
	// every response.
	FixedLatency event.Cycle
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Channels <= 0 || c.Channels&(c.Channels-1) != 0 {
		return fmt.Errorf("dram: Channels must be a positive power of two, got %d", c.Channels)
	}
	if c.BanksPerChannel <= 0 || c.BanksPerChannel&(c.BanksPerChannel-1) != 0 {
		return fmt.Errorf("dram: BanksPerChannel must be a positive power of two, got %d", c.BanksPerChannel)
	}
	if c.RowBytes < mem.LineSize || c.RowBytes%mem.LineSize != 0 {
		return fmt.Errorf("dram: RowBytes must be a positive multiple of the line size, got %d", c.RowBytes)
	}
	rl := c.RowBytes / mem.LineSize
	if rl&(rl-1) != 0 {
		return fmt.Errorf("dram: RowBytes/LineSize must be a power of two, got %d", rl)
	}
	if c.InterleaveLines <= 0 || c.InterleaveLines&(c.InterleaveLines-1) != 0 {
		return fmt.Errorf("dram: InterleaveLines must be a positive power of two, got %d", c.InterleaveLines)
	}
	if c.TBurst == 0 {
		return fmt.Errorf("dram: TBurst must be nonzero")
	}
	if c.Lookahead <= 0 {
		return fmt.Errorf("dram: Lookahead must be positive, got %d", c.Lookahead)
	}
	return nil
}

// Default returns the Table 1 HBM2 configuration expressed in GPU cycles
// (1.6 GHz GPU clock, 1000 MHz memory clock).
func Default() Config {
	return Config{
		Channels:        16,
		BanksPerChannel: 16,
		RowBytes:        2048,
		InterleaveLines: 4,
		TRCD:            22,
		TRP:             22,
		TCL:             22,
		TBurst:          3,
		Lookahead:       8,
		FixedLatency:    48,
	}
}

// Location is the decoded placement of a line address.
type Location struct {
	Channel int
	Bank    int
	Row     uint64
	Column  int
}

// Map decodes a line address into its channel, bank, row and column under
// cfg's interleaving.
func (c *Config) Map(lineAddr mem.Addr) Location {
	lineNum := mem.LineIndex(lineAddr)
	g := uint64(c.InterleaveLines)
	rowLines := uint64(c.RowBytes / mem.LineSize)

	block := lineNum / g
	within := lineNum % g
	ch := int(block % uint64(c.Channels))
	localLine := (block/uint64(c.Channels))*g + within

	col := int(localLine % rowLines)
	bankIdx := int((localLine / rowLines) % uint64(c.BanksPerChannel))
	row := localLine / rowLines / uint64(c.BanksPerChannel)
	return Location{Channel: ch, Bank: bankIdx, Row: row, Column: col}
}

// RowID returns a globally unique row identifier for a line address; the
// L2 dirty-block-index rinser groups dirty lines by it.
func (c *Config) RowID(lineAddr mem.Addr) uint64 {
	loc := c.Map(lineAddr)
	return (loc.Row*uint64(c.BanksPerChannel)+uint64(loc.Bank))*uint64(c.Channels) + uint64(loc.Channel)
}

type entry struct {
	req    *mem.Request
	row    uint64
	seq    uint64
	served bool
}

// bankQ is one bank: its open-row state and its request queue. The queue
// uses tombstones so out-of-order FR-FCFS service stays O(lookahead).
type bankQ struct {
	entries []entry
	head    int
	live    int

	open    bool
	openRow uint64
	readyAt event.Cycle
}

func (b *bankQ) push(e entry) {
	b.entries = append(b.entries, e)
	b.live++
}

func (b *bankQ) serve(i int) entry {
	e := b.entries[i]
	b.entries[i].served = true
	b.entries[i].req = nil
	b.live--
	for b.head < len(b.entries) && b.entries[b.head].served {
		b.head++
	}
	if b.head > 256 && b.head*2 > len(b.entries) {
		n := copy(b.entries, b.entries[b.head:])
		b.entries = b.entries[:n]
		b.head = 0
	}
	return e
}

type channel struct {
	banks     []bankQ
	live      int
	busFreeAt event.Cycle

	// ticker re-arms the channel's scheduling attempt. It replaces the
	// generation-counter supersession scheme: arming an earlier attempt
	// used to orphan the pending one's closure in the event heap; the
	// ticker's single pre-built callback is idempotent instead (a stale
	// fire re-checks the bus/bank guards and re-arms), so no closures
	// pile up however often ticks are superseded.
	ticker *event.Ticker
}

// Controller is the memory controller; it implements cache.Port.
type Controller struct {
	cfg      Config
	sim      *event.Sim
	channels []channel
	seq      uint64

	// Stats accumulates controller counters.
	Stats stats.DRAMStats
}

// New builds a Controller. Invalid configuration panics: memory geometry
// is fixed at system construction.
func New(cfg Config, sim *event.Sim) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Controller{cfg: cfg, sim: sim, channels: make([]channel, cfg.Channels)}
	for i := range d.channels {
		ci := i
		d.channels[i].banks = make([]bankQ, cfg.BanksPerChannel)
		d.channels[i].ticker = event.NewTicker(sim, func() { d.tick(ci) })
	}
	return d
}

// Submit implements the Port interface: the request joins its bank's
// queue and is serviced under per-bank FR-FCFS.
func (d *Controller) Submit(req *mem.Request) {
	loc := d.cfg.Map(req.Line)
	ch := &d.channels[loc.Channel]
	d.seq++
	ch.banks[loc.Bank].push(entry{req: req, row: loc.Row, seq: d.seq})
	ch.live++
	d.scheduleTick(loc.Channel, d.sim.Now())
}

// scheduleTick arranges a scheduling attempt for channel ci at or
// before time t; requests at or after an already-armed attempt coalesce
// into it.
func (d *Controller) scheduleTick(ci int, t event.Cycle) {
	d.channels[ci].ticker.ArmAt(t)
}

// tick attempts to issue one request on channel ci: first the oldest
// row-hitting request on any ready bank (searching each bank queue up to
// Lookahead deep), then the oldest request on any ready bank, else it
// re-arms for the earliest bank-ready time. It is safe to invoke at any
// time (stale ticker fires included): issuing is gated on the bus and
// bank guards, never on who scheduled the attempt.
func (d *Controller) tick(ci int) {
	ch := &d.channels[ci]
	if ch.live == 0 {
		return
	}
	now := d.sim.Now()
	if ch.busFreeAt > now {
		d.scheduleTick(ci, ch.busFreeAt)
		return
	}

	pickBank, pickIdx := -1, -1
	var pickSeq uint64

	// Row-hit pass: oldest row hit across ready banks.
	for bi := range ch.banks {
		b := &ch.banks[bi]
		if b.live == 0 || b.readyAt > now || !b.open {
			continue
		}
		scanned := 0
		for i := b.head; i < len(b.entries) && scanned < d.cfg.Lookahead; i++ {
			e := &b.entries[i]
			if e.served {
				continue
			}
			scanned++
			if e.row == b.openRow {
				if pickBank == -1 || e.seq < pickSeq {
					pickBank, pickIdx, pickSeq = bi, i, e.seq
				}
				break
			}
		}
	}
	// FCFS pass: oldest head entry across ready banks.
	if pickBank == -1 {
		for bi := range ch.banks {
			b := &ch.banks[bi]
			if b.live == 0 || b.readyAt > now {
				continue
			}
			e := &b.entries[b.head]
			if pickBank == -1 || e.seq < pickSeq {
				pickBank, pickIdx, pickSeq = bi, b.head, e.seq
			}
		}
	}
	if pickBank == -1 {
		// Every bank with work is busy: wake at the earliest ready.
		earliest := event.Cycle(0)
		for bi := range ch.banks {
			b := &ch.banks[bi]
			if b.live == 0 {
				continue
			}
			if earliest == 0 || b.readyAt < earliest {
				earliest = b.readyAt
			}
		}
		d.scheduleTick(ci, earliest)
		return
	}

	b := &ch.banks[pickBank]
	e := b.serve(pickIdx)
	ch.live--

	var access event.Cycle
	switch {
	case b.open && b.openRow == e.row:
		access = d.cfg.TCL
		d.Stats.RowHits++
		d.countRow(e.req.Kind, true)
	case !b.open:
		access = d.cfg.TRCD + d.cfg.TCL
		d.Stats.RowMisses++
		d.countRow(e.req.Kind, false)
	default:
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCL
		d.Stats.RowConflicts++
		d.countRow(e.req.Kind, false)
	}
	b.open = true
	b.openRow = e.row
	b.readyAt = now + access
	ch.busFreeAt = now + d.cfg.TBurst

	if e.req.Kind == mem.Load {
		d.Stats.Reads++
	} else {
		d.Stats.Writes++
	}
	if e.req.Done != nil {
		d.sim.At(now+access+d.cfg.TBurst+d.cfg.FixedLatency, e.req.Done)
	}
	if ch.live > 0 {
		d.scheduleTick(ci, ch.busFreeAt)
	}
}

func (d *Controller) countRow(k mem.Kind, hit bool) {
	if k == mem.Load {
		d.Stats.LoadRowTotal++
		if hit {
			d.Stats.LoadRowHits++
		}
	} else {
		d.Stats.StoreRowTotal++
		if hit {
			d.Stats.StoreRowHits++
		}
	}
}

// Reset returns the controller to the observable state of a freshly
// built one: every bank closed with an empty queue, buses idle, tickers
// disarmed, statistics zeroed. Queue buffers keep their capacity. Call
// it together with the owning Sim's Reset; queued requests are dropped.
func (d *Controller) Reset() {
	for i := range d.channels {
		ch := &d.channels[i]
		for bi := range ch.banks {
			b := &ch.banks[bi]
			for j := range b.entries {
				b.entries[j] = entry{} // release request pointers
			}
			b.entries = b.entries[:0]
			b.head = 0
			b.live = 0
			b.open = false
			b.openRow = 0
			b.readyAt = 0
		}
		ch.live = 0
		ch.busFreeAt = 0
		ch.ticker.Reset()
	}
	d.seq = 0
	d.Stats = stats.DRAMStats{}
}

// QueueDepth reports the total queued requests (harness diagnostics).
func (d *Controller) QueueDepth() int {
	n := 0
	for i := range d.channels {
		n += d.channels[i].live
	}
	return n
}
