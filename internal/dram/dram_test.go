package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/mem"
)

func smallConfig() Config {
	return Config{
		Channels: 2, BanksPerChannel: 2, RowBytes: 256, InterleaveLines: 1, // 4 lines/row
		TRCD: 20, TRP: 20, TCL: 20, TBurst: 4, Lookahead: 8, FixedLatency: 10,
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Channels != 16 || cfg.BanksPerChannel != 16 {
		t.Fatal("Default must match Table 1: 16 channels, 16 banks")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Channels: 3, BanksPerChannel: 2, RowBytes: 256, TBurst: 1, Lookahead: 1},
		{Channels: 2, BanksPerChannel: 5, RowBytes: 256, TBurst: 1, Lookahead: 1},
		{Channels: 2, BanksPerChannel: 2, RowBytes: 100, TBurst: 1, Lookahead: 1},
		{Channels: 2, BanksPerChannel: 2, RowBytes: 192, TBurst: 1, Lookahead: 1},
		{Channels: 2, BanksPerChannel: 2, RowBytes: 256, TBurst: 0, Lookahead: 1},
		{Channels: 2, BanksPerChannel: 2, RowBytes: 256, TBurst: 1, Lookahead: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAddressMapping(t *testing.T) {
	cfg := smallConfig() // 2 ch, 2 banks, 4 lines/row
	// Line n: channel = n%2, local = n/2, col = local%4,
	// bank = (local/4)%2, row = local/8.
	cases := []struct {
		line uint64
		want Location
	}{
		{0, Location{0, 0, 0, 0}},
		{1, Location{1, 0, 0, 0}},
		{2, Location{0, 0, 0, 1}},
		{8, Location{0, 1, 0, 0}},  // local 4 → bank 1
		{16, Location{0, 0, 1, 0}}, // local 8 → row 1
		{17, Location{1, 0, 1, 0}},
	}
	for _, c := range cases {
		got := cfg.Map(mem.Addr(c.line * mem.LineSize))
		if got != c.want {
			t.Errorf("Map(line %d) = %+v, want %+v", c.line, got, c.want)
		}
	}
}

// Property: RowID is constant within a row and distinct across rows of the
// same bank/channel.
func TestPropertyRowID(t *testing.T) {
	cfg := Default()
	rowLines := uint64(cfg.RowBytes / mem.LineSize)
	g := uint64(cfg.InterleaveLines)
	f := func(n uint32) bool {
		lineNum := uint64(n)
		a := mem.Addr(lineNum * mem.LineSize)
		loc := cfg.Map(a)
		// Neighbour inside the same interleave block shares the row.
		if lineNum%g < g-1 && loc.Column+1 < int(rowLines) {
			b := mem.Addr((lineNum + 1) * mem.LineSize)
			if cfg.RowID(a) != cfg.RowID(b) {
				return false
			}
		}
		// The next block on the same channel shares the row while it
		// stays within the row's columns.
		if loc.Column+int(g) < int(rowLines) {
			b := mem.Addr((lineNum + g*uint64(cfg.Channels)) * mem.LineSize)
			if cfg.RowID(a) != cfg.RowID(b) {
				return false
			}
		}
		// The same column in the next row of the same bank differs.
		stride := uint64(cfg.Channels) * rowLines * uint64(cfg.BanksPerChannel)
		c := mem.Addr((lineNum + stride) * mem.LineSize)
		return cfg.RowID(a) != cfg.RowID(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialStreamRowHits(t *testing.T) {
	sim := event.New()
	d := New(smallConfig(), sim)
	done := 0
	for i := 0; i < 64; i++ {
		d.Submit(&mem.Request{ID: uint64(i), Line: mem.Addr(i * mem.LineSize),
			Kind: mem.Load, Done: func() { done++ }})
	}
	sim.Run()
	if done != 64 {
		t.Fatalf("completed %d of 64", done)
	}
	if d.Stats.Reads != 64 {
		t.Fatalf("reads = %d", d.Stats.Reads)
	}
	// 64 lines over 2 channels × 2 banks × 4-line rows = 4 rows per
	// bank: 16 activates, 48 row hits.
	if got := d.Stats.RowHitRate(); got < 0.70 || got > 0.80 {
		t.Fatalf("sequential row hit rate = %v, want ~0.75", got)
	}
}

func TestRandomStreamLowRowHits(t *testing.T) {
	sim := event.New()
	d := New(smallConfig(), sim)
	// Strided by exactly one row per access within one bank: always a
	// conflict after the first.
	cfg := smallConfig()
	rowStride := cfg.Channels * cfg.BanksPerChannel * (cfg.RowBytes / mem.LineSize)
	for i := 0; i < 32; i++ {
		d.Submit(&mem.Request{ID: uint64(i), Line: mem.Addr(i * rowStride * mem.LineSize),
			Kind: mem.Load})
		sim.Run()
	}
	if got := d.Stats.RowHitRate(); got != 0 {
		t.Fatalf("row-thrashing stream hit rate = %v, want 0", got)
	}
	if d.Stats.RowConflicts != 31 || d.Stats.RowMisses != 1 {
		t.Fatalf("conflicts=%d misses=%d, want 31/1", d.Stats.RowConflicts, d.Stats.RowMisses)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := smallConfig()
	sim := event.New()
	d := New(cfg, sim)

	// Open row 0 on channel 0 / bank 0.
	d.Submit(&mem.Request{ID: 1, Line: 0, Kind: mem.Load})
	sim.Run()

	// Enqueue (in this order): a conflict access to row 1, then a hit
	// access to row 0. FR-FCFS should service the row hit first.
	var order []uint64
	rowStride := cfg.Channels * cfg.BanksPerChannel * (cfg.RowBytes / mem.LineSize) * mem.LineSize
	d.Submit(&mem.Request{ID: 2, Line: mem.Addr(rowStride), Kind: mem.Load,
		Done: func() { order = append(order, 2) }})
	d.Submit(&mem.Request{ID: 3, Line: mem.Addr(mem.LineSize * uint64(cfg.Channels)), Kind: mem.Load,
		Done: func() { order = append(order, 3) }})
	sim.Run()
	if len(order) != 2 || order[0] != 3 {
		t.Fatalf("service order = %v, want row hit (3) first", order)
	}
}

func TestLoadStoreRowAccounting(t *testing.T) {
	sim := event.New()
	d := New(smallConfig(), sim)
	d.Submit(&mem.Request{ID: 1, Line: 0, Kind: mem.Load})
	d.Submit(&mem.Request{ID: 2, Line: mem.Addr(2 * mem.LineSize), Kind: mem.Store})
	sim.Run()
	if d.Stats.LoadRowTotal != 1 || d.Stats.StoreRowTotal != 1 {
		t.Fatalf("load/store totals: %+v", d.Stats)
	}
	if d.Stats.Reads != 1 || d.Stats.Writes != 1 {
		t.Fatalf("reads/writes: %+v", d.Stats)
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// With all requests hitting one channel's open row, throughput is
	// one line per TBurst.
	cfg := smallConfig()
	sim := event.New()
	d := New(cfg, sim)
	const n = 100
	var last event.Cycle
	for i := 0; i < n; i++ {
		// Same row: consecutive columns on channel 0, bank 0 — but a
		// row holds only 4 lines, so reuse the same 4 columns.
		col := i % 4
		lineNum := uint64(col * cfg.Channels)
		d.Submit(&mem.Request{ID: uint64(i), Line: mem.Addr(lineNum * mem.LineSize),
			Kind: mem.Load, Done: func() { last = sim.Now() }})
	}
	sim.Run()
	minCycles := event.Cycle((n - 1) * int(cfg.TBurst))
	if last < minCycles {
		t.Fatalf("last response at %d, but bus ceiling requires ≥ %d", last, minCycles)
	}
}

func TestUncontestedLatency(t *testing.T) {
	cfg := smallConfig()
	sim := event.New()
	d := New(cfg, sim)
	var at event.Cycle
	d.Submit(&mem.Request{ID: 1, Line: 0, Kind: mem.Load, Done: func() { at = sim.Now() }})
	sim.Run()
	want := cfg.TRCD + cfg.TCL + cfg.TBurst + cfg.FixedLatency
	if at != want {
		t.Fatalf("uncontested latency = %d, want %d", at, want)
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, uint64, uint64) {
		sim := event.New()
		d := New(smallConfig(), sim)
		for i := 0; i < 500; i++ {
			k := mem.Load
			if i%4 == 0 {
				k = mem.Store
			}
			line := mem.Addr(((i * 13) % 256) * mem.LineSize)
			d.Submit(&mem.Request{ID: uint64(i), Line: line, Kind: k})
			if i%7 == 0 {
				sim.RunUntil(sim.Now() + 3)
			}
		}
		sim.Run()
		return d.Stats.RowHits, d.Stats.RowConflicts, uint64(sim.Now())
	}
	a1, b1, c1 := runOnce()
	a2, b2, c2 := runOnce()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
}

func TestQueueDrains(t *testing.T) {
	sim := event.New()
	d := New(smallConfig(), sim)
	for i := 0; i < 200; i++ {
		d.Submit(&mem.Request{ID: uint64(i), Line: mem.Addr(i * 64), Kind: mem.Load})
	}
	sim.Run()
	if d.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d after drain", d.QueueDepth())
	}
	if d.Stats.Accesses() != 200 {
		t.Fatalf("accesses = %d, want 200", d.Stats.Accesses())
	}
}

// TestControllerReset checks Reset closes every row, empties the queues,
// and zeroes statistics, so a reset controller times requests like a
// fresh one (first access is a row miss again, not a row hit).
func TestControllerReset(t *testing.T) {
	sim := event.New()
	d := New(smallConfig(), sim)
	for i := 0; i < 8; i++ {
		d.Submit(&mem.Request{ID: uint64(i), Line: mem.Addr(i * mem.LineSize), Kind: mem.Load})
	}
	sim.Run()
	if d.Stats.RowHits == 0 {
		t.Fatal("warm-up stream produced no row hits")
	}

	d.Reset()
	sim.Reset()
	if d.QueueDepth() != 0 {
		t.Fatalf("QueueDepth = %d after Reset, want 0", d.QueueDepth())
	}
	if d.Stats.Accesses() != 0 || d.Stats.RowHits != 0 {
		t.Fatalf("reset stats not zeroed: %+v", d.Stats)
	}

	d.Submit(&mem.Request{ID: 100, Line: 0, Kind: mem.Load})
	sim.Run()
	if d.Stats.RowMisses != 1 || d.Stats.RowHits != 0 {
		t.Fatalf("post-reset first access: hits=%d misses=%d, want one row miss (rows must be closed)",
			d.Stats.RowHits, d.Stats.RowMisses)
	}
}
