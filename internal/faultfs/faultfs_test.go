package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var errInjected = errors.New("injected")

// writeAll writes data through fs to path (create, write, close).
func writeAll(t *testing.T, f FS, path string, data []byte) error {
	t.Helper()
	h, err := f.Create(path)
	if err != nil {
		return err
	}
	if _, err := h.Write(data); err != nil {
		h.Close()
		return err
	}
	return h.Close()
}

// TestOSRoundTrip exercises the passthrough implementation end to end:
// everything the persist layer does must work against the real
// filesystem through the seam.
func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var f OS
	if err := f.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "sub", "a.tmp")
	final := filepath.Join(dir, "sub", "a.snap")
	h, err := f.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir(filepath.Join(dir, "sub")); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadFile(final)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	ents, err := f.ReadDir(filepath.Join(dir, "sub"))
	if err != nil || len(ents) != 1 || ents[0].Name() != "a.snap" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := f.Remove(final); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFile(final); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after Remove, ReadFile err = %v, want not-exist", err)
	}
}

func TestInjectWriteError(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Inject(Rule{Op: OpWrite, Err: errInjected, FlipBit: -1})
	err := writeAll(t, in, filepath.Join(dir, "a"), []byte("data"))
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// The rule fired once; the next write succeeds.
	if err := writeAll(t, in, filepath.Join(dir, "b"), []byte("data")); err != nil {
		t.Fatalf("second write after one-shot rule: %v", err)
	}
}

func TestInjectShortWriteSilent(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Inject(Rule{Op: OpWrite, ShortBytes: 3, FlipBit: -1})
	path := filepath.Join(dir, "torn")
	if err := writeAll(t, in, path, []byte("0123456789")); err != nil {
		t.Fatalf("silent short write must report success, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "012" {
		t.Fatalf("on-disk bytes = %q, want torn prefix %q", got, "012")
	}
}

func TestInjectBitFlip(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).Inject(Rule{Op: OpWrite, FlipBit: 2})
	path := filepath.Join(dir, "flip")
	data := []byte{0, 0, 0, 0}
	if err := writeAll(t, in, path, data); err != nil {
		t.Fatal(err)
	}
	if data[2] != 0 {
		t.Fatal("injector corrupted the caller's buffer")
	}
	got, _ := os.ReadFile(path)
	if got[2] != 1 {
		t.Fatalf("on-disk byte 2 = %d, want bit flipped", got[2])
	}
}

func TestInjectRenameReadDirReadFileErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	if err := os.WriteFile(path, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(nil).
		Inject(Rule{Op: OpRename, Err: errInjected, FlipBit: -1}).
		Inject(Rule{Op: OpReadFile, Err: errInjected, FlipBit: -1}).
		Inject(Rule{Op: OpReadDir, Err: errInjected, FlipBit: -1}).
		Inject(Rule{Op: OpSyncDir, Err: errInjected, FlipBit: -1})
	if err := in.Rename(path, path+"2"); !errors.Is(err, errInjected) {
		t.Fatalf("rename err = %v", err)
	}
	if _, err := in.ReadFile(path); !errors.Is(err, errInjected) {
		t.Fatalf("readfile err = %v", err)
	}
	if _, err := in.ReadDir(dir); !errors.Is(err, errInjected) {
		t.Fatalf("readdir err = %v", err)
	}
	if err := in.SyncDir(dir); !errors.Is(err, errInjected) {
		t.Fatalf("syncdir err = %v", err)
	}
	// All rules consumed: the untouched file is still readable.
	if got, err := in.ReadFile(path); err != nil || string(got) != "v" {
		t.Fatalf("after rules consumed: %q, %v", got, err)
	}
}

// TestInjectCountAfterAndPathFilter pins the scheduling knobs: a rule
// with CountAfter=1 skips the first matching op, and PathContains
// scopes a rule to matching paths only.
func TestInjectCountAfterAndPathFilter(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil).
		Inject(Rule{Op: OpReadFile, CountAfter: 1, Err: errInjected, FlipBit: -1}).
		Inject(Rule{Op: OpRemove, PathContains: "victim", Err: errInjected, FlipBit: -1})
	a := filepath.Join(dir, "a")
	os.WriteFile(a, []byte("1"), 0o644)
	if _, err := in.ReadFile(a); err != nil {
		t.Fatalf("first read should pass, got %v", err)
	}
	if _, err := in.ReadFile(a); !errors.Is(err, errInjected) {
		t.Fatalf("second read should fail, got %v", err)
	}
	os.WriteFile(filepath.Join(dir, "bystander"), []byte("1"), 0o644)
	os.WriteFile(filepath.Join(dir, "victim"), []byte("1"), 0o644)
	if err := in.Remove(filepath.Join(dir, "bystander")); err != nil {
		t.Fatalf("unmatched path should pass, got %v", err)
	}
	if err := in.Remove(filepath.Join(dir, "victim")); !errors.Is(err, errInjected) {
		t.Fatalf("matched path should fail, got %v", err)
	}
}

// TestInjectBarrier checks a gated operation really blocks until the
// barrier closes — the mechanism readiness tests use to hold a startup
// scan mid-flight.
func TestInjectBarrier(t *testing.T) {
	dir := t.TempDir()
	barrier := make(chan struct{})
	in := NewInjector(nil).Inject(Rule{Op: OpReadDir, Barrier: barrier, FlipBit: -1})
	done := make(chan struct{})
	go func() {
		in.ReadDir(dir)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("gated ReadDir returned before the barrier opened")
	case <-time.After(20 * time.Millisecond):
	}
	close(barrier)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ReadDir never returned after the barrier opened")
	}
}

func TestOpCounts(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	writeAll(t, in, filepath.Join(dir, "a"), []byte("x"))
	in.ReadFile(filepath.Join(dir, "a"))
	if got := in.OpCount(OpWrite); got != 1 {
		t.Fatalf("OpCount(write) = %d, want 1", got)
	}
	if got := in.OpCount(OpReadFile); got != 1 {
		t.Fatalf("OpCount(readfile) = %d, want 1", got)
	}
	in.Reset()
	if err := writeAll(t, in, filepath.Join(dir, "b"), []byte("x")); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}
