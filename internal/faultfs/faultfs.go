// Package faultfs is the filesystem seam the persistence layer writes
// through. Production code uses OS, a thin passthrough to the os
// package; chaos tests wrap it in an Injector that fails, truncates,
// corrupts, delays, or gates individual operations deterministically,
// so every recovery branch in internal/persist can be driven on
// purpose instead of waiting for a disk to misbehave.
//
// The interface is deliberately the small set of operations an
// atomic-rename store needs — create/write/sync/close a temp file,
// rename it into place, read files and directories back — not a
// general VFS. Keeping it minimal keeps the fault matrix enumerable:
// each Op below is one place a real filesystem can fail, and the
// persist test suite exercises all of them.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"strings"
	"sync"
	"time"
)

// File is the writable handle Create returns. Sync is explicit so the
// store's fsync policy is visible at the seam (and injectable).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the set of filesystem operations internal/persist performs.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	Create(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// SyncDir makes a completed rename durable by fsyncing the
	// directory itself (a no-op on filesystems that do not need it).
	SyncDir(path string) error
}

// OS is the real filesystem.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadDir(path string) ([]os.DirEntry, error)   { return os.ReadDir(path) }
func (OS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                     { return os.Remove(path) }

func (OS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Op names one injectable operation class.
type Op uint8

const (
	OpCreate Op = iota
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpReadFile
	OpReadDir
	OpSyncDir
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpReadFile:
		return "readfile"
	case OpReadDir:
		return "readdir"
	case OpSyncDir:
		return "syncdir"
	}
	return "unknown"
}

// Rule is one scheduled fault. A rule matches an operation by Op and
// (optionally) a path substring; CountAfter skips that many matching
// operations first, so "fail the third write" is expressible. A rule
// fires Times times (default 1), then disarms. What it does when it
// fires:
//
//   - Err != nil: the operation returns Err without touching the
//     underlying filesystem (for OpWrite, after ShortBytes are written
//     when ShortBytes > 0 — a torn write).
//   - ShortBytes > 0 with Err == nil (OpWrite): write only the first
//     ShortBytes of the buffer but report full success — the silent
//     short write a crash mid-write leaves behind.
//   - FlipBit >= 0 (OpWrite): XOR one bit at that byte offset into the
//     written data — silent media corruption.
//   - Delay > 0: sleep before the operation proceeds (slow disk).
//   - Barrier != nil: block until the channel is closed — lets a test
//     hold an operation (say, the startup directory scan) at a known
//     point and observe the system mid-flight, deterministically.
type Rule struct {
	Op           Op
	PathContains string
	CountAfter   int
	Times        int
	Err          error
	ShortBytes   int
	FlipBit      int // byte offset to corrupt; -1 = none (the zero Rule must set it)
	Delay        time.Duration
	Barrier      chan struct{}
}

// Injector wraps an FS and applies Rules to matching operations. All
// methods are safe for concurrent use; rule matching is serialized so
// countdowns are deterministic under concurrency only when the
// operation order itself is.
type Injector struct {
	Under FS // defaults to OS{}

	mu    sync.Mutex
	rules []*Rule
	// counts tallies operations by Op, matched or not, so tests can
	// assert how many times the store touched the disk.
	counts [OpSyncDir + 1]int
}

// NewInjector wraps under (nil = the real filesystem).
func NewInjector(under FS) *Injector {
	if under == nil {
		under = OS{}
	}
	return &Injector{Under: under}
}

// Inject arms a rule. Returns the Injector for chaining.
func (in *Injector) Inject(r Rule) *Injector {
	if r.Times == 0 {
		r.Times = 1
	}
	in.mu.Lock()
	in.rules = append(in.rules, &r)
	in.mu.Unlock()
	return in
}

// Reset disarms every rule.
func (in *Injector) Reset() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// OpCount reports how many operations of the given class have been
// issued (fired or not).
func (in *Injector) OpCount(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// match finds the first armed rule for (op, path), consumes one firing
// from it, and returns it. nil = no fault.
func (in *Injector) match(op Op, path string) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	for _, r := range in.rules {
		if r.Op != op || r.Times <= 0 {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.CountAfter > 0 {
			r.CountAfter--
			continue
		}
		r.Times--
		return r
	}
	return nil
}

// stall applies the rule's delay and barrier (fault-free aspects that
// precede the operation).
func stall(r *Rule) {
	if r == nil {
		return
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Barrier != nil {
		<-r.Barrier
	}
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	// No fault class of its own: directory creation failures surface
	// identically through Create. Count-free passthrough.
	return in.Under.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(path string) ([]os.DirEntry, error) {
	r := in.match(OpReadDir, path)
	stall(r)
	if r != nil && r.Err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: path, Err: r.Err}
	}
	return in.Under.ReadDir(path)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	r := in.match(OpReadFile, path)
	stall(r)
	if r != nil && r.Err != nil {
		return nil, &fs.PathError{Op: "read", Path: path, Err: r.Err}
	}
	return in.Under.ReadFile(path)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	r := in.match(OpRename, newpath)
	stall(r)
	if r != nil && r.Err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: r.Err}
	}
	return in.Under.Rename(oldpath, newpath)
}

func (in *Injector) Remove(path string) error {
	r := in.match(OpRemove, path)
	stall(r)
	if r != nil && r.Err != nil {
		return &fs.PathError{Op: "remove", Path: path, Err: r.Err}
	}
	return in.Under.Remove(path)
}

func (in *Injector) SyncDir(path string) error {
	r := in.match(OpSyncDir, path)
	stall(r)
	if r != nil && r.Err != nil {
		return &fs.PathError{Op: "syncdir", Path: path, Err: r.Err}
	}
	return in.Under.SyncDir(path)
}

func (in *Injector) Create(path string) (File, error) {
	r := in.match(OpCreate, path)
	stall(r)
	if r != nil && r.Err != nil {
		return nil, &fs.PathError{Op: "create", Path: path, Err: r.Err}
	}
	f, err := in.Under.Create(path)
	if err != nil {
		return nil, err
	}
	return &file{in: in, path: path, f: f}, nil
}

// file threads write/sync/close operations on one handle back through
// the injector's rule table.
type file struct {
	in   *Injector
	path string
	f    File
}

func (w *file) Write(p []byte) (int, error) {
	r := w.in.match(OpWrite, w.path)
	stall(r)
	if r == nil {
		return w.f.Write(p)
	}
	if r.FlipBit >= 0 && r.FlipBit < len(p) && r.Err == nil && r.ShortBytes == 0 {
		// Corrupt a copy; the caller's buffer is not ours to damage.
		c := make([]byte, len(p))
		copy(c, p)
		c[r.FlipBit] ^= 1
		return w.f.Write(c)
	}
	if r.ShortBytes > 0 && r.ShortBytes < len(p) {
		n, err := w.f.Write(p[:r.ShortBytes])
		if err != nil {
			return n, err
		}
		if r.Err != nil {
			return n, &fs.PathError{Op: "write", Path: w.path, Err: r.Err}
		}
		// Silent short write: report success for the full buffer. The
		// data on disk is torn; only the checksum can tell.
		return len(p), nil
	}
	if r.Err != nil {
		return 0, &fs.PathError{Op: "write", Path: w.path, Err: r.Err}
	}
	return w.f.Write(p)
}

func (w *file) Sync() error {
	r := w.in.match(OpSync, w.path)
	stall(r)
	if r != nil && r.Err != nil {
		return &fs.PathError{Op: "sync", Path: w.path, Err: r.Err}
	}
	return w.f.Sync()
}

func (w *file) Close() error {
	r := w.in.match(OpClose, w.path)
	stall(r)
	if r != nil && r.Err != nil {
		w.f.Close() // release the real handle either way
		return &fs.PathError{Op: "close", Path: w.path, Err: r.Err}
	}
	return w.f.Close()
}
