package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/event"
	"repro/internal/mem"
)

func sampleTrace() *Trace {
	return &Trace{Events: []Event{
		{Cycle: 0, PC: 0x400, Line: 0x1000, Kind: mem.Load, CU: 0},
		{Cycle: 3, PC: 0x404, Line: 0x1040, Kind: mem.Load, CU: 1},
		{Cycle: 3, PC: 0x408, Line: 0x0fc0, Kind: mem.Store, CU: 0, Bypass: true},
		{Cycle: 10, PC: 0x400, Line: 0x2000, Kind: mem.Load, CU: 63},
	}}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back Trace
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("events = %d, want %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], tr.Events[i])
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedRejected(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	var back Trace
	if _, err := back.ReadFrom(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	tr := &Trace{Events: []Event{{Cycle: 5}, {Cycle: 3}}}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err == nil {
		t.Fatal("out-of-order trace encoded")
	}
}

// Property: any monotone trace round-trips exactly.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(deltas []uint16, lines []uint32, pcs []uint16) bool {
		var tr Trace
		cycle := uint64(0)
		for i, d := range deltas {
			cycle += uint64(d)
			var line mem.Addr
			if i < len(lines) {
				line = mem.LineAddr(mem.Addr(lines[i]))
			}
			var pc uint64
			if i < len(pcs) {
				pc = uint64(pcs[i])
			}
			tr.Events = append(tr.Events, Event{
				Cycle: cycle, Line: line, PC: pc,
				Kind: mem.Kind(i % 2), CU: int32(i % 64), Bypass: i%3 == 0,
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		var back Trace
		if _, err := back.ReadFrom(&buf); err != nil {
			return false
		}
		if len(back.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if back.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// latencyPort responds after a fixed delay and records arrivals.
type latencyPort struct {
	sim     *event.Sim
	lat     event.Cycle
	arrived []mem.Addr
	times   []event.Cycle
}

func (p *latencyPort) Submit(req *mem.Request) {
	p.arrived = append(p.arrived, req.Line)
	p.times = append(p.times, p.sim.Now())
	if req.Done != nil {
		p.sim.Schedule(p.lat, req.Done)
	}
}

func TestRecorderCaptures(t *testing.T) {
	sim := event.New()
	inner := &latencyPort{sim: sim, lat: 5}
	rec := NewRecorder(sim)
	tap := rec.Tap(inner)
	sim.Schedule(7, func() {
		tap.Submit(&mem.Request{PC: 1, Line: 0x40, Kind: mem.Load, CU: 2})
	})
	sim.Run()
	if len(rec.Trace.Events) != 1 {
		t.Fatalf("events = %d", len(rec.Trace.Events))
	}
	e := rec.Trace.Events[0]
	if e.Cycle != 7 || e.Line != 0x40 || e.CU != 2 {
		t.Fatalf("event = %+v", e)
	}
	if len(inner.arrived) != 1 {
		t.Fatal("recorder swallowed the request")
	}
}

func TestRecorderMultiTapStaysMonotone(t *testing.T) {
	sim := event.New()
	rec := NewRecorder(sim)
	a := rec.Tap(&latencyPort{sim: sim, lat: 1})
	b := rec.Tap(&latencyPort{sim: sim, lat: 1})
	sim.Schedule(2, func() { b.Submit(&mem.Request{Line: 0x40, Kind: mem.Load, CU: 1}) })
	sim.Schedule(1, func() { a.Submit(&mem.Request{Line: 0x80, Kind: mem.Load, CU: 0}) })
	sim.Run()
	if len(rec.Trace.Events) != 2 {
		t.Fatalf("events = %d", len(rec.Trace.Events))
	}
	if rec.Trace.Events[0].Cycle > rec.Trace.Events[1].Cycle {
		t.Fatal("shared trace not monotone")
	}
	var buf bytes.Buffer
	if _, err := rec.Trace.WriteTo(&buf); err != nil {
		t.Fatalf("multi-tap trace not encodable: %v", err)
	}
}

func TestTimedReplayPreservesTiming(t *testing.T) {
	sim := event.New()
	port := &latencyPort{sim: sim, lat: 2}
	tr := sampleTrace()
	rp := NewReplayer(sim, port, tr, Timed)
	finished := false
	rp.Start(func() { finished = true })
	sim.Run()
	if !finished {
		t.Fatal("replay did not finish")
	}
	if rp.Completed != 4 {
		t.Fatalf("completed = %d", rp.Completed)
	}
	for i, e := range tr.Events {
		if port.times[i] != event.Cycle(e.Cycle) {
			t.Fatalf("event %d issued at %d, want %d", i, port.times[i], e.Cycle)
		}
	}
}

func TestWindowedReplayThrottles(t *testing.T) {
	sim := event.New()
	port := &latencyPort{sim: sim, lat: 10}
	var tr Trace
	for i := 0; i < 20; i++ {
		tr.Events = append(tr.Events, Event{Cycle: 0, Line: mem.Addr(i * 64), Kind: mem.Load})
	}
	rp := NewReplayer(sim, port, &tr, Windowed)
	rp.Window = 4
	finished := false
	rp.Start(func() { finished = true })
	// Before the sim runs, only Window requests are outstanding.
	if len(port.arrived) != 4 {
		t.Fatalf("initial outstanding = %d, want 4", len(port.arrived))
	}
	sim.Run()
	if !finished || rp.Completed != 20 {
		t.Fatalf("finished=%v completed=%d", finished, rp.Completed)
	}
}

func TestEmptyTraceReplay(t *testing.T) {
	sim := event.New()
	port := &latencyPort{sim: sim, lat: 1}
	rp := NewReplayer(sim, port, &Trace{}, Timed)
	finished := false
	rp.Start(func() { finished = true })
	sim.Run()
	if !finished {
		t.Fatal("empty replay did not finish")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-trips to %d", v, got)
		}
	}
}
