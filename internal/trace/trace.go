// Package trace provides memory-trace capture and replay: a Recorder
// taps the request stream entering the memory hierarchy, a compact
// delta/varint binary format stores it, and a Replayer drives a recorded
// trace back through any cache.Port — trace-driven simulation of the
// memory system without the execution-driven GPU front end, the same
// methodological split many cache studies (and the paper's related work)
// rely on.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// Event is one recorded line request.
type Event struct {
	// Cycle is the submission time.
	Cycle uint64
	// PC identifies the static instruction.
	PC uint64
	// Line is the line-aligned address.
	Line mem.Addr
	// Kind is Load or Store.
	Kind mem.Kind
	// CU is the issuing compute unit.
	CU int32
	// Bypass records the policy decoration at capture time.
	Bypass bool
}

// Trace is a captured request stream in submission order.
type Trace struct {
	Events []Event
}

// magic identifies the file format; the version byte allows evolution.
const magic = "MITR\x01"

// WriteTo encodes the trace. Cycles and lines are delta-encoded as
// varints, which compresses streaming traces well.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	m, err := bw.WriteString(magic)
	n += int64(m)
	if err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		m, err := bw.Write(buf[:k])
		n += int64(m)
		return err
	}
	if err := put(uint64(len(t.Events))); err != nil {
		return n, err
	}
	var prevCycle uint64
	var prevLine uint64
	for i := range t.Events {
		e := &t.Events[i]
		if e.Cycle < prevCycle {
			return n, fmt.Errorf("trace: events out of order at %d", i)
		}
		if err := put(e.Cycle - prevCycle); err != nil {
			return n, err
		}
		prevCycle = e.Cycle
		// Lines move both directions; zig-zag the delta.
		delta := int64(uint64(e.Line)) - int64(prevLine)
		if err := put(zigzag(delta)); err != nil {
			return n, err
		}
		prevLine = uint64(e.Line)
		if err := put(e.PC); err != nil {
			return n, err
		}
		flags := uint64(e.Kind) & 1
		if e.Bypass {
			flags |= 2
		}
		flags |= uint64(e.CU) << 2
		if err := put(flags); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom decodes a trace written by WriteTo.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head) != magic {
		return int64(len(head)), errors.New("trace: bad magic (not a trace file or wrong version)")
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	const maxEvents = 1 << 30
	if count > maxEvents {
		return 0, fmt.Errorf("trace: implausible event count %d", count)
	}
	t.Events = make([]Event, 0, count)
	var cycle, line uint64
	for i := uint64(0); i < count; i++ {
		dc, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: truncated at event %d: %w", i, err)
		}
		cycle += dc
		zl, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		line = uint64(int64(line) + unzigzag(zl))
		pc, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		flags, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, err
		}
		t.Events = append(t.Events, Event{
			Cycle:  cycle,
			PC:     pc,
			Line:   mem.Addr(line),
			Kind:   mem.Kind(flags & 1),
			Bypass: flags&2 != 0,
			CU:     int32(flags >> 2),
		})
	}
	return 0, nil
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(v uint64) int64 { return int64(v>>1) ^ -int64(v&1) }

// Recorder captures every request flowing through the ports it taps.
// One Recorder can tap all per-CU L1 ports: the single-threaded event
// loop serializes Submit calls in nondecreasing time order, so the shared
// trace stays monotone.
type Recorder struct {
	sim *event.Sim
	// Trace accumulates the captured stream.
	Trace Trace
}

// NewRecorder builds an empty recorder.
func NewRecorder(sim *event.Sim) *Recorder {
	if sim == nil {
		panic("trace: recorder needs a sim")
	}
	return &Recorder{sim: sim}
}

// Tap returns a Port that records and forwards to inner.
func (r *Recorder) Tap(inner cache.Port) cache.Port {
	if inner == nil {
		panic("trace: tap needs an inner port")
	}
	return cache.PortFunc(func(req *mem.Request) {
		r.Trace.Events = append(r.Trace.Events, Event{
			Cycle:  uint64(r.sim.Now()),
			PC:     req.PC,
			Line:   req.Line,
			Kind:   req.Kind,
			CU:     int32(req.CU),
			Bypass: req.Bypass,
		})
		inner.Submit(req)
	})
}

// ReplayMode selects how a Replayer paces the trace.
type ReplayMode int

const (
	// Timed replays each event at its recorded cycle.
	Timed ReplayMode = iota
	// Windowed ignores recorded timing and keeps a fixed number of
	// requests outstanding — an as-fast-as-possible closed loop.
	Windowed
)

// Replayer drives a trace into a Port.
type Replayer struct {
	sim  *event.Sim
	port cache.Port
	mode ReplayMode
	// Window is the outstanding-request bound for Windowed mode.
	Window int

	// Completed counts responses received.
	Completed uint64

	trace *Trace
	next  int
	done  func()
	ids   mem.IDSource
	out   int
}

// NewReplayer builds a replayer over port.
func NewReplayer(sim *event.Sim, port cache.Port, tr *Trace, mode ReplayMode) *Replayer {
	if sim == nil || port == nil || tr == nil {
		panic("trace: replayer needs a sim, port and trace")
	}
	return &Replayer{sim: sim, port: port, trace: tr, mode: mode, Window: 64}
}

// Start begins the replay; done (optional) runs when every event has
// completed.
func (r *Replayer) Start(done func()) {
	r.done = done
	if len(r.trace.Events) == 0 {
		// Direct call, not Schedule(0, ...): an empty trace has nothing
		// in flight for the completion to order against (batch-dispatch
		// audit, PR 5).
		if done != nil {
			done()
		}
		return
	}
	switch r.mode {
	case Timed:
		for i := range r.trace.Events {
			e := &r.trace.Events[i]
			at := event.Cycle(e.Cycle)
			if at < r.sim.Now() {
				at = r.sim.Now()
			}
			r.sim.At(at, func() { r.issue(e) })
		}
	case Windowed:
		for r.out < r.Window && r.next < len(r.trace.Events) {
			e := &r.trace.Events[r.next]
			r.next++
			r.issue(e)
		}
	default:
		panic(fmt.Sprintf("trace: unknown replay mode %d", r.mode))
	}
}

func (r *Replayer) issue(e *Event) {
	r.out++
	req := &mem.Request{
		ID:     r.ids.Next(),
		PC:     e.PC,
		Line:   e.Line,
		Kind:   e.Kind,
		CU:     int(e.CU),
		Bypass: e.Bypass,
		Done:   r.response,
	}
	r.port.Submit(req)
}

func (r *Replayer) response() {
	r.out--
	r.Completed++
	if r.mode == Windowed {
		for r.out < r.Window && r.next < len(r.trace.Events) {
			e := &r.trace.Events[r.next]
			r.next++
			r.issue(e)
		}
	}
	if r.Completed == uint64(len(r.trace.Events)) && r.done != nil {
		r.done()
	}
}
