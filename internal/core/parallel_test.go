package core

import (
	"reflect"
	"testing"

	"repro/internal/gpu"
	"repro/internal/workloads"
)

// smallSpecs picks a few cheap workloads so the parallel tests stay fast.
func smallSpecs(t *testing.T, names ...string) []workloads.Spec {
	t.Helper()
	specs := make([]workloads.Spec, 0, len(names))
	for _, n := range names {
		s, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// TestRunMatrixParallelDeterminism is the contract of the worker-pool
// matrix: any worker count must return results identical in order and
// content to the sequential (Workers=1) path. Snapshots are plain data,
// so reflect.DeepEqual compares every counter of every cell.
func TestRunMatrixParallelDeterminism(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft", "BwSoft", "FwAct")
	vs := StaticVariants()

	seq, err := RunMatrixWith(cfg, vs, specs, testScale, RunMatrixOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(specs)*len(vs) {
		t.Fatalf("sequential matrix has %d cells, want %d", len(seq), len(specs)*len(vs))
	}

	for _, workers := range []int{2, 4, 7} {
		par, err := RunMatrixWith(cfg, vs, specs, testScale, RunMatrixOpts{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("Workers=%d returned %d cells, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Workload != seq[i].Workload || par[i].Variant != seq[i].Variant {
				t.Fatalf("Workers=%d cell %d is %s/%s, want %s/%s (order not deterministic)",
					workers, i, par[i].Workload, par[i].Variant, seq[i].Workload, seq[i].Variant)
			}
			if !reflect.DeepEqual(par[i], seq[i]) {
				t.Fatalf("Workers=%d cell %d (%s/%s) differs from sequential run:\npar: %+v\nseq: %+v",
					workers, i, par[i].Workload, par[i].Variant, par[i], seq[i])
			}
		}
	}
}

// TestRunMatrixDefaultMatchesSequential pins the public RunMatrix (which
// parallelizes by default) to the sequential reference.
func TestRunMatrixDefaultMatchesSequential(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft")
	vs := StaticVariants()

	seq, err := RunMatrixWith(cfg, vs, specs, testScale, RunMatrixOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := RunMatrix(cfg, vs, specs, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def, seq) {
		t.Fatal("default RunMatrix differs from Workers=1 reference")
	}
}

// TestRunMatrixParallelFirstError asserts the parallel path reports the
// same (first-in-cell-order) error the sequential path would.
func TestRunMatrixParallelFirstError(t *testing.T) {
	bad := testConfig()
	bad.GPUClockMHz = 0
	specs := smallSpecs(t, "FwSoft", "BwSoft")
	vs := StaticVariants()

	seqRes, seqErr := RunMatrixWith(bad, vs, specs, testScale, RunMatrixOpts{Workers: 1})
	parRes, parErr := RunMatrixWith(bad, vs, specs, testScale, RunMatrixOpts{Workers: 4})
	if seqErr == nil || parErr == nil {
		t.Fatal("invalid config must error on both paths")
	}
	if seqRes != nil || parRes != nil {
		t.Fatal("failed matrix must not return partial results")
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("parallel error %q differs from sequential %q", parErr, seqErr)
	}
}

// TestRunMatrixParallelPanicPropagates asserts a panicking cell (e.g. a
// deadlock diagnostic) reaches the calling goroutine under any worker
// count, so callers' recover() works the same as on the sequential path.
func TestRunMatrixParallelPanicPropagates(t *testing.T) {
	badSpec := workloads.Spec{
		Name: "Broken",
		Build: func(s workloads.Scale) workloads.Workload {
			// A malformed kernel makes gpu.launch panic mid-cell.
			return workloads.Workload{Name: "Broken", Kernels: []gpu.Kernel{{Name: "bad"}}}
		},
	}
	for _, workers := range []int{1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Workers=%d: cell panic did not propagate to the caller", workers)
				}
			}()
			_, _ = RunMatrixWith(testConfig(), StaticVariants(), []workloads.Spec{badSpec},
				testScale, RunMatrixOpts{Workers: workers})
		}()
	}
}

// TestRunMatrixProgress checks the progress callback counts every cell
// exactly once, monotonically, on both paths.
func TestRunMatrixProgress(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft")
	vs := StaticVariants()
	for _, workers := range []int{1, 3} {
		var calls []int
		_, err := RunMatrixWith(cfg, vs, specs, testScale, RunMatrixOpts{
			Workers: workers,
			Progress: func(done, total int) {
				if total != len(vs) {
					t.Errorf("total = %d, want %d", total, len(vs))
				}
				calls = append(calls, done)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(calls) != len(vs) {
			t.Fatalf("Workers=%d: %d progress calls, want %d", workers, len(calls), len(vs))
		}
		for i, d := range calls {
			if d != i+1 {
				t.Fatalf("Workers=%d: progress sequence %v not monotonic", workers, calls)
			}
		}
	}
}
