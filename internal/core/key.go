package core

import (
	"fmt"
	"strconv"

	"repro/internal/stats"
)

// SimVersion is the simulator timing fingerprint: a constant that MUST
// be bumped in the same change as any intentional timing difference —
// i.e. whenever the golden Table-2 matrix (golden_test.go) is
// regenerated with GOLDEN_UPDATE=1. It is baked into every persistent
// cache key via Fingerprint, so snapshots written by an older deploy
// whose timing differs are invalidated (clean misses), never trusted.
//
// History: 1 = the post-SIMD-fix matrix pinned in PR 2; 2 = the FwBN
// empty-chunk-range fix regeneration in PR 4 (current).
const SimVersion = 2

// Fingerprint canonicalizes everything that changes a result without
// appearing in the per-request tuple: the simulator timing version and
// the config knobs the binaries expose as deploy-time overrides
// (MICACHED_CUS / -cus). Any new env- or flag-overridable Config knob
// that affects snapshots must join this string, or persisted entries
// from differently-configured deploys would collide.
func Fingerprint(cfg Config) string {
	return fmt.Sprintf("v%d-cus%d", SimVersion, cfg.GPU.CUs)
}

// CellKey is the canonical content address of one cell result — THE
// key schema shared by micached's result cache and micache's
// -cache-dir store, so both binaries read and write the same entries.
// It covers the fingerprint (deploy invalidation), the request tuple
// (workload, variant, scale), and the resolved topology; cell_workers
// is deliberately absent because partitioned execution is
// byte-identical to sequential by contract, and the topology is keyed
// after WithDefaults so equivalent spellings collide.
func CellKey(cfg Config, workload, variant string, scale float64) string {
	t := cfg.Topology.WithDefaults()
	return stats.CanonicalKey(
		"fp", Fingerprint(cfg),
		"w", workload,
		"v", variant,
		"s", stats.KeyFloat(scale),
		"tiles", strconv.Itoa(t.Tiles),
		"topo", t.Kind.String(),
	)
}
