package core

import (
	"testing"

	"repro/internal/stats"
)

// TestTotalsAllocationFree pins the zero-allocation contract of the
// matrix aggregation path: merging cell snapshots — the same Add chain
// the per-worker slabs and the post-barrier merge run — must not touch
// the heap, so wide sweeps aggregate without GC pressure.
func TestTotalsAllocationFree(t *testing.T) {
	rs, err := RunMatrixWith(testConfig(), StaticVariants(), smallSpecs(t, "FwSoft"),
		testScale, RunMatrixOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sink stats.Snapshot
	allocs := testing.AllocsPerRun(100, func() {
		sink = Totals(rs)
	})
	if allocs != 0 {
		t.Fatalf("Totals allocates %v/op, want 0", allocs)
	}
	if sink.Cycles == 0 {
		t.Fatal("Totals summed nothing")
	}

	// The per-worker slab merge is the same primitive.
	slabs := make([]stats.Snapshot, 4)
	for i := range slabs {
		slabs[i] = rs[i%len(rs)].Snap
	}
	allocs = testing.AllocsPerRun(100, func() {
		var agg stats.Snapshot
		for i := range slabs {
			agg.Add(slabs[i])
		}
		sink = agg
	})
	if allocs != 0 {
		t.Fatalf("slab merge allocates %v/op, want 0", allocs)
	}
}

// TestTotalsOutMatchesTotals checks the aggregation RunMatrixWith
// performs inline (per-worker slabs, merged after the barrier) equals
// the deterministic cell-order sum, on both paths.
func TestTotalsOutMatchesTotals(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft", "BwSoft")
	for _, workers := range []int{1, 4} {
		var tot stats.Snapshot
		rs, err := RunMatrixWith(cfg, StaticVariants(), specs, testScale,
			RunMatrixOpts{Workers: workers, TotalsOut: &tot})
		if err != nil {
			t.Fatal(err)
		}
		if want := Totals(rs); !tot.Equal(want) {
			t.Fatalf("Workers=%d: TotalsOut %+v != Totals %+v", workers, tot, want)
		}
	}
}
