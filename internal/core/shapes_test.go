package core

import (
	"testing"

	"repro/internal/workloads"
)

// TestPaperShapes checks the paper's qualitative claims end to end on a
// representative workload subset (one per class plus the write-combining
// and optimization stories). It runs a mid-size configuration and is
// skipped under -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test is a multi-simulation run")
	}
	// Half-size GPU at full cache geometry: big enough that the
	// footprint regimes and contention effects match the full machine.
	cfg := DefaultConfig()
	cfg.GPU.CUs = 32
	const scale = workloads.Scale(0.5)

	names := []string{"SGEMM", "FwSoft", "FwFc", "BwPool", "FwAct"}
	specs := make([]workloads.Spec, len(names))
	for i, n := range names {
		s, err := workloads.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = s
	}
	rs, err := RunMatrix(cfg, AllVariants(), specs, scale)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMatrix(rs)
	cycles := func(wl, v string) float64 { return float64(m.MustGet(wl, v).Snap.Cycles) }

	// Section VI.A: memory-insensitive class — SGEMM within 5%.
	base := cycles("SGEMM", "Uncached")
	for _, v := range []string{"CacheR", "CacheRW"} {
		if r := cycles("SGEMM", v) / base; r < 0.93 || r > 1.07 {
			t.Errorf("SGEMM %s/Uncached = %.3f, want ≈1 (insensitive)", v, r)
		}
	}

	// Reuse-sensitive: FwSoft improves with read caching; FwFc at
	// minimum must not lose (its headline win is the DRAM-demand cut
	// checked below, which holds at any scale).
	if r := cycles("FwSoft", "CacheR") / cycles("FwSoft", "Uncached"); r >= 1.0 {
		t.Errorf("FwSoft CacheR/Uncached = %.3f, want <1 (reuse sensitive)", r)
	}
	if r := cycles("FwFc", "CacheR") / cycles("FwFc", "Uncached"); r > 1.05 {
		t.Errorf("FwFc CacheR/Uncached = %.3f, want ≤1", r)
	}

	// Write combining helps the store-dominated backward pool.
	if r := cycles("BwPool", "CacheRW") / cycles("BwPool", "CacheR"); r >= 1.0 {
		t.Errorf("BwPool CacheRW/CacheR = %.3f, want <1 (write combining)", r)
	}

	// Throughput-sensitive: caching hurts FwAct.
	if r := cycles("FwAct", "CacheR") / cycles("FwAct", "Uncached"); r <= 1.0 {
		t.Errorf("FwAct CacheR/Uncached = %.3f, want >1 (throughput sensitive)", r)
	}

	// Section VI.C: caching raises FwAct stalls by orders of magnitude
	// and lowers its DRAM row hit rate.
	un := m.MustGet("FwAct", "Uncached").Snap
	rw := m.MustGet("FwAct", "CacheRW").Snap
	if rw.StallsPerRequest() < 10*un.StallsPerRequest() {
		t.Errorf("FwAct stalls: cached %.2f vs uncached %.2f, want ≫",
			rw.StallsPerRequest(), un.StallsPerRequest())
	}
	if rw.DRAM.RowHitRate() >= un.DRAM.RowHitRate() {
		t.Errorf("FwAct row hits: cached %.2f vs uncached %.2f, want lower",
			rw.DRAM.RowHitRate(), un.DRAM.RowHitRate())
	}

	// Section VII: the full optimization stack is near the static best
	// for every tested workload (within 25% at this reduced scale; the
	// paper's full-scale margin is tighter).
	for _, wl := range names {
		_, best := m.StaticBest(wl)
		opt := cycles(wl, "CacheRW-PCby") / float64(best.Snap.Cycles)
		if opt > 1.25 {
			t.Errorf("%s CacheRW-PCby/StaticBest = %.3f, want ≈1", wl, opt)
		}
	}

	// Figure 7: read caching cuts FwFc DRAM demand by more than half.
	fcU := m.MustGet("FwFc", "Uncached").Snap.DRAM.Accesses()
	fcR := m.MustGet("FwFc", "CacheR").Snap.DRAM.Accesses()
	if float64(fcR) > 0.5*float64(fcU) {
		t.Errorf("FwFc CacheR demand = %.1f%% of Uncached, want <50%%",
			100*float64(fcR)/float64(fcU))
	}
}
