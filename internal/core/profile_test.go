package core

import (
	"os"
	"testing"

	"repro/internal/workloads"
)

// TestProfileRun exists for manual performance investigation:
//
//	MICACHE_PROFILE=FwAct:Uncached:0.3 go test ./internal/core \
//	    -run TestProfileRun -cpuprofile cpu.out -v
func TestProfileRun(t *testing.T) {
	env := os.Getenv("MICACHE_PROFILE")
	if env == "" {
		t.Skip("set MICACHE_PROFILE=workload:variant:scale to run")
	}
	var name, label string
	var scale float64
	n, err := parseProfileEnv(env, &name, &label, &scale)
	if err != nil || n != 3 {
		t.Fatalf("MICACHE_PROFILE=%q: want workload:variant:scale", env)
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(DefaultConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	w := spec.Build(workloads.Scale(scale))
	snap, err := sys.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s/%s: %s", name, label, snap.String())
	// MaxQueueLen is the pending-event high-water mark summed across the
	// engine's wheel buckets and overflow heap (not a single heap length).
	t.Logf("events fired=%d peak pending=%d", sys.Sim.Fired(), sys.Sim.MaxQueueLen())
}

func parseProfileEnv(env string, name, label *string, scale *float64) (int, error) {
	parts := [3]string{}
	i := 0
	for _, r := range env {
		if r == ':' {
			i++
			if i > 2 {
				break
			}
			continue
		}
		parts[i] += string(r)
	}
	*name, *label = parts[0], parts[1]
	var err error
	*scale, err = parseFloat(parts[2])
	if err != nil {
		return 0, err
	}
	return i + 1, nil
}

func parseFloat(s string) (float64, error) {
	var v float64
	var frac float64 = 0.1
	seenDot := false
	for _, r := range s {
		switch {
		case r == '.':
			seenDot = true
		case r >= '0' && r <= '9':
			if seenDot {
				v += float64(r-'0') * frac
				frac /= 10
			} else {
				v = v*10 + float64(r-'0')
			}
		default:
			return 0, os.ErrInvalid
		}
	}
	return v, nil
}
