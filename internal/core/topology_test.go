package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/noc"
	"repro/internal/workloads"
)

// TestTopologySingleTileDifferential pins the zero-cost lowering: a
// Topology with Tiles:1 — whatever kind or link parameters it carries —
// must produce snapshots byte-identical to the default (pre-topology)
// configuration for every variant. A single tile builds no links and no
// paths, so link latency and bandwidth must be entirely invisible.
func TestTopologySingleTileDifferential(t *testing.T) {
	spec, err := workloads.ByName("FwPool")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range AllVariants() {
		v := v
		t.Run(v.Label, func(t *testing.T) {
			ref, err := RunOne(testConfig(), v, spec, testScale)
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.Topology = noc.Config{
				Tiles: 1, Kind: noc.Mesh,
				Link:      noc.LinkConfig{Latency: 999, Bandwidth: 1, Queue: 1},
				HomeLines: 8,
			}
			got, err := RunOne(cfg, v, spec, testScale)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Snap.Equal(ref.Snap) {
				t.Fatalf("single-tile topology perturbed the run:\ndirect: %+v\nnoc:    %+v",
					ref.Snap, got.Snap)
			}
			if got.Snap.Tiles != nil || got.Snap.Links != nil {
				t.Fatalf("single-tile snapshot grew topology sections: %+v", got.Snap)
			}
		})
	}
}

func tiledConfig(tiles int, kind noc.Kind) Config {
	cfg := testConfig()
	cfg.Topology.Tiles = tiles
	cfg.Topology.Kind = kind
	return cfg
}

// TestTopologyMultiTileSmoke runs a workload on 2- and 4-tile systems
// over both interconnect kinds and checks the topology surfaces: the
// snapshot reports one TileStats per tile whose DRAM traffic sums to the
// flat totals, and the links actually carried flits.
func TestTopologyMultiTileSmoke(t *testing.T) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []noc.Kind{noc.Crossbar, noc.Mesh} {
		for _, tiles := range []int{2, 4} {
			kind, tiles := kind, tiles
			t.Run(kind.String()+"/"+string(rune('0'+tiles)), func(t *testing.T) {
				r, err := RunOne(tiledConfig(tiles, kind), v, spec, testScale)
				if err != nil {
					t.Fatal(err)
				}
				snap := r.Snap
				if len(snap.Tiles) != tiles {
					t.Fatalf("snapshot has %d tiles, want %d", len(snap.Tiles), tiles)
				}
				if len(snap.Links) == 0 {
					t.Fatal("multi-tile snapshot has no link stats")
				}
				var dram uint64
				var l2Accesses uint64
				for _, ts := range snap.Tiles {
					dram += ts.DRAM.Accesses()
					l2Accesses += ts.L2.Hits + ts.L2.Misses
				}
				if dram != snap.DRAM.Accesses() {
					t.Fatalf("per-tile DRAM %d != total %d", dram, snap.DRAM.Accesses())
				}
				if l2Accesses != snap.L2.Hits+snap.L2.Misses {
					t.Fatalf("per-tile L2 accesses %d != total %d", l2Accesses, snap.L2.Hits+snap.L2.Misses)
				}
				var forwarded uint64
				for _, ls := range snap.Links {
					forwarded += ls.Forwarded
				}
				if forwarded == 0 {
					t.Fatal("no link carried traffic")
				}
				if snap.DRAM.Accesses() == 0 {
					t.Fatal("no DRAM traffic across tiles")
				}
			})
		}
	}
}

// TestTopologyMultiTileDeterministic pins run-to-run determinism of the
// NoC path: two fresh 4-tile systems must agree bit for bit.
func TestTopologyMultiTileDeterministic(t *testing.T) {
	spec, err := workloads.ByName("BwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheR")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tiledConfig(4, noc.Mesh)
	a, err := RunOne(cfg, v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg, v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("multi-tile run nondeterministic:\n%+v\n%+v", a.Snap, b.Snap)
	}
}

// TestTopologyResetEquivalentToFresh extends the pooling contract to
// multi-tile systems: Reset must clear every tile's caches, DRAM,
// predictor, and rinser plus the NoC's link slots and queues.
func TestTopologyResetEquivalentToFresh(t *testing.T) {
	spec, err := workloads.ByName("FwPool")
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"CacheRW", "CacheRW-PCby"} {
		v, err := VariantByLabel(label)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []noc.Kind{noc.Crossbar, noc.Mesh} {
			t.Run(label+"/"+kind.String(), func(t *testing.T) {
				sys, err := NewSystem(tiledConfig(4, kind), v)
				if err != nil {
					t.Fatal(err)
				}
				if sys.Net == nil || len(sys.Tiles) != 4 {
					t.Fatalf("4-tile system built %d tiles, net=%v", len(sys.Tiles), sys.Net != nil)
				}
				fresh := mustRun(t, sys, spec.Build(testScale))
				sys.Reset()
				again := mustRun(t, sys, spec.Build(testScale))
				if !again.Equal(fresh) {
					t.Fatalf("reset multi-tile run differs from fresh:\nfresh: %+v\nreset: %+v",
						fresh, again)
				}
			})
		}
	}
}

// TestTopologyValidation pins the named rejections reachable through
// core.Config.
func TestTopologyValidation(t *testing.T) {
	v := StaticVariants()[0]
	spec := smallSpecs(t, "FwSoft")[0]

	cfg := testConfig()
	cfg.Topology.Tiles = 3
	if _, err := RunOne(cfg, v, spec, testScale); !errors.Is(err, noc.ErrTiles) {
		t.Fatalf("tiles=3: got %v, want ErrTiles", err)
	}

	cfg = testConfig()
	cfg.Topology.Tiles = 16 // testConfig has 8 CUs; 8 % 16 != 0
	if _, err := RunOne(cfg, v, spec, testScale); err == nil ||
		!strings.Contains(err.Error(), "tiles") {
		t.Fatalf("CUs not divisible by tiles: got %v", err)
	}

	cfg = tiledConfig(2, noc.Crossbar)
	cfg.Topology.Link = noc.LinkConfig{Latency: 8, Queue: 4} // Bandwidth 0
	if _, err := RunOne(cfg, v, spec, testScale); !errors.Is(err, noc.ErrZeroBandwidth) {
		t.Fatalf("zero bandwidth: got %v, want ErrZeroBandwidth", err)
	}
}
