package core

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/workloads"
)

// goldenCell pins one (workload, policy) measurement of the small-scale
// Table-2 matrix: end-to-end cycles, cache hits at both levels, and
// DRAM row-buffer hits. Together these cover the quantities every paper
// figure is derived from.
type goldenCell struct {
	Cycles  uint64
	L1Hits  uint64
	L2Hits  uint64
	RowHits uint64
}

// goldenMatrix was generated after the SIMD issue-rate fix landed
// (PR 2): it is the timing baseline that any future refactor — the
// deferred-delivery queue subsystem and the sharded per-CU front end
// included — must reproduce exactly. The simulator is deterministic, so
// exact equality is the contract.
//
// The three FwBN cells were regenerated in PR 4 for an intentional
// behavior fix, found by FuzzWorkloadAddressStream: multiPassKernel
// waves with an empty chunk range emitted one out-of-footprint access
// per pass. Every other cell is byte-identical to the PR 2 baseline,
// which is the evidence that the sharded front end itself is
// timing-neutral.
//
// Regenerate (after an intentional timing change only) with:
//
//	GOLDEN_UPDATE=1 go test ./internal/core/ -run TestGoldenStatsMatrix -v
//
// and paste the printed literal over this map.
var goldenMatrix = map[string]goldenCell{
	"DGEMM/Uncached":    {Cycles: 16649, L1Hits: 0, L2Hits: 0, RowHits: 3952},
	"DGEMM/CacheR":      {Cycles: 17050, L1Hits: 0, L2Hits: 556, RowHits: 3952},
	"DGEMM/CacheRW":     {Cycles: 17417, L1Hits: 0, L2Hits: 556, RowHits: 3952},
	"SGEMM/Uncached":    {Cycles: 13741, L1Hits: 0, L2Hits: 0, RowHits: 2704},
	"SGEMM/CacheR":      {Cycles: 13741, L1Hits: 0, L2Hits: 42, RowHits: 2704},
	"SGEMM/CacheRW":     {Cycles: 13984, L1Hits: 0, L2Hits: 42, RowHits: 2704},
	"CM/Uncached":       {Cycles: 2438482, L1Hits: 0, L2Hits: 0, RowHits: 505395},
	"CM/CacheR":         {Cycles: 2428846, L1Hits: 305052, L2Hits: 46625, RowHits: 423076},
	"CM/CacheRW":        {Cycles: 2383509, L1Hits: 305052, L2Hits: 51585, RowHits: 381972},
	"FwBN/Uncached":     {Cycles: 9726, L1Hits: 0, L2Hits: 0, RowHits: 7872},
	"FwBN/CacheR":       {Cycles: 7355, L1Hits: 1888, L2Hits: 2112, RowHits: 3872},
	"FwBN/CacheRW":      {Cycles: 7438, L1Hits: 1888, L2Hits: 2112, RowHits: 3872},
	"FwPool/Uncached":   {Cycles: 8452, L1Hits: 0, L2Hits: 0, RowHits: 14120},
	"FwPool/CacheR":     {Cycles: 5137, L1Hits: 6892, L2Hits: 2418, RowHits: 4869},
	"FwPool/CacheRW":    {Cycles: 5822, L1Hits: 6912, L2Hits: 1998, RowHits: 5310},
	"FwSoft/Uncached":   {Cycles: 1264, L1Hits: 0, L2Hits: 0, RowHits: 30},
	"FwSoft/CacheR":     {Cycles: 832, L1Hits: 16, L2Hits: 0, RowHits: 14},
	"FwSoft/CacheRW":    {Cycles: 914, L1Hits: 16, L2Hits: 0, RowHits: 14},
	"BwSoft/Uncached":   {Cycles: 1074, L1Hits: 0, L2Hits: 0, RowHits: 30},
	"BwSoft/CacheR":     {Cycles: 858, L1Hits: 8, L2Hits: 0, RowHits: 22},
	"BwSoft/CacheRW":    {Cycles: 940, L1Hits: 8, L2Hits: 0, RowHits: 22},
	"BwPool/Uncached":   {Cycles: 5731, L1Hits: 0, L2Hits: 0, RowHits: 7104},
	"BwPool/CacheR":     {Cycles: 5731, L1Hits: 0, L2Hits: 0, RowHits: 7104},
	"BwPool/CacheRW":    {Cycles: 4989, L1Hits: 0, L2Hits: 4544, RowHits: 2560},
	"FwGRU/Uncached":    {Cycles: 356126, L1Hits: 0, L2Hits: 0, RowHits: 26217},
	"FwGRU/CacheR":      {Cycles: 356126, L1Hits: 0, L2Hits: 0, RowHits: 26217},
	"FwGRU/CacheRW":     {Cycles: 318792, L1Hits: 0, L2Hits: 1804, RowHits: 24741},
	"FwLSTM/Uncached":   {Cycles: 357268, L1Hits: 0, L2Hits: 0, RowHits: 34456},
	"FwLSTM/CacheR":     {Cycles: 357268, L1Hits: 0, L2Hits: 0, RowHits: 34456},
	"FwLSTM/CacheRW":    {Cycles: 320282, L1Hits: 0, L2Hits: 1992, RowHits: 32920},
	"FwBwGRU/Uncached":  {Cycles: 917458, L1Hits: 0, L2Hits: 0, RowHits: 79890},
	"FwBwGRU/CacheR":    {Cycles: 910254, L1Hits: 1344, L2Hits: 0, RowHits: 78546},
	"FwBwGRU/CacheRW":   {Cycles: 802125, L1Hits: 1344, L2Hits: 27656, RowHits: 51598},
	"FwBwLSTM/Uncached": {Cycles: 924414, L1Hits: 0, L2Hits: 0, RowHits: 105073},
	"FwBwLSTM/CacheR":   {Cycles: 917090, L1Hits: 1792, L2Hits: 0, RowHits: 103281},
	"FwBwLSTM/CacheRW":  {Cycles: 817627, L1Hits: 1792, L2Hits: 34718, RowHits: 69497},
	"BwBN/Uncached":     {Cycles: 6886, L1Hits: 0, L2Hits: 0, RowHits: 6176},
	"BwBN/CacheR":       {Cycles: 6016, L1Hits: 140, L2Hits: 2260, RowHits: 3776},
	"BwBN/CacheRW":      {Cycles: 6068, L1Hits: 144, L2Hits: 2528, RowHits: 3504},
	"FwFc/Uncached":     {Cycles: 6492, L1Hits: 0, L2Hits: 0, RowHits: 12148},
	"FwFc/CacheR":       {Cycles: 6493, L1Hits: 7047, L2Hits: 66, RowHits: 6000},
	"FwFc/CacheRW":      {Cycles: 6974, L1Hits: 7047, L2Hits: 66, RowHits: 6000},
	"FwAct/Uncached":    {Cycles: 4077, L1Hits: 0, L2Hits: 0, RowHits: 8775},
	"FwAct/CacheR":      {Cycles: 4077, L1Hits: 0, L2Hits: 0, RowHits: 8775},
	"FwAct/CacheRW":     {Cycles: 4777, L1Hits: 0, L2Hits: 0, RowHits: 8916},
	"FwLRN/Uncached":    {Cycles: 4319, L1Hits: 0, L2Hits: 0, RowHits: 9470},
	"FwLRN/CacheR":      {Cycles: 4139, L1Hits: 710, L2Hits: 0, RowHits: 8735},
	"FwLRN/CacheRW":     {Cycles: 4839, L1Hits: 710, L2Hits: 0, RowHits: 8936},
	"BwAct/Uncached":    {Cycles: 4200, L1Hits: 0, L2Hits: 0, RowHits: 9452},
	"BwAct/CacheR":      {Cycles: 4329, L1Hits: 0, L2Hits: 0, RowHits: 9467},
	"BwAct/CacheRW":     {Cycles: 4780, L1Hits: 0, L2Hits: 0, RowHits: 9644},
}

func TestGoldenStatsMatrix(t *testing.T) {
	rs, err := RunMatrix(testConfig(), StaticVariants(), workloads.All(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("GOLDEN_UPDATE") != "" {
		fmt.Println("var goldenMatrix = map[string]goldenCell{")
		for _, r := range rs {
			fmt.Printf("\t%q: {Cycles: %d, L1Hits: %d, L2Hits: %d, RowHits: %d},\n",
				r.Workload+"/"+r.Variant, r.Snap.Cycles, r.Snap.L1.Hits, r.Snap.L2.Hits, r.Snap.DRAM.RowHits)
		}
		fmt.Println("}")
		t.Skip("GOLDEN_UPDATE set: printed current matrix, skipping comparison")
	}
	if len(goldenMatrix) == 0 {
		t.Fatal("golden matrix is empty; regenerate with GOLDEN_UPDATE=1")
	}
	seen := make(map[string]bool, len(rs))
	for _, r := range rs {
		key := r.Workload + "/" + r.Variant
		seen[key] = true
		want, ok := goldenMatrix[key]
		if !ok {
			t.Errorf("%s: no golden entry (new cell? regenerate the matrix)", key)
			continue
		}
		got := goldenCell{
			Cycles:  r.Snap.Cycles,
			L1Hits:  r.Snap.L1.Hits,
			L2Hits:  r.Snap.L2.Hits,
			RowHits: r.Snap.DRAM.RowHits,
		}
		if got != want {
			t.Errorf("%s: got %+v, want %+v", key, got, want)
		}
	}
	for key := range goldenMatrix {
		if !seen[key] {
			t.Errorf("%s: golden entry has no matching cell", key)
		}
	}
}
