package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Budgets bounds one workload run. The zero value means "run to
// completion", which costs nothing: no stop condition is installed on
// the engine and no monitor goroutine is started, so the unbudgeted path
// is byte- and allocation-identical to the pre-budget simulator.
//
// All limits are cooperative: the engine polls a stop flag once per
// bucket drain (and once per 1024-event same-cycle cascade interval), so
// a budget is honored within that bound, never mid-event. The one thing
// no budget can interrupt is a single event callback that never returns;
// the watchdog detects that case and reports it through OnStall, but the
// run cannot return until the callback does.
type Budgets struct {
	// Ctx, when non-nil, cancels the run when the context is done. The
	// run returns an *ErrBudgetExceeded wrapping ctx.Err(), so
	// errors.Is(err, context.Canceled) and context.DeadlineExceeded both
	// work.
	Ctx context.Context
	// MaxEvents, when non-zero, stops the run once the engine has fired
	// that many events (within one poll interval of overshoot).
	MaxEvents uint64
	// Timeout, when non-zero, stops the run after that much wall-clock
	// time.
	Timeout time.Duration
	// WatchdogInterval, when non-zero, arms a progress watchdog: if a
	// full interval elapses with zero events fired — the livelock shape
	// where the simulation goroutine is stuck inside one callback —
	// OnStall is invoked (once) with the last observed progress, the
	// run is flagged to stop, and it returns ErrBudgetExceeded with
	// ReasonStalled as soon as the engine polls again. Pick an interval
	// orders of magnitude above a bucket drain (milliseconds of wall
	// time); the engine fires millions of events per second, so a whole
	// empty interval is diagnostic, not noise.
	WatchdogInterval time.Duration
	// OnStall, when non-nil, is called from the watchdog goroutine when
	// the watchdog trips. It is advisory: it may race a run that
	// completes in the same instant (the run's return value is still
	// authoritative), so use it for logging/metrics, not control flow.
	OnStall func(StallInfo)
}

// unbounded reports whether b imposes no limit at all.
func (b Budgets) unbounded() bool {
	return b.Ctx == nil && b.MaxEvents == 0 && b.Timeout == 0 && b.WatchdogInterval == 0
}

// StallInfo is the progress watchdog's report: the fired-event count it
// last observed and how long it watched without seeing it move.
type StallInfo struct {
	// Workload and Variant identify the stalled run.
	Workload, Variant string
	// Fired is the event count that has not advanced.
	Fired uint64
	// Interval is the wall-clock window that elapsed with no progress.
	Interval time.Duration
}

// BudgetReason identifies which limit interrupted a run.
type BudgetReason string

const (
	// ReasonCanceled: the Budgets.Ctx context was canceled or timed out.
	ReasonCanceled BudgetReason = "canceled"
	// ReasonMaxEvents: the fired-event budget was exhausted.
	ReasonMaxEvents BudgetReason = "max-events"
	// ReasonTimeout: the wall-clock budget was exhausted.
	ReasonTimeout BudgetReason = "timeout"
	// ReasonStalled: the progress watchdog saw a full interval with no
	// events fired.
	ReasonStalled BudgetReason = "stalled"
)

// ErrBudgetExceeded reports a run interrupted by a Budgets limit. It
// carries the same diagnostics as the deadlock path — simulated clock,
// events fired, events pending — plus the partial statistics snapshot at
// the stop point, so an interrupted cell is still inspectable.
//
// The interrupted System is NOT automatically reusable: Reset it before
// running anything else on it (the pool layers do this; the chaos tests
// pin that a reset-after-interrupt system is byte-identical to fresh).
type ErrBudgetExceeded struct {
	// Workload and Variant identify the interrupted cell.
	Workload, Variant string
	// Reason is which budget tripped.
	Reason BudgetReason
	// Clock, Fired, Pending are the engine state at the stop point.
	Clock   event.Cycle
	Fired   uint64
	Pending int
	// Elapsed is the wall-clock time the run consumed.
	Elapsed time.Duration
	// Partial is the statistics snapshot at the stop point.
	Partial stats.Snapshot
	// Cause is the underlying context error for ReasonCanceled
	// (context.Canceled or context.DeadlineExceeded), nil otherwise.
	Cause error
}

// Error implements error.
func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("core: %s under %s stopped (%s) at cycle %d: %d events fired, %d pending, %v elapsed",
		e.Workload, e.Variant, e.Reason, e.Clock, e.Fired, e.Pending, e.Elapsed.Round(time.Millisecond))
}

// Unwrap exposes the context error so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) see through the wrapper.
func (e *ErrBudgetExceeded) Unwrap() error { return e.Cause }

// ErrDeadlock reports a run whose event queue drained (or wedged) before
// the workload's completion callback fired: a wait chain lost its
// wake-up, or queued events can never become runnable. It replaces the
// old diagnostic panic; panics remain only for internal wiring errors.
type ErrDeadlock struct {
	// Workload and Variant identify the deadlocked cell.
	Workload, Variant string
	// Clock is the simulated cycle the engine stopped at.
	Clock event.Cycle
	// Fired is the number of events executed before the deadlock.
	Fired uint64
	// Pending distinguishes a true deadlock (queued-but-unreachable
	// events, e.g. a wait chain that lost its wake-up) from a quietly
	// drained engine whose completion callback never ran.
	Pending int
}

// Error implements error.
func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("core: %s/%s did not finish (deadlock at cycle %d: %d events fired, %d pending)",
		e.Variant, e.Workload, e.Clock, e.Fired, e.Pending)
}

// Stop-flag values the monitor goroutine publishes to the simulation
// goroutine. One atomic word is the whole cross-goroutine protocol.
const (
	flagNone int32 = iota
	flagCanceled
	flagTimeout
	flagStalled
)

// budgetRunner is the per-run state behind RunBudgeted: the sim-side
// stop poll and the monitor goroutine communicate through two atomics
// (flag: monitor → sim, progress: sim → monitor). Everything else is
// goroutine-local.
type budgetRunner struct {
	sys       *System
	maxEvents uint64

	// flag is set (once) by the monitor goroutine: canceled, timeout, or
	// stalled. The sim-side poll observes it within one bucket drain.
	flag atomic.Int32
	// progress is the fired-event count as of the sim's last poll; the
	// watchdog samples it to detect a wedged callback.
	progress atomic.Uint64

	// reason is written by the sim goroutine when the poll trips, read
	// after Run returns. No concurrency: same goroutine.
	reason BudgetReason
}

// poll is the engine stop condition: one comparison for the event
// budget, one atomic store publishing progress, one atomic load checking
// the monitor's verdict. It runs once per bucket drain (sequential) or
// once per group clock advance (partitioned), between event callbacks,
// on whichever goroutine is driving the simulation. On a partitioned
// system the fired count sums every partition's engine, so MaxEvents
// budgets a run's total work regardless of how it is partitioned.
func (r *budgetRunner) poll() bool {
	fired := r.sys.engineFired()
	if r.maxEvents > 0 && fired >= r.maxEvents {
		r.reason = ReasonMaxEvents
		return true
	}
	r.progress.Store(fired)
	switch r.flag.Load() {
	case flagNone:
		return false
	case flagCanceled:
		r.reason = ReasonCanceled
	case flagTimeout:
		r.reason = ReasonTimeout
	default:
		r.reason = ReasonStalled
	}
	return true
}

// monitor watches the wall-clock limits on its own goroutine and raises
// the stop flag; it exits as soon as it has raised one (the sim side
// takes it from there) or when done closes. ctxDone may be nil.
func (r *budgetRunner) monitor(done <-chan struct{}, ctxDone <-chan struct{},
	timeout, wdInterval time.Duration, onStall func(StallInfo), who func(uint64) StallInfo) {
	var timeoutC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	var tickC <-chan time.Time
	if wdInterval > 0 {
		tick := time.NewTicker(wdInterval)
		defer tick.Stop()
		tickC = tick.C
	}
	last := r.progress.Load()
	for {
		select {
		case <-done:
			return
		case <-ctxDone:
			r.flag.CompareAndSwap(flagNone, flagCanceled)
			return
		case <-timeoutC:
			r.flag.CompareAndSwap(flagNone, flagTimeout)
			return
		case <-tickC:
			// Re-check done first: a tick racing run completion must not
			// flag a stall on a finished run.
			select {
			case <-done:
				return
			default:
			}
			cur := r.progress.Load()
			if cur == last {
				r.flag.CompareAndSwap(flagNone, flagStalled)
				if onStall != nil {
					onStall(who(cur))
				}
				return
			}
			last = cur
		}
	}
}

// RunBudgeted executes a built workload under the given budgets. With a
// zero Budgets it is exactly Run. An interrupted run returns
// *ErrBudgetExceeded (with partial statistics inside); a workload that
// can never finish returns *ErrDeadlock. In both cases the System holds
// the interrupted state for inspection — Reset it before reuse.
func (s *System) RunBudgeted(w workloads.Workload, b Budgets) (stats.Snapshot, error) {
	name := w.Name
	if name == "" {
		name = "unnamed workload"
	}
	if b.Ctx != nil {
		// A context canceled before the run starts: report without
		// simulating anything.
		if err := b.Ctx.Err(); err != nil {
			return stats.Snapshot{}, &ErrBudgetExceeded{
				Workload: name, Variant: s.Variant.Label,
				Reason: ReasonCanceled, Cause: err,
				Clock: s.clockNow(), Fired: s.engineFired(), Pending: s.enginePending(),
			}
		}
	}

	var r *budgetRunner
	start := time.Now()
	var stopMonitor func()
	if !b.unbounded() {
		r = &budgetRunner{sys: s, maxEvents: b.MaxEvents}
		if b.Ctx != nil || b.Timeout > 0 || b.WatchdogInterval > 0 {
			done := make(chan struct{})
			stopMonitor = func() { close(done) }
			var ctxDone <-chan struct{}
			if b.Ctx != nil {
				ctxDone = b.Ctx.Done()
			}
			who := func(fired uint64) StallInfo {
				return StallInfo{Workload: name, Variant: s.Variant.Label,
					Fired: fired, Interval: b.WatchdogInterval}
			}
			go r.monitor(done, ctxDone, b.Timeout, b.WatchdogInterval, b.OnStall, who)
		}
		s.setStop(r.poll)
		defer s.setStop(nil)
	}

	finished := false
	s.GPU.RunWorkload(w.Kernels, func() {
		s.Engine.Finish(func() { finished = true })
	})
	s.runEngine()
	if stopMonitor != nil {
		stopMonitor()
	}

	if s.engineStopped() {
		err := &ErrBudgetExceeded{
			Workload: name, Variant: s.Variant.Label,
			Reason:  r.reason,
			Clock:   s.clockNow(),
			Fired:   s.engineFired(),
			Pending: s.enginePending(),
			Elapsed: time.Since(start),
			Partial: s.Snapshot(w),
		}
		if err.Reason == ReasonCanceled && b.Ctx != nil {
			err.Cause = b.Ctx.Err()
		}
		return stats.Snapshot{}, err
	}
	if !finished {
		return stats.Snapshot{}, &ErrDeadlock{
			Workload: name, Variant: s.Variant.Label,
			Clock: s.clockNow(), Fired: s.engineFired(), Pending: s.enginePending(),
		}
	}
	return s.Snapshot(w), nil
}
