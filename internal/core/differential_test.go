package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// TestRunMatrixRandomizedDifferential generalizes the fixed-matrix
// determinism test: seeded random (workloads, variants, scale, workers)
// tuples must produce byte-identical results on every execution path —
// sequential, parallel at a random worker count, and pooled (both a
// cold shared pool and the same pool warm on a second round). The
// sequential fresh-pool run is the reference; everything else must
// reproduce it exactly, including the lock-free per-worker totals
// aggregation.
func TestRunMatrixRandomizedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(0x51EED))
	all := workloads.All()
	vars := AllVariants()
	cfg := testConfig()

	iters := 3
	if testing.Short() {
		iters = 1
	}
	for i := 0; i < iters; i++ {
		// 2 specs × 2 variants so worker counts > 1 genuinely exercise
		// the parallel path (workers clamp to the cell count).
		s1 := rng.Intn(len(all))
		s2 := (s1 + 1 + rng.Intn(len(all)-1)) % len(all)
		v1 := rng.Intn(len(vars))
		v2 := (v1 + 1 + rng.Intn(len(vars)-1)) % len(vars)
		specs := []workloads.Spec{all[s1], all[s2]}
		vs := []Variant{vars[v1], vars[v2]}
		// Scales stay small so a drawn CM/RNN cell (millions of cycles
		// at full scale) keeps the whole test in the tens of seconds.
		scale := workloads.Scale(0.004 + 0.012*rng.Float64())
		workers := 2 + rng.Intn(6)

		label := func(kind string) string {
			return kind + " " + specs[0].Name + "+" + specs[1].Name + "/" +
				vs[0].Label + "+" + vs[1].Label
		}

		var refTotals stats.Snapshot
		ref, err := RunMatrixWith(cfg, vs, specs, scale, RunMatrixOpts{
			Workers: 1, TotalsOut: &refTotals,
		})
		if err != nil {
			t.Fatalf("%s: %v", label("sequential"), err)
		}
		if want := Totals(ref); !refTotals.Equal(want) {
			t.Fatalf("%s: sequential TotalsOut %+v != Totals %+v", label("sequential"), refTotals, want)
		}

		var parTotals stats.Snapshot
		par, err := RunMatrixWith(cfg, vs, specs, scale, RunMatrixOpts{
			Workers: workers, TotalsOut: &parTotals,
		})
		if err != nil {
			t.Fatalf("%s: %v", label("parallel"), err)
		}
		if !reflect.DeepEqual(par, ref) {
			t.Fatalf("%s (workers=%d, scale=%g): parallel results differ from sequential",
				label("parallel"), workers, scale)
		}
		if !parTotals.Equal(refTotals) {
			t.Fatalf("%s: per-worker aggregated totals %+v != sequential %+v",
				label("parallel"), parTotals, refTotals)
		}

		pool := NewSystemPool(cfg)
		for round := 0; round < 2; round++ {
			got, err := RunMatrixWith(cfg, vs, specs, scale, RunMatrixOpts{
				Workers: workers, Pool: pool,
			})
			if err != nil {
				t.Fatalf("%s round %d: %v", label("pooled"), round, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s (workers=%d, scale=%g) round %d: pooled results differ from fresh",
					label("pooled"), workers, scale, round)
			}
		}
	}
}
