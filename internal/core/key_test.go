package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/noc"
)

// TestCellKeySchema pins the exact key string: this schema addresses
// entries in persistent stores shared across binaries AND across
// deploys, so changing it silently would orphan (or worse, alias)
// every entry already on disk. If this test fails because the schema
// changed on purpose, the change must also bump SimVersion or the
// persist format — decide which invalidation is intended.
func TestCellKeySchema(t *testing.T) {
	cfg := DefaultConfig()
	want := fmt.Sprintf("fp=v%d-cus64|w=FwSoft|v=CacheRW|s=0.05|tiles=1|topo=direct", SimVersion)
	if got := CellKey(cfg, "FwSoft", "CacheRW", 0.05); got != want {
		t.Fatalf("CellKey schema drifted:\ngot  %s\nwant %s", got, want)
	}
}

// TestCellKeyInvalidation checks each axis that must produce a
// distinct key: simulator fingerprint inputs (CUs), workload, variant,
// scale, topology.
func TestCellKeyInvalidation(t *testing.T) {
	base := DefaultConfig()
	baseKey := CellKey(base, "FwSoft", "CacheRW", 0.05)

	cus := base
	cus.GPU.CUs = 32
	meshed := base
	meshed.Topology.Tiles = 4
	meshed.Topology.Kind = noc.Mesh
	distinct := []string{
		CellKey(cus, "FwSoft", "CacheRW", 0.05),
		CellKey(base, "FwAct", "CacheRW", 0.05),
		CellKey(base, "FwSoft", "Uncached", 0.05),
		CellKey(base, "FwSoft", "CacheRW", 0.1),
		CellKey(meshed, "FwSoft", "CacheRW", 0.05),
	}
	for i, k := range distinct {
		if k == baseKey {
			t.Errorf("axis %d did not change the key: %s", i, k)
		}
	}

	// Equivalent spellings collide: tiles omitted vs tiles=1/direct,
	// and float values canonicalize by value.
	direct := base
	direct.Topology.Tiles = 1
	direct.Topology.Kind = noc.Direct
	if CellKey(direct, "FwSoft", "CacheRW", 0.05) != baseKey {
		t.Error("explicit tiles=1/direct does not collide with the default topology")
	}
	if CellKey(base, "FwSoft", "CacheRW", 0.25) != CellKey(base, "FwSoft", "CacheRW", 1.0/4.0) {
		t.Error("equal scales spelled differently do not collide")
	}
}

// TestFingerprintCoversSimVersion: the fingerprint embeds the version
// constant, so a bump invalidates every persisted key at once.
func TestFingerprintCoversSimVersion(t *testing.T) {
	fp := Fingerprint(DefaultConfig())
	if !strings.Contains(fp, fmt.Sprintf("v%d", SimVersion)) {
		t.Fatalf("Fingerprint %q does not embed SimVersion %d", fp, SimVersion)
	}
}
