// Package core assembles the full simulated APU — GPU, per-CU L1s, banked
// shared L2, coherence directory, and HBM2 memory — and runs Table 2
// workloads under the paper's cache policies and optimizations. It is the
// public entry point of the library: build a Config, pick a Variant, and
// Run a workload to get a stats.Snapshot.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/noc"
	"repro/internal/policy"
	"repro/internal/workloads"
)

// CacheGeom is the user-visible geometry of one cache level.
type CacheGeom struct {
	// SizeBytes is total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// MSHRs bounds outstanding misses per instance (per bank for L2).
	MSHRs int
	// BypassEntries bounds outstanding bypassed loads per instance.
	BypassEntries int
	// PortsPerCycle is lookup throughput per instance.
	PortsPerCycle int
	// HitLatency, LookupLatency, FillLatency are in GPU cycles.
	HitLatency, LookupLatency, FillLatency event.Cycle
}

// Sets derives the set count.
func (g CacheGeom) Sets(instances int) int {
	return g.SizeBytes / 64 / g.Ways / instances
}

// Config is the full system configuration. DefaultConfig reproduces
// Table 1.
type Config struct {
	// GPU is the compute-side configuration.
	GPU gpu.Config
	// GPUClockMHz converts cycles to seconds for bandwidth figures.
	GPUClockMHz float64
	// L1 is the per-CU data cache (one instance per CU).
	L1 CacheGeom
	// L2 is the shared cache, split into L2Banks banks.
	L2      CacheGeom
	L2Banks int
	// DRAM is the memory system.
	DRAM dram.Config
	// DirectoryLatency is the fabric hop between L2 and memory.
	DirectoryLatency event.Cycle
	// SyncLatency is the fixed kernel-boundary coherence cost.
	SyncLatency event.Cycle
	// Predictor configures PC-based L2 bypassing (used when a Variant
	// enables it).
	Predictor policy.PredictorConfig
	// PredictorSampleEvery keeps the predictor training by caching
	// every Nth predicted-bypass request.
	PredictorSampleEvery int
	// RinserRows bounds the dirty-block index capacity.
	RinserRows int
	// Topology splits the system into GPU tiles over an internal/noc
	// interconnect: each tile owns its share of the CUs (and their
	// L1s), one slice of the L2, and one local HBM stack; the shared
	// directory sits on the hub node, and cache lines are homed to
	// tiles by address interleave. The zero value (and Tiles ≤ 1)
	// lowers to the pre-topology direct wiring — no links, no extra
	// objects, byte-identical timing.
	Topology noc.Config
}

// DefaultConfig returns the Table 1 system: 64 CUs at 1.6 GHz, 16 KB
// 16-way L1 per CU, 4 MB 16-way shared L2, 16-channel HBM2, and
// approximate uncontested latencies of 50/125/225 cycles to L1/L2/memory.
func DefaultConfig() Config {
	return Config{
		GPU:         gpu.DefaultConfig(),
		GPUClockMHz: 1600,
		// Latencies are chosen so the uncontested load-to-use chain
		// reproduces Table 1's ≈50/125/225 cycles:
		//   L1 hit:   50
		//   L2 hit:   15 (L1 lookup) + 75 + 35 (L1 fill) = 125
		//   memory:   15 + 15 + 30 (directory) + 95 (DRAM row miss)
		//             + 35 + 35 (fills) = 225
		// Bypass entries are sized so Uncached traffic queues at the
		// memory controller (throttled by per-wavefront MLP), not at
		// the caches: the paper's Uncached configuration shows almost
		// no cache stalls (Figure 8).
		L1: CacheGeom{
			SizeBytes: 16 << 10, Ways: 16,
			MSHRs: 64, BypassEntries: 512, PortsPerCycle: 2,
			HitLatency: 50, LookupLatency: 15, FillLatency: 35,
		},
		L2: CacheGeom{
			SizeBytes: 4 << 20, Ways: 16,
			MSHRs: 64, BypassEntries: 2048, PortsPerCycle: 2,
			HitLatency: 75, LookupLatency: 15, FillLatency: 35,
		},
		L2Banks:              16,
		DRAM:                 dram.Default(),
		DirectoryLatency:     30,
		SyncLatency:          100,
		Predictor:            policy.DefaultPredictorConfig(),
		PredictorSampleEvery: 32,
		RinserRows:           4096,
		Topology:             noc.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if err := c.GPU.Validate(); err != nil {
		return err
	}
	if c.GPUClockMHz <= 0 {
		return fmt.Errorf("core: GPUClockMHz must be positive")
	}
	if c.L2Banks <= 0 || c.L2Banks&(c.L2Banks-1) != 0 {
		return fmt.Errorf("core: L2Banks must be a positive power of two, got %d", c.L2Banks)
	}
	if c.L1.Sets(1) <= 0 {
		return fmt.Errorf("core: L1 geometry yields no sets")
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	tiles := c.Topology.WithDefaults().Tiles
	if c.GPU.CUs%tiles != 0 {
		return fmt.Errorf("core: CUs (%d) must divide evenly across %d tiles", c.GPU.CUs, tiles)
	}
	if c.L2.Sets(c.L2Banks*tiles) <= 0 {
		return fmt.Errorf("core: L2 geometry yields no sets per bank across %d tiles", tiles)
	}
	return c.DRAM.Validate()
}

// OptSet selects the paper's Section VII optimizations.
type OptSet struct {
	// AllocBypass converts blocked allocations to bypasses (CacheRW-AB).
	AllocBypass bool
	// CacheRinse enables dirty-block-index rinsing (CacheRW-CR).
	CacheRinse bool
	// PCBypass enables PC-based L2 bypass prediction (CacheRW-PCby).
	PCBypass bool
}

// Variant is one experimental configuration: a static policy plus
// optimizations.
type Variant struct {
	// Label names the configuration in figures ("CacheRW-AB").
	Label string
	// Policy is the static caching policy.
	Policy coherence.Policy
	// Opts are the enabled optimizations.
	Opts OptSet
}

// StaticVariants returns the three static policies of Section VI.
func StaticVariants() []Variant {
	return []Variant{
		{Label: "Uncached", Policy: coherence.Uncached},
		{Label: "CacheR", Policy: coherence.CacheR},
		{Label: "CacheRW", Policy: coherence.CacheRW},
	}
}

// OptVariants returns the cumulative optimization stack of Section VII,
// all applied to CacheRW: AB, then AB+CR, then AB+CR+PCby.
func OptVariants() []Variant {
	return []Variant{
		{Label: "CacheRW-AB", Policy: coherence.CacheRW,
			Opts: OptSet{AllocBypass: true}},
		{Label: "CacheRW-CR", Policy: coherence.CacheRW,
			Opts: OptSet{AllocBypass: true, CacheRinse: true}},
		{Label: "CacheRW-PCby", Policy: coherence.CacheRW,
			Opts: OptSet{AllocBypass: true, CacheRinse: true, PCBypass: true}},
	}
}

// AllVariants returns the static and optimization variants in figure
// order.
func AllVariants() []Variant {
	return append(StaticVariants(), OptVariants()...)
}

// VariantByLabel finds a variant by its figure label.
func VariantByLabel(label string) (Variant, error) {
	for _, v := range AllVariants() {
		if v.Label == label {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("core: unknown variant %q", label)
}

// buildL1 constructs one CU's L1 for the given variant.
func buildL1(cfg *Config, v Variant, id int, sim *event.Sim, lower cache.Port) *cache.Cache {
	return cache.New(cache.Config{
		Name: fmt.Sprintf("L1.%d", id),
		Sets: cfg.L1.Sets(1), Ways: cfg.L1.Ways,
		HitLatency:    cfg.L1.HitLatency,
		LookupLatency: cfg.L1.LookupLatency,
		FillLatency:   cfg.L1.FillLatency,
		MSHRs:         cfg.L1.MSHRs,
		BypassEntries: cfg.L1.BypassEntries,
		PortsPerCycle: cfg.L1.PortsPerCycle,
		StoreAllocate: false, // stores always bypass the L1 (Section III)
		AllocBypass:   v.Opts.AllocBypass,
	}, sim, lower)
}

// buildL2 constructs one tile's banked L2 slice for the given variant.
// The configured L2 capacity is divided across the tiles (a single-tile
// system gets all of it, exactly the pre-topology geometry); the name
// stays the bare "L2" in that case so single-tile diagnostics are
// unchanged.
func buildL2(cfg *Config, v Variant, tile, tiles int, sim *event.Sim, lower cache.Port,
	pred cache.Predictor, rinse cache.Rinser) *cache.Banked {
	var p cache.Predictor
	if v.Opts.PCBypass {
		p = pred
	}
	var r cache.Rinser
	if v.Opts.CacheRinse {
		r = rinse
	}
	name := "L2"
	if tiles > 1 {
		name = fmt.Sprintf("L2.%d", tile)
	}
	return cache.NewBanked(cache.Config{
		Name: name,
		Sets: cfg.L2.Sets(cfg.L2Banks * tiles), Ways: cfg.L2.Ways,
		HitLatency:           cfg.L2.HitLatency,
		LookupLatency:        cfg.L2.LookupLatency,
		FillLatency:          cfg.L2.FillLatency,
		MSHRs:                cfg.L2.MSHRs,
		BypassEntries:        cfg.L2.BypassEntries,
		PortsPerCycle:        cfg.L2.PortsPerCycle,
		StoreAllocate:        v.Policy.CombinesStores(),
		AllocBypass:          v.Opts.AllocBypass,
		Predictor:            p,
		PredictorSampleEvery: cfg.PredictorSampleEvery,
		Rinser:               r,
	}, cfg.L2Banks, sim, lower)
}

// Workloads re-exports the Table 2 specs for the public API surface.
func Workloads() []workloads.Spec { return workloads.All() }
