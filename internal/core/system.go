package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Tile is one GPU tile's private memory hierarchy: the L1s of the CUs
// it owns, its slice of the L2, its local HBM stack, and its policy
// state (the predictor and rinser are per tile, like the L2 slice they
// advise). A single-tile system has exactly one Tile holding the whole
// hierarchy.
type Tile struct {
	L1s       []*cache.Cache
	L2        *cache.Banked
	DRAM      *dram.Controller
	Predictor *policy.PCPredictor
	Rinser    *policy.RowRinser
}

// System is one fully wired simulated APU instance. Build one per run:
// caches and predictors carry state between workloads, and experiments
// must start cold to be comparable.
//
// Cfg.Topology splits the machine into tiles over an internal/noc
// interconnect. The flat fields (L1s, L2, DRAM, Predictor, Rinser)
// remain the convenient single-tile view — all L1s in CU order, and
// tile 0's L2/DRAM/policy state, which for a single-tile system is the
// whole machine.
type System struct {
	Cfg     Config
	Variant Variant

	Sim *event.Sim
	// Group, non-nil for a partitioned system (built by NewSystemWorkers
	// with cellWorkers > 1), couples the per-partition engines; Sim then
	// aliases the GPU front end's member engine and the group clock is
	// the system clock. See internal/event.SimGroup.
	Group *event.SimGroup
	// CellWorkers is the resolved intra-cell worker count: 1 for a
	// sequential system, the requested count for a partitioned one.
	CellWorkers int
	// window is the derived safe-horizon window (the minimum declared
	// cut-edge latency) a partitioned run rotates execution in.
	window event.Cycle

	GPU   *gpu.GPU
	Tiles []Tile
	// Net is the interconnect carrying L2→directory and
	// directory→memory traffic; nil for a single-tile system, whose
	// hand-offs are direct port calls exactly as before topologies
	// existed.
	Net       *noc.Network
	L1s       []*cache.Cache
	L2        *cache.Banked
	DRAM      *dram.Controller
	Directory *coherence.Directory
	Engine    *coherence.Engine
	Predictor *policy.PCPredictor
	Rinser    *policy.RowRinser
}

// hierarchy is the memory-side wiring shared by NewSystem and
// NewMemorySystem: tiles, the directory, and (for multi-tile
// topologies) the interconnect.
type hierarchy struct {
	tiles []Tile
	l1s   []*cache.Cache
	dir   *coherence.Directory
	net   *noc.Network
}

// hierarchySims names the event engine each part of the machine
// schedules on. A sequential system points every field at the one
// shared Sim; a partitioned system (see NewSystemWorkers) gives the GPU
// front end (CU shards, L1s, coherence engine), each tile's memory side
// (L2 slice, HBM stack), and the interconnect+directory hub their own
// keyed member of one event.SimGroup.
type hierarchySims struct {
	front *event.Sim   // GPU shards + L1s + coherence engine
	mem   []*event.Sim // per-tile L2 and DRAM; len == tiles
	hub   *event.Sim   // directory + NoC (mem[0] when single-tile)
}

// singleSims is the sequential wiring: every component on one engine.
func singleSims(sim *event.Sim, tiles int) hierarchySims {
	mem := make([]*event.Sim, tiles)
	for i := range mem {
		mem[i] = sim
	}
	return hierarchySims{front: sim, mem: mem, hub: sim}
}

// buildHierarchy wires the memory side for a validated config. The
// single-tile path reproduces the pre-topology construction order
// byte for byte and builds no network objects at all.
func buildHierarchy(cfg *Config, v Variant, sims hierarchySims) *hierarchy {
	topo := cfg.Topology.WithDefaults()
	tiles := topo.Tiles
	h := &hierarchy{tiles: make([]Tile, tiles)}

	if tiles == 1 {
		dctl := dram.New(cfg.DRAM, sims.mem[0])
		dir := coherence.NewDirectory(sims.hub, dctl, cfg.DirectoryLatency)
		pred := policy.NewPCPredictor(cfg.Predictor)
		dcfg := cfg.DRAM
		rinse := policy.NewRowRinser(dcfg.RowID, cfg.RinserRows)
		l2 := buildL2(cfg, v, 0, 1, sims.mem[0], dir, pred, rinse)
		l1s := make([]*cache.Cache, cfg.GPU.CUs)
		for i := range l1s {
			l1s[i] = buildL1(cfg, v, i, sims.front, l2)
		}
		h.tiles[0] = Tile{L1s: l1s, L2: l2, DRAM: dctl, Predictor: pred, Rinser: rinse}
		h.l1s = l1s
		h.dir = dir
		return h
	}

	nodes, edges := noc.Graph(topo.Kind, tiles)
	net, err := noc.NewNetwork(nodes, edges, topo.Link, sims.hub)
	if err != nil {
		// Validate accepted the config and Graph only emits connected
		// shapes, so failing here is an internal wiring error.
		panic(fmt.Sprintf("core: building %s network for %d tiles: %v", topo.Kind, tiles, err))
	}
	h.net = net
	hub := noc.Hub(tiles)

	// Per-tile HBM stacks, reached from the hub across the NoC. The
	// home router below the directory picks a stack by address
	// interleave: HomeLines consecutive cache lines per tile.
	memPorts := make([]cache.Port, tiles)
	for t := 0; t < tiles; t++ {
		dctl := dram.New(cfg.DRAM, sims.mem[t])
		h.tiles[t].DRAM = dctl
		memPorts[t] = net.Connect(hub, t, dctl)
	}
	homeShift := bits.TrailingZeros64(uint64(topo.HomeLines))
	homeMask := uint64(tiles - 1)
	home := cache.PortFunc(func(req *mem.Request) {
		t := int((mem.LineIndex(req.Line) >> homeShift) & homeMask)
		memPorts[t].Submit(req)
	})
	h.dir = coherence.NewDirectory(sims.hub, home, cfg.DirectoryLatency)

	cpt := cfg.GPU.CUs / tiles
	h.l1s = make([]*cache.Cache, cfg.GPU.CUs)
	for t := 0; t < tiles; t++ {
		pred := policy.NewPCPredictor(cfg.Predictor)
		dcfg := cfg.DRAM
		rinse := policy.NewRowRinser(dcfg.RowID, cfg.RinserRows)
		l2 := buildL2(cfg, v, t, tiles, sims.mem[t], net.Connect(t, hub, h.dir), pred, rinse)
		l1s := make([]*cache.Cache, cpt)
		for i := range l1s {
			cu := t*cpt + i
			// L1→L2 stays on tile: a same-node Connect lowers to the
			// direct port, keeping the intra-tile hand-off zero-cost
			// while still going through the one link interface.
			l1s[i] = buildL1(cfg, v, cu, sims.front, net.Connect(t, t, l2))
			h.l1s[cu] = l1s[i]
		}
		h.tiles[t].L1s = l1s
		h.tiles[t].L2 = l2
		h.tiles[t].Predictor = pred
		h.tiles[t].Rinser = rinse
	}
	return h
}

// NewSystem wires a system for one configuration variant. Invalid
// configuration returns an error (it usually comes from user input);
// internal wiring errors panic.
func NewSystem(cfg Config, v Variant) (*System, error) {
	return NewSystemWorkers(cfg, v, 1)
}

// NewSystemWorkers is NewSystem with an intra-cell worker count.
// cellWorkers <= 1 builds the standard sequential system. Larger counts
// build a partitioned system: the GPU front end (CU shards, L1s,
// coherence engine), each tile's memory side (L2 slice, HBM stack), and
// the interconnect+directory hub each schedule on their own member of
// one event.SimGroup, and runs rotate execution across cellWorkers
// goroutines in windows sized by the minimum declared cut-edge latency
// (see Lookahead). Results are byte-identical to the sequential system
// for any worker count — the group fires events in exact global
// (cycle, sequence) order — which the partition differential tests pin.
func NewSystemWorkers(cfg Config, v Variant, cellWorkers int) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cellWorkers > MaxCellWorkers {
		return nil, fmt.Errorf("core: cell workers must be in [1, %d], got %d", MaxCellWorkers, cellWorkers)
	}
	tiles := cfg.Topology.WithDefaults().Tiles
	var sims hierarchySims
	var group *event.SimGroup
	if cellWorkers > 1 {
		// Partition layout: member 0 is the GPU front end, members
		// 1..tiles the per-tile memory sides, the last member the
		// directory+NoC hub (folded into the memory member when there
		// is only one tile and no network).
		if tiles == 1 {
			group = event.NewGroup(2)
			ms := group.Sims()
			sims = hierarchySims{front: ms[0], mem: ms[1:2], hub: ms[1]}
		} else {
			group = event.NewGroup(tiles + 2)
			ms := group.Sims()
			sims = hierarchySims{front: ms[0], mem: ms[1 : 1+tiles], hub: ms[1+tiles]}
		}
	} else {
		cellWorkers = 1
		sims = singleSims(event.New(), tiles)
	}
	sim := sims.front
	h := buildHierarchy(&cfg, v, sims)

	ports := make([]cache.Port, len(h.l1s))
	for i, l1 := range h.l1s {
		ports[i] = l1
	}
	g := gpu.New(cfg.GPU, sim, ports)
	l2s := make([]*cache.Banked, len(h.tiles))
	for i := range h.tiles {
		l2s[i] = h.tiles[i].L2
	}
	eng := &coherence.Engine{
		PolicyKind:  v.Policy,
		L1s:         h.l1s,
		L2s:         l2s,
		Sim:         sim,
		SyncLatency: cfg.SyncLatency,
	}
	g.Decorate = eng.Decorate
	g.OnKernelDone = eng.KernelBoundary

	sys := &System{
		Cfg: cfg, Variant: v,
		Sim: sim, Group: group, CellWorkers: cellWorkers, GPU: g,
		Tiles: h.tiles, Net: h.net,
		L1s: h.l1s, L2: h.tiles[0].L2,
		DRAM: h.tiles[0].DRAM, Directory: h.dir, Engine: eng,
		Predictor: h.tiles[0].Predictor, Rinser: h.tiles[0].Rinser,
	}
	if group != nil {
		sys.window = derivedWindow(sys)
	}
	return sys, nil
}

// Reset returns the system to the observable state of a freshly built
// one: clock rewound, caches invalidated, predictor and rinser
// re-seeded, all statistics zeroed. Component object pools and grown
// buffers keep their capacity, so a reset system re-runs a workload with
// none of the cold-start allocations of NewSystem — and, because every
// layer's Reset restores its exact just-built state (including event and
// request-id sequences), the results are byte-identical to a fresh
// system's. TestResetEquivalentToFresh pins that contract per variant.
//
// Reset is intended between completed runs; calling it mid-run drops
// in-flight work (pooled objects still in flight are abandoned to the
// garbage collector, never double-recycled).
func (s *System) Reset() {
	if s.Group != nil {
		s.Group.Reset() // resets every member engine, Sim included
	} else {
		s.Sim.Reset()
	}
	s.GPU.Reset()
	for ti := range s.Tiles {
		t := &s.Tiles[ti]
		for _, l1 := range t.L1s {
			l1.Reset()
		}
		t.L2.Reset()
		t.DRAM.Reset()
		t.Predictor.Reset()
		t.Rinser.Reset()
	}
	s.Directory.Reset()
	s.Engine.Reset()
	if s.Net != nil {
		s.Net.Reset()
	}
}

// Run executes a built workload to completion (including the final
// system-scope flush) and returns the run's statistics. A workload that
// can never finish returns *ErrDeadlock (it used to panic; panics are
// reserved for internal wiring errors). To bound a run — cancellation,
// event or wall-clock budgets, a livelock watchdog — use RunBudgeted.
func (s *System) Run(w workloads.Workload) (stats.Snapshot, error) {
	return s.RunBudgeted(w, Budgets{})
}

// Snapshot assembles the statistics of the run so far. The GPU's
// per-shard counter slabs are summed here, once, rather than on the
// issue path. Multi-tile systems additionally report per-tile and
// per-link counters (Snapshot.Tiles / Snapshot.Links); single-tile
// snapshots leave both nil, preserving the pre-topology layout.
func (s *System) Snapshot(w workloads.Workload) stats.Snapshot {
	gs := s.GPU.Stats()
	snap := stats.Snapshot{
		Cycles:         uint64(s.clockNow()),
		VectorOps:      gs.VectorOps,
		GPUMemRequests: gs.MemRequests,
		Kernels:        gs.KernelsRun,
		FootprintBytes: w.FootprintBytes,
	}
	snap.L1 = sumCacheStats(s.L1s)
	for i := range s.Tiles {
		snap.L2.Add(s.Tiles[i].L2.Stats())
		snap.DRAM.Add(s.Tiles[i].DRAM.Stats)
	}
	addTopology(&snap, s.Tiles, s.Net)
	return snap
}

// addTopology fills a snapshot's per-tile and per-link sections for a
// multi-tile system; a single-tile system (net == nil) contributes
// nothing, keeping those slices nil.
func addTopology(snap *stats.Snapshot, tiles []Tile, net *noc.Network) {
	if net == nil {
		return
	}
	snap.Tiles = make([]stats.TileStats, len(tiles))
	for i := range tiles {
		snap.Tiles[i] = stats.TileStats{
			L1:   sumCacheStats(tiles[i].L1s),
			L2:   tiles[i].L2.Stats(),
			DRAM: tiles[i].DRAM.Stats,
		}
	}
	snap.Links = net.LinkStats(nil)
}

// sumCacheStats merges the per-instance counters of one cache level.
// It is the one place the harness folds an L1 slice into a Snapshot;
// System.Snapshot and MemorySystem.Snapshot both use it.
func sumCacheStats(cs []*cache.Cache) stats.CacheStats {
	var out stats.CacheStats
	for _, c := range cs {
		out.Add(c.Stats)
	}
	return out
}

// Totals sums every cell snapshot of a result list into one aggregate
// Snapshot, in deterministic cell order. It allocates nothing: sweeps
// and long-lived harnesses can call it per matrix without GC pressure
// (pinned by TestTotalsAllocationFree).
func Totals(rs []Result) stats.Snapshot {
	var out stats.Snapshot
	for i := range rs {
		out.Add(rs[i].Snap)
	}
	return out
}

// Result is one (workload, variant) measurement.
type Result struct {
	Workload string
	Class    workloads.Class
	Variant  string
	Snap     stats.Snapshot
}

// Equal reports whether two results are identical, snapshot included.
// Result lost comparability when Snapshot gained per-tile slices; the
// determinism tests compare through this instead of ==.
func (r Result) Equal(o Result) bool {
	return r.Workload == o.Workload && r.Class == o.Class &&
		r.Variant == o.Variant && r.Snap.Equal(o.Snap)
}

// RunOne builds a fresh system and runs one workload under one variant.
func RunOne(cfg Config, v Variant, spec workloads.Spec, scale workloads.Scale) (Result, error) {
	return RunOneWith(cfg, v, spec, scale, Budgets{})
}

// RunOneWith is RunOne under explicit Budgets: single-cell callers (the
// CLI's -workload mode, the micached request path) get cancellation and
// budget enforcement without going through the matrix harness.
func RunOneWith(cfg Config, v Variant, spec workloads.Spec, scale workloads.Scale, b Budgets) (Result, error) {
	return RunOneWorkers(cfg, v, spec, scale, b, 1)
}

// RunOneWorkers is RunOneWith with an explicit intra-cell worker count
// (see NewSystemWorkers); cellWorkers <= 1 is exactly RunOneWith, and
// any count produces byte-identical results.
func RunOneWorkers(cfg Config, v Variant, spec workloads.Spec, scale workloads.Scale, b Budgets, cellWorkers int) (Result, error) {
	sys, err := NewSystemWorkers(cfg, v, cellWorkers)
	if err != nil {
		return Result{}, err
	}
	return runOn(sys, spec, scale, b)
}

// runOn builds spec's workload, runs it on sys under b, and assembles
// the cell Result. It is shared by RunOneWith (fresh systems) and the
// matrix pool.
func runOn(sys *System, spec workloads.Spec, scale workloads.Scale, b Budgets) (Result, error) {
	w := spec.Build(scale)
	if w.Name == "" {
		// Custom specs built outside workloads.All() may not stamp the
		// name; diagnostics should still identify the cell.
		w.Name = spec.Name
	}
	snap, err := sys.RunBudgeted(w, b)
	if err != nil {
		return Result{}, err
	}
	return Result{Workload: spec.Name, Class: spec.Class, Variant: sys.Variant.Label, Snap: snap}, nil
}

// RunMatrixOpts configures RunMatrixWith.
type RunMatrixOpts struct {
	// Workers bounds concurrent cell simulations. Zero (the default)
	// uses GOMAXPROCS; 1 runs the cells sequentially on the calling
	// goroutine, exactly as the original sequential implementation did.
	Workers int
	// Progress, if non-nil, is called after each completed cell with
	// the number of finished cells and the total. Calls are serialized
	// (never concurrent), but with Workers > 1 they come from worker
	// goroutines.
	Progress func(done, total int)
	// Pool, if non-nil, supplies warm systems for the matrix cells and
	// receives them back afterwards, so repeated matrix runs (sweeps,
	// benchmarks) skip system construction entirely. It must have been
	// built with the same Config passed to RunMatrixWith. When nil, a
	// transient pool scoped to the one call is used: cells of the same
	// variant still share (reset) systems instead of rebuilding.
	Pool *SystemPool
	// TotalsOut, if non-nil, receives the sum of every cell snapshot
	// (see Totals). On the parallel path each worker accumulates into
	// its own pre-sized slab slot — no channel, no mutex, no atomics on
	// the per-cell path — and the slabs merge deterministically after
	// the workers join. Snapshot addition is commutative, so the result
	// is identical to the sequential cell-order sum.
	TotalsOut *stats.Snapshot
	// Ctx, if non-nil, cancels the whole matrix: in-flight cells stop
	// cooperatively (their run returns ErrBudgetExceeded wrapping the
	// context error) and unstarted cells are skipped. The first error in
	// cell order is returned, as usual; errors.Is sees the context
	// error through it.
	Ctx context.Context
	// MaxEventsPerCell, if non-zero, bounds each cell's fired-event
	// count; a cell over budget returns ErrBudgetExceeded with partial
	// statistics instead of running forever.
	MaxEventsPerCell uint64
	// CellTimeout, if non-zero, bounds each cell's wall-clock time the
	// same way.
	CellTimeout time.Duration
	// CellWorkers, if > 1, runs every cell on a partitioned system with
	// that many intra-cell workers (see NewSystemWorkers). Cell results
	// are byte-identical for any value. 0 and 1 both mean sequential
	// cells. A caller-supplied Pool must have been built with the same
	// cell-worker count (NewSystemPoolWorkers).
	CellWorkers int
	// Lookup, if non-nil, is consulted before each cell simulates.
	// Returning ok=true serves the cell from the returned snapshot —
	// no pool Get, no simulation — which is how a serving layer makes
	// sweeps cache-aware: the simulator is deterministic, so a cached
	// snapshot for the same (spec, variant, scale, config) tuple is
	// byte-identical to a fresh run's. Calls may come from worker
	// goroutines concurrently; the callback must be concurrency-safe.
	Lookup func(spec workloads.Spec, v Variant) (stats.Snapshot, bool)
	// OnCell, if non-nil, is called after each successfully completed
	// cell with its Result, whether Lookup served it, and the progress
	// counts — the per-cell identity that Progress's bare (done, total)
	// lacks, so streaming consumers (SSE) can narrate the sweep. Calls
	// are serialized, like Progress, and share its ordering.
	OnCell func(r Result, cached bool, done, total int)
}

// cellWorkers resolves the per-cell worker count these options request.
func (o RunMatrixOpts) cellWorkers() int {
	if o.CellWorkers > 1 {
		return o.CellWorkers
	}
	return 1
}

// budgets assembles the per-cell Budgets these options request.
func (o RunMatrixOpts) budgets() Budgets {
	return Budgets{Ctx: o.Ctx, MaxEvents: o.MaxEventsPerCell, Timeout: o.CellTimeout}
}

// bounded reports whether any per-cell budget is configured.
func (o RunMatrixOpts) bounded() bool {
	return o.Ctx != nil || o.MaxEventsPerCell != 0 || o.CellTimeout != 0
}

// EffectiveWorkers resolves the worker count these options request,
// before clamping to the matrix size.
func (o RunMatrixOpts) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunMatrix runs every (spec × variant) combination and returns the
// results in spec-major order. It is the data source for every figure.
// Each cell observes a cold system: cells of the same variant reuse a
// pooled System through Reset, which restores the exact just-built
// state. Cells run concurrently across GOMAXPROCS workers; use
// RunMatrixWith to control worker count, observe progress, or share a
// warm SystemPool across calls.
func RunMatrix(cfg Config, vs []Variant, specs []workloads.Spec, scale workloads.Scale) ([]Result, error) {
	return RunMatrixWith(cfg, vs, specs, scale, RunMatrixOpts{})
}

// RunMatrixWith is RunMatrix with explicit options. Each matrix cell
// runs on a pooled System that is observably identical to a fresh cold
// one (see System.Reset), so cells are independent and run in parallel;
// results are returned in the same deterministic spec-major order and
// with identical content regardless of worker count or pooling, and the
// first error in cell order is returned, matching the sequential path.
// A deadlocked cell returns *ErrDeadlock and an over-budget or canceled
// cell *ErrBudgetExceeded (see RunMatrixOpts.Ctx/MaxEventsPerCell/
// CellTimeout), both reachable through errors.As on the returned error.
// A panic inside a cell (an internal wiring error) is re-raised on the
// calling goroutine wrapped in CellPanic, naming the (workload, variant)
// cell it came from.
// wrapCellErr labels a cell error with its (workload, variant) unless
// the error already carries that identity — budget and deadlock errors
// name their cell, and double-prefixing them makes the CLI output read
// like two errors.
func wrapCellErr(workload, variant string, err error) error {
	var be *ErrBudgetExceeded
	var dl *ErrDeadlock
	if errors.As(err, &be) || errors.As(err, &dl) {
		return err
	}
	return fmt.Errorf("core: %s under %s: %w", workload, variant, err)
}

// lookupCell consults an optional RunMatrixOpts.Lookup for a cell,
// assembling the full Result around the cached snapshot on a hit.
func lookupCell(lookup func(workloads.Spec, Variant) (stats.Snapshot, bool), spec workloads.Spec, v Variant) (Result, bool) {
	if lookup == nil {
		return Result{}, false
	}
	snap, ok := lookup(spec, v)
	if !ok {
		return Result{}, false
	}
	return Result{Workload: spec.Name, Class: spec.Class, Variant: v.Label, Snap: snap}, true
}

func RunMatrixWith(cfg Config, vs []Variant, specs []workloads.Spec, scale workloads.Scale, opts RunMatrixOpts) ([]Result, error) {
	type cell struct {
		spec workloads.Spec
		v    Variant
	}
	cells := make([]cell, 0, len(vs)*len(specs))
	for _, spec := range specs {
		for _, v := range vs {
			cells = append(cells, cell{spec: spec, v: v})
		}
	}
	total := len(cells)

	pool := opts.Pool
	if pool == nil {
		pool = NewSystemPoolWorkers(cfg, opts.cellWorkers())
	} else if pool.cfg != cfg {
		return nil, fmt.Errorf("core: RunMatrixWith pool was built for a different Config")
	} else if pool.cellWorkers != opts.cellWorkers() {
		return nil, fmt.Errorf("core: RunMatrixWith pool was built for %d cell workers, options request %d",
			pool.cellWorkers, opts.cellWorkers())
	}

	workers := opts.EffectiveWorkers()
	if workers > total {
		workers = total
	}

	budgets := opts.budgets()

	if workers <= 1 {
		// Sequential path: no goroutines, stop at the first error.
		// Panics are labeled with the cell exactly as on the parallel
		// path, so callers see one behaviour regardless of Workers.
		out := make([]Result, 0, total)
		for i, c := range cells {
			if opts.Ctx != nil {
				if err := opts.Ctx.Err(); err != nil {
					return nil, fmt.Errorf("core: %s under %s skipped: %w", c.spec.Name, c.v.Label, err)
				}
			}
			r, cached := lookupCell(opts.Lookup, c.spec, c.v)
			if !cached {
				var err error
				r, err = func() (Result, error) {
					defer func() {
						if p := recover(); p != nil {
							panic(CellPanic{Workload: c.spec.Name, Variant: c.v.Label, Value: p})
						}
					}()
					return runCell(pool, c.v, c.spec, scale, budgets)
				}()
				if err != nil {
					return nil, wrapCellErr(c.spec.Name, c.v.Label, err)
				}
			}
			out = append(out, r)
			if opts.Progress != nil {
				opts.Progress(i+1, total)
			}
			if opts.OnCell != nil {
				opts.OnCell(r, cached, i+1, total)
			}
		}
		if opts.TotalsOut != nil {
			*opts.TotalsOut = Totals(out)
		}
		return out, nil
	}

	// Parallel path. Every per-cell structure is a pre-sized slot array
	// indexed by cell or worker: a worker's only cross-goroutine traffic
	// per cell is the one atomic work-counter increment. Results, errors,
	// panics, and the per-worker snapshot-aggregation slabs are all
	// written to slots no other goroutine touches until after the join —
	// no channel, no mutex on the hot path. (The optional Progress
	// callback is the documented exception: its calls are serialized
	// under a mutex, which callers opt into by setting it.)
	results := make([]Result, total)
	errs := make([]error, total)
	panics := make([]any, total)
	workerTotals := make([]stats.Snapshot, workers)
	var next atomic.Int64
	var progressMu sync.Mutex
	progressDone := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slab *stats.Snapshot) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				c := cells[i]
				if opts.Ctx != nil && opts.Ctx.Err() != nil {
					// The matrix was canceled: mark this (unstarted)
					// cell and keep claiming, so every remaining slot is
					// accounted for and the join is quick. In-flight
					// cells stop through their own per-cell budget.
					errs[i] = fmt.Errorf("core: %s under %s skipped: %w", c.spec.Name, c.v.Label, opts.Ctx.Err())
					continue
				}
				// Capture panics (e.g. a malformed kernel's diagnostic
				// panic in gpu.launch) instead of crashing the process
				// from an unrecoverable worker goroutine; they are
				// re-raised on the calling goroutine below — wrapped in
				// CellPanic so the failing cell is identifiable from the
				// panic message alone.
				var cellResult Result
				var cached, ok bool
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[i] = CellPanic{Workload: c.spec.Name, Variant: c.v.Label, Value: p}
						}
					}()
					r, hit := lookupCell(opts.Lookup, c.spec, c.v)
					if !hit {
						var err error
						r, err = runCell(pool, c.v, c.spec, scale, budgets)
						if err != nil {
							errs[i] = wrapCellErr(c.spec.Name, c.v.Label, err)
							return
						}
					}
					results[i] = r
					cellResult, cached, ok = r, hit, true
					if opts.TotalsOut != nil {
						slab.Add(r.Snap)
					}
				}()
				if opts.Progress != nil || opts.OnCell != nil {
					progressMu.Lock()
					progressDone++
					if opts.Progress != nil {
						opts.Progress(progressDone, total)
					}
					if opts.OnCell != nil && ok {
						opts.OnCell(cellResult, cached, progressDone, total)
					}
					progressMu.Unlock()
				}
			}
		}(&workerTotals[w])
	}
	wg.Wait()
	// First-panic, then first-error propagation in cell order, as the
	// sequential path would have reported them.
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if opts.TotalsOut != nil {
		// Deterministic merge after the barrier: worker-index order.
		// Field-wise sums commute, so this equals the sequential
		// cell-order total.
		var agg stats.Snapshot
		for i := range workerTotals {
			agg.Add(workerTotals[i])
		}
		*opts.TotalsOut = agg
	}
	return results, nil
}

// Matrix indexes results by workload and variant.
type Matrix struct {
	results map[string]map[string]Result
	order   []string
}

// NewMatrix indexes a result list.
func NewMatrix(rs []Result) *Matrix {
	m := &Matrix{results: make(map[string]map[string]Result)}
	for _, r := range rs {
		byVar, ok := m.results[r.Workload]
		if !ok {
			byVar = make(map[string]Result)
			m.results[r.Workload] = byVar
			m.order = append(m.order, r.Workload)
		}
		byVar[r.Variant] = r
	}
	return m
}

// Workloads returns workload names in insertion order.
func (m *Matrix) Workloads() []string { return m.order }

// Get returns the result for (workload, variant).
func (m *Matrix) Get(workload, variant string) (Result, bool) {
	r, ok := m.results[workload][variant]
	return r, ok
}

// MustGet is Get or panic; figures use it after a full RunMatrix.
func (m *Matrix) MustGet(workload, variant string) Result {
	r, ok := m.Get(workload, variant)
	if !ok {
		panic(fmt.Sprintf("core: no result for %s/%s", workload, variant))
	}
	return r
}

// StaticBest returns the static variant with the lowest execution time
// for a workload, and its result.
func (m *Matrix) StaticBest(workload string) (string, Result) {
	return m.staticExtreme(workload, true)
}

// StaticWorst returns the static variant with the highest execution time.
func (m *Matrix) StaticWorst(workload string) (string, Result) {
	return m.staticExtreme(workload, false)
}

func (m *Matrix) staticExtreme(workload string, best bool) (string, Result) {
	var picked string
	var pr Result
	for _, v := range StaticVariants() {
		r, ok := m.Get(workload, v.Label)
		if !ok {
			continue
		}
		if picked == "" ||
			(best && r.Snap.Cycles < pr.Snap.Cycles) ||
			(!best && r.Snap.Cycles > pr.Snap.Cycles) {
			picked, pr = v.Label, r
		}
	}
	if picked == "" {
		panic(fmt.Sprintf("core: no static results for %s", workload))
	}
	return picked, pr
}
