package core

import (
	"sync"

	"repro/internal/event"
)

// This file is the partitioned-execution runner behind NewSystemWorkers:
// partition layout lives in NewSystemWorkers/buildHierarchy, the window
// (lookahead) derivation and the worker rotation live here.
//
// Correctness model. Every member engine of the system's SimGroup draws
// event sequence numbers from one shared counter, and the group fires
// events in exact global (cycle, sequence) order, which provably replays
// the single-wheel sequential schedule byte for byte (see the package
// comment in internal/event/group.go). Execution is therefore
// serialized: workers take turns holding an execution token and driving
// the group for one safe-horizon window at a time. The token hand-off
// over channels gives the race detector (and the memory model) the
// happens-before edges that make the single-threaded engine state safe
// to touch from rotating goroutines. True overlap inside a window is
// deliberately not attempted: two of the partition cut edges are
// zero-latency at the crossing point (a cache's forward queue submits to
// its lower level synchronously at drain time, and Done callbacks run
// inside the responder's event), and the statistics are sensitive to
// same-cycle event order, so concurrent windows cannot reproduce the
// sequential snapshot bit for bit. Making overlap real — an
// order-insensitive statistics mode, or speculative windows with
// replay — is the named follow-on in ROADMAP.md.

// MaxCellWorkers bounds the intra-cell worker count a system can be
// built with; it exists so user-facing surfaces (micached's
// "cell_workers" field, micache's -cell-workers flag) have a validated
// range rather than spawning an unbounded goroutine ring.
const MaxCellWorkers = 64

// derivedWindow is the safe-horizon window a partitioned run rotates
// execution in: the minimum declared latency across the partition cut
// edges — L1 and L2 Submit-to-lower bounds (their tag-lookup latency),
// the directory's fabric hop, and the narrowest NoC path. Components
// declaring a zero bound (a synchronous hand-off) contribute no slack
// and are skipped; if nothing declares one, the window degenerates to a
// single cycle. The window only sets rotation granularity — exact-order
// firing keeps any window byte-identical — so a too-small bound costs
// hand-offs, never correctness.
func derivedWindow(sys *System) event.Cycle {
	var w event.Cycle
	add := func(c event.Cycle) {
		if c > 0 && (w == 0 || c < w) {
			w = c
		}
	}
	for _, l1 := range sys.L1s {
		add(l1.BoundaryLatency())
	}
	for i := range sys.Tiles {
		add(sys.Tiles[i].L2.BoundaryLatency())
	}
	add(sys.Directory.BoundaryLatency())
	if sys.Net != nil {
		add(sys.Net.MinPathLatency())
	}
	if w == 0 {
		w = 1
	}
	return w
}

// Lookahead reports the derived safe-horizon window of a partitioned
// system, in cycles; 0 for a sequential system.
func (s *System) Lookahead() event.Cycle {
	if s.Group == nil {
		return 0
	}
	return s.window
}

// clockNow is the system clock: the group clock when partitioned, the
// engine clock otherwise.
func (s *System) clockNow() event.Cycle {
	if s.Group != nil {
		return s.Group.Now()
	}
	return s.Sim.Now()
}

// engineFired sums fired events across all partitions, so event budgets
// (Budgets.MaxEvents) count a partitioned run's work exactly like a
// sequential run's.
func (s *System) engineFired() uint64 {
	if s.Group != nil {
		return s.Group.Fired()
	}
	return s.Sim.Fired()
}

// enginePending aggregates pending events across all partitions.
func (s *System) enginePending() int {
	if s.Group != nil {
		return s.Group.Pending()
	}
	return s.Sim.Pending()
}

// engineStopped reports whether the last run was interrupted by the
// cooperative stop condition.
func (s *System) engineStopped() bool {
	if s.Group != nil {
		return s.Group.Stopped()
	}
	return s.Sim.Stopped()
}

// setStop installs (or clears) the cooperative stop condition on
// whichever engine drives this system.
func (s *System) setStop(stop func() bool) {
	if s.Group != nil {
		s.Group.SetStop(stop)
	} else {
		s.Sim.SetStop(stop)
	}
}

// runEngine drives one workload run to completion (or stop).
func (s *System) runEngine() {
	if s.Group != nil {
		s.runPartitioned()
	} else {
		s.Sim.Run()
	}
}

// runWindowSafe drives one window, converting a component panic into a
// value the rotation can re-raise on the caller's goroutine.
func runWindowSafe(g *event.SimGroup, window event.Cycle) (more bool, p any) {
	defer func() { p = recover() }()
	return g.RunWindow(g.Now() + window), nil
}

// runPartitioned drives the group to completion by rotating an
// execution token across CellWorkers goroutines; each holder runs one
// lookahead-sized window, then passes the token on. Exactly one worker
// touches the engines at a time, and every hand-off is a channel
// send/receive, so the simulation state needs no locks and the rotation
// is race-detector clean. A stop-condition trip (budgets, cancellation,
// the watchdog) or a drain ends the rotation; a panic inside a window
// is re-raised on the calling goroutine.
func (s *System) runPartitioned() {
	g := s.Group
	if s.CellWorkers <= 1 {
		// Partitioned systems resolve to >= 2 workers, but keep the
		// degenerate case correct and allocation-free.
		g.Run()
		return
	}
	workers := s.CellWorkers
	window := s.window
	ring := make([]chan struct{}, workers)
	for i := range ring {
		ring[i] = make(chan struct{}, 1)
	}
	var closeOnce sync.Once
	closeAll := func() {
		closeOnce.Do(func() {
			for _, c := range ring {
				close(c)
			}
		})
	}
	// Written only by the token holder that ends the rotation; the
	// WaitGroup join orders it before the read below.
	var panicked any
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for range ring[i] {
				more, p := runWindowSafe(g, window)
				if p != nil {
					panicked = p
					closeAll()
					return
				}
				if !more || g.Stopped() {
					closeAll()
					return
				}
				ring[(i+1)%workers] <- struct{}{}
			}
		}(i)
	}
	ring[0] <- struct{}{}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
