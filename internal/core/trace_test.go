package core

import (
	"bytes"
	"testing"

	"repro/internal/trace"
	"repro/internal/workloads"
)

func TestRunRecordedCapturesEveryRequest(t *testing.T) {
	spec, _ := workloads.ByName("FwSoft")
	v, _ := VariantByLabel("CacheR")
	r, tr, err := RunRecorded(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(tr.Events)) != r.Snap.GPUMemRequests {
		t.Fatalf("trace has %d events, run issued %d requests",
			len(tr.Events), r.Snap.GPUMemRequests)
	}
	// The recorded run must match an unrecorded run exactly (the tap
	// is timing-transparent).
	plain, err := RunOne(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Snap.Equal(r.Snap) {
		t.Fatalf("recorder perturbed the run:\n%+v\n%+v", plain.Snap, r.Snap)
	}
}

func TestRecordedTraceSerializes(t *testing.T) {
	spec, _ := workloads.ByName("BwSoft")
	v, _ := VariantByLabel("CacheRW")
	_, tr, err := RunRecorded(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var back trace.Trace
	if _, err := back.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.Events), len(tr.Events))
	}
}

func TestReplayWhatIf(t *testing.T) {
	// Record under Uncached, replay under CacheR: the replayed stream
	// must produce cache hits (softmax re-reads its input), showing
	// the what-if path re-decorates requests.
	spec, _ := workloads.ByName("FwSoft")
	un, _ := VariantByLabel("Uncached")
	_, tr, err := RunRecorded(testConfig(), un, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Timed replay preserves the recorded gaps between softmax passes,
	// so the cached re-reads hit while uncached ones refetch.
	cr, _ := VariantByLabel("CacheR")
	snap, err := ReplayTrace(testConfig(), cr, tr, trace.Timed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.L1.Hits+snap.L1.Coalesced == 0 {
		t.Fatal("replay under CacheR produced neither hits nor coalescing")
	}
	if snap.DRAM.Accesses() == 0 {
		t.Fatal("replay produced no DRAM traffic")
	}
	snapU, err := ReplayTrace(testConfig(), un, tr, trace.Timed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snapU.DRAM.Accesses() <= snap.DRAM.Accesses() {
		t.Fatalf("uncached replay demand %d not above cached %d",
			snapU.DRAM.Accesses(), snap.DRAM.Accesses())
	}
}

func TestReplayTimedMode(t *testing.T) {
	spec, _ := workloads.ByName("FwSoft")
	v, _ := VariantByLabel("CacheR")
	_, tr, err := RunRecorded(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ReplayTrace(testConfig(), v, tr, trace.Timed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cycles == 0 || snap.GPUMemRequests != uint64(len(tr.Events)) {
		t.Fatalf("timed replay snapshot wrong: %+v", snap)
	}
}

func TestReplayDeterminism(t *testing.T) {
	spec, _ := workloads.ByName("BwSoft")
	v, _ := VariantByLabel("CacheRW")
	_, tr, err := RunRecorded(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ReplayTrace(testConfig(), v, tr, trace.Windowed, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayTrace(testConfig(), v, tr, trace.Windowed, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("replay nondeterministic:\n%+v\n%+v", a, b)
	}
}
