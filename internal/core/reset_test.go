package core

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/workloads"
)

// TestResetEquivalentToFresh is the contract behind system pooling: for
// every variant, running a workload on a Reset system must produce a
// snapshot byte-identical to a fresh cold system's. It exercises every
// layer's Reset — caches (including the shared predictor and rinser),
// DRAM bank state, GPU wavefront pools, event engine sequences.
func TestResetEquivalentToFresh(t *testing.T) {
	cfg := testConfig()
	// FwPool has loads, stores, reuse, and multiple kernels; it exercises
	// fills, write combining, flushes, and the kernel-boundary paths.
	spec, err := workloads.ByName("FwPool")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range AllVariants() {
		v := v
		t.Run(v.Label, func(t *testing.T) {
			sys, err := NewSystem(cfg, v)
			if err != nil {
				t.Fatal(err)
			}
			fresh := mustRun(t, sys, spec.Build(testScale))
			sys.Reset()
			again := mustRun(t, sys, spec.Build(testScale))
			if !again.Equal(fresh) {
				t.Fatalf("reset run differs from fresh run:\nfresh: %+v\nreset: %+v", fresh, again)
			}
			// A second reset cycle must also hold (no slow state drift).
			sys.Reset()
			third := mustRun(t, sys, spec.Build(testScale))
			if !third.Equal(fresh) {
				t.Fatalf("second reset run differs from fresh run:\nfresh: %+v\nreset: %+v", fresh, third)
			}
			// The per-CU front-end shard state (stats slabs, occupancy,
			// ready heaps) must also clear: a reset GPU reports exactly
			// a fresh GPU's zero counters.
			sys.Reset()
			if st := sys.GPU.Stats(); st != (gpu.Stats{}) {
				t.Fatalf("GPU shard slabs survived Reset: %+v", st)
			}
		})
	}
}

// TestResetNoCrossWorkloadLeakage runs workload A, resets, runs workload
// B, and checks B's snapshot matches a system that never saw A. This is
// the exact reuse pattern of the matrix pool (spec-major order hands a
// variant's system a different workload each time).
func TestResetNoCrossWorkloadLeakage(t *testing.T) {
	cfg := testConfig()
	a, err := workloads.ByName("FwBN")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workloads.ByName("BwBN")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"CacheRW", "CacheRW-PCby"} {
		variant, err := VariantByLabel(v)
		if err != nil {
			t.Fatal(err)
		}
		reference, err := NewSystem(cfg, variant)
		if err != nil {
			t.Fatal(err)
		}
		wantB := mustRun(t, reference, b.Build(testScale))

		reused, err := NewSystem(cfg, variant)
		if err != nil {
			t.Fatal(err)
		}
		mustRun(t, reused, a.Build(testScale))
		reused.Reset()
		gotB := mustRun(t, reused, b.Build(testScale))
		if !gotB.Equal(wantB) {
			t.Fatalf("%s: B after A+Reset differs from B on a fresh system:\nfresh: %+v\nreused: %+v",
				v, wantB, gotB)
		}
	}
}

// TestSystemPoolReuse checks the pool actually recycles systems per
// variant and that pooled matrix runs reproduce the unpooled reference.
func TestSystemPoolReuse(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft", "BwSoft", "FwAct")
	vs := StaticVariants()

	reference, err := RunMatrixWith(cfg, vs, specs, testScale, RunMatrixOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	pool := NewSystemPool(cfg)
	for round := 0; round < 2; round++ {
		got, err := RunMatrixWith(cfg, vs, specs, testScale, RunMatrixOpts{Workers: 1, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		for i := range reference {
			if !got[i].Equal(reference[i]) {
				t.Fatalf("round %d cell %d (%s/%s) differs from unpooled reference",
					round, i, got[i].Workload, got[i].Variant)
			}
		}
	}
	built, reused := pool.Counts()
	if built != uint64(len(vs)) {
		t.Fatalf("pool built %d systems, want one per variant (%d)", built, len(vs))
	}
	wantReused := uint64(2*len(specs)*len(vs)) - built
	if reused != wantReused {
		t.Fatalf("pool reused %d systems, want %d", reused, wantReused)
	}
}

// TestSystemPoolRejectsForeignConfig pins the config-mismatch guards.
func TestSystemPoolRejectsForeignConfig(t *testing.T) {
	cfg := testConfig()
	other := testConfig()
	other.GPU.CUs = cfg.GPU.CUs * 2

	pool := NewSystemPool(other)
	if _, err := RunMatrixWith(cfg, StaticVariants(), smallSpecs(t, "FwSoft"), testScale,
		RunMatrixOpts{Workers: 1, Pool: pool}); err == nil {
		t.Fatal("RunMatrixWith accepted a pool built for a different Config")
	}

	sys, err := NewSystem(cfg, StaticVariants()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Put accepted a system built with a different Config")
		}
	}()
	pool.Put(sys)
}

// TestCellPanicNamesCell checks a worker panic reaches the caller
// wrapped in CellPanic, naming the (workload, variant) cell, with the
// original panic value preserved.
func TestCellPanicNamesCell(t *testing.T) {
	badSpec := workloads.Spec{
		Name: "Broken",
		Build: func(s workloads.Scale) workloads.Workload {
			// A malformed kernel makes gpu.launch panic mid-cell.
			return workloads.Workload{Name: "Broken", Kernels: []gpu.Kernel{{Name: "bad"}}}
		},
	}
	v, err := VariantByLabel("CacheR")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Fatalf("Workers=%d: cell panic did not propagate", workers)
				}
				cp, ok := p.(CellPanic)
				if !ok {
					t.Fatalf("Workers=%d: recovered %T, want CellPanic", workers, p)
				}
				if cp.Workload != "Broken" || cp.Variant != "CacheR" {
					t.Fatalf("CellPanic names %s/%s, want Broken/CacheR", cp.Workload, cp.Variant)
				}
				if cp.Value == nil {
					t.Fatal("CellPanic lost the original panic value")
				}
				msg := cp.Error()
				for _, part := range []string{"Broken", "CacheR", "malformed"} {
					if !strings.Contains(msg, part) {
						t.Fatalf("panic message %q does not mention %q", msg, part)
					}
				}
			}()
			// Two specs so the matrix has >1 cell and Workers=2 actually
			// takes the parallel path; the broken spec comes first.
			_, _ = RunMatrixWith(testConfig(), []Variant{v},
				[]workloads.Spec{badSpec, smallSpecs(t, "FwSoft")[0]},
				testScale, RunMatrixOpts{Workers: workers})
		}()
	}
}
