package core

import (
	"testing"

	"repro/internal/workloads"
)

// checkInvariants validates cross-component accounting identities that
// must hold for every workload under every variant.
func checkInvariants(t *testing.T, r Result) {
	t.Helper()
	s := r.Snap
	label := r.Workload + "/" + r.Variant

	if s.Cycles == 0 {
		t.Errorf("%s: zero cycles", label)
	}
	// Every GPU request is accounted for at the L1: it hit, missed,
	// coalesced, or bypassed.
	if got := s.L1.Accesses(); got < s.GPUMemRequests {
		t.Errorf("%s: L1 accesses %d < GPU requests %d", label, got, s.GPUMemRequests)
	}
	// DRAM never sees more loads than the GPU issued (coalescing and
	// caching only reduce read traffic).
	if s.DRAM.Reads > s.GPUMemRequests {
		t.Errorf("%s: DRAM reads %d exceed GPU requests %d", label, s.DRAM.Reads, s.GPUMemRequests)
	}
	// Row accounting covers every DRAM access exactly once.
	rowEvents := s.DRAM.RowHits + s.DRAM.RowMisses + s.DRAM.RowConflicts
	if rowEvents != s.DRAM.Accesses() {
		t.Errorf("%s: row events %d != DRAM accesses %d", label, rowEvents, s.DRAM.Accesses())
	}
	if s.DRAM.LoadRowTotal != s.DRAM.Reads || s.DRAM.StoreRowTotal != s.DRAM.Writes {
		t.Errorf("%s: per-kind row totals (%d,%d) != (%d,%d)", label,
			s.DRAM.LoadRowTotal, s.DRAM.StoreRowTotal, s.DRAM.Reads, s.DRAM.Writes)
	}
	// Rinse writebacks are included in total writebacks.
	if s.L2.Rinses > s.L2.Writebacks {
		t.Errorf("%s: rinses %d exceed writebacks %d", label, s.L2.Rinses, s.L2.Writebacks)
	}
	// Policy-structural invariants.
	switch r.Variant {
	case "Uncached":
		if s.L1.Hits+s.L2.Hits != 0 {
			t.Errorf("%s: uncached hits", label)
		}
		if s.L2.Writebacks != 0 {
			t.Errorf("%s: uncached writebacks", label)
		}
	case "CacheR":
		if s.L2.Writebacks != 0 {
			t.Errorf("%s: CacheR must not hold dirty data (writebacks %d)", label, s.L2.Writebacks)
		}
	}
}

// TestInvariantsAcrossMatrix runs every workload under every variant at a
// small scale and checks the accounting identities.
func TestInvariantsAcrossMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix invariants run 102 simulations")
	}
	cfg := testConfig()
	rs, err := RunMatrix(cfg, AllVariants(), workloads.All(), testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 17*6 {
		t.Fatalf("results = %d, want 102", len(rs))
	}
	for _, r := range rs {
		checkInvariants(t, r)
	}
}

// TestNoResidualDirtyAfterRun verifies the final system-scope flush left
// nothing dirty in the L2 for the write-combining variants.
func TestNoResidualDirtyAfterRun(t *testing.T) {
	for _, name := range []string{"BwPool", "FwBwLSTM"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := VariantByLabel("CacheRW")
		sys, err := NewSystem(testConfig(), v)
		if err != nil {
			t.Fatal(err)
		}
		w := spec.Build(testScale)
		mustRun(t, sys, w)
		if got := sys.L2.DirtyLines(); got != 0 {
			t.Errorf("%s: %d dirty L2 lines after final flush", name, got)
		}
	}
}

// TestStoreDataFlushedExactlyOnceUnderCacheRW: for a pure streaming store
// pattern, every stored line reaches DRAM at least once and no line is
// lost (writes at DRAM ≥ distinct store lines is implied by the flush
// invariant; here we check total conservation for FwAct).
func TestStoreConservation(t *testing.T) {
	spec, _ := workloads.ByName("FwAct")
	for _, label := range []string{"Uncached", "CacheR", "CacheRW"} {
		v, _ := VariantByLabel(label)
		r, err := RunOne(testConfig(), v, spec, testScale)
		if err != nil {
			t.Fatal(err)
		}
		// FwAct stores each line exactly once; they must all reach
		// DRAM exactly once under every policy (no combining
		// opportunity, no dirty residue).
		wantStores := r.Snap.GPUMemRequests / 2
		if r.Snap.DRAM.Writes != wantStores {
			t.Errorf("%s: DRAM writes %d, want %d", label, r.Snap.DRAM.Writes, wantStores)
		}
	}
}
