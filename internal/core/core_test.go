package core

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/gpu"
	"repro/internal/workloads"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.GPU.CUs != 64 {
		t.Fatal("DefaultConfig must be the Table 1 machine")
	}
	// The latency chain must reproduce Table 1's approximate numbers.
	if cfg.L1.HitLatency != 50 {
		t.Fatalf("L1 latency = %d, want 50", cfg.L1.HitLatency)
	}
	l2 := cfg.L1.LookupLatency + cfg.L2.HitLatency + cfg.L1.FillLatency
	if l2 != 125 {
		t.Fatalf("L2 chain = %d, want 125", l2)
	}
}

func TestConfigValidateCatchesErrors(t *testing.T) {
	bad := DefaultConfig()
	bad.GPUClockMHz = 0
	if bad.Validate() == nil {
		t.Fatal("zero clock accepted")
	}
	bad = DefaultConfig()
	bad.L2Banks = 3
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two banks accepted")
	}
	bad = DefaultConfig()
	bad.L1.SizeBytes = 0
	if bad.Validate() == nil {
		t.Fatal("empty L1 accepted")
	}
	// The GPU sub-config is validated through the system config, so user
	// input (micache -cus) errors instead of panicking in gpu.New.
	bad = DefaultConfig()
	bad.GPU.CUs = gpu.MaxCUs + 1
	if bad.Validate() == nil {
		t.Fatal("absurd CU count accepted")
	}
	bad = DefaultConfig()
	bad.GPU.SIMDsPerCU = 0
	if bad.Validate() == nil {
		t.Fatal("zero SIMDs accepted")
	}
}

func TestVariants(t *testing.T) {
	if len(StaticVariants()) != 3 || len(OptVariants()) != 3 || len(AllVariants()) != 6 {
		t.Fatal("variant counts wrong")
	}
	// The optimization stack is cumulative (Section VII).
	ov := OptVariants()
	if !ov[0].Opts.AllocBypass || ov[0].Opts.CacheRinse {
		t.Fatal("CacheRW-AB must enable exactly allocation bypass")
	}
	if !ov[1].Opts.AllocBypass || !ov[1].Opts.CacheRinse || ov[1].Opts.PCBypass {
		t.Fatal("CacheRW-CR must stack rinse on AB")
	}
	if !ov[2].Opts.AllocBypass || !ov[2].Opts.CacheRinse || !ov[2].Opts.PCBypass {
		t.Fatal("CacheRW-PCby must stack all three")
	}
	for _, v := range ov {
		if v.Policy != coherence.CacheRW {
			t.Fatalf("%s must apply to CacheRW", v.Label)
		}
	}
	if _, err := VariantByLabel("CacheRW-CR"); err != nil {
		t.Fatal(err)
	}
	if _, err := VariantByLabel("nope"); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestNewSystemWiring(t *testing.T) {
	cfg := testConfig()
	for _, v := range AllVariants() {
		sys, err := NewSystem(cfg, v)
		if err != nil {
			t.Fatalf("%s: %v", v.Label, err)
		}
		if len(sys.L1s) != cfg.GPU.CUs {
			t.Fatalf("%s: %d L1s for %d CUs", v.Label, len(sys.L1s), cfg.GPU.CUs)
		}
		if len(sys.L2.Banks()) != cfg.L2Banks {
			t.Fatalf("%s: %d L2 banks", v.Label, len(sys.L2.Banks()))
		}
	}
	bad := cfg
	bad.GPUClockMHz = -1
	if _, err := NewSystem(bad, AllVariants()[0]); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunDeterminism(t *testing.T) {
	spec, _ := workloads.ByName("BwSoft")
	v, _ := VariantByLabel("CacheRW")
	r1, err := RunOne(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunOne(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Snap.Equal(r2.Snap) {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", r1.Snap, r2.Snap)
	}
}

func TestUncachedHasNoCacheHits(t *testing.T) {
	spec, _ := workloads.ByName("FwSoft")
	v, _ := VariantByLabel("Uncached")
	r, err := RunOne(testConfig(), v, spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snap.L1.Hits != 0 || r.Snap.L2.Hits != 0 {
		t.Fatalf("Uncached produced cache hits: L1=%d L2=%d", r.Snap.L1.Hits, r.Snap.L2.Hits)
	}
}

func TestCachingReducesDRAMTrafficForReuseWorkload(t *testing.T) {
	spec, _ := workloads.ByName("FwSoft") // 3-pass softmax: textbook reuse
	cfg := testConfig()
	un, err := RunOne(cfg, mustVariant(t, "Uncached"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := RunOne(cfg, mustVariant(t, "CacheR"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Snap.DRAM.Accesses() >= un.Snap.DRAM.Accesses() {
		t.Fatalf("CacheR DRAM %d not below Uncached %d",
			cr.Snap.DRAM.Accesses(), un.Snap.DRAM.Accesses())
	}
}

func TestWriteCombiningReducesStores(t *testing.T) {
	spec, _ := workloads.ByName("BwPool")
	cfg := testConfig()
	cr, err := RunOne(cfg, mustVariant(t, "CacheR"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := RunOne(cfg, mustVariant(t, "CacheRW"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Snap.DRAM.Writes >= cr.Snap.DRAM.Writes {
		t.Fatalf("CacheRW writes %d not below CacheR %d",
			rw.Snap.DRAM.Writes, cr.Snap.DRAM.Writes)
	}
}

func TestAllocBypassEliminatesMostStalls(t *testing.T) {
	spec, _ := workloads.ByName("FwAct")
	cfg := testConfig()
	// Force heavy blocking-allocation pressure (tiny sets, deep MSHRs)
	// so AB has blocked allocations to convert at the test scale.
	cfg.L1.SizeBytes = 512
	cfg.L1.Ways = 2
	rw, err := RunOne(cfg, mustVariant(t, "CacheRW"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := RunOne(cfg, mustVariant(t, "CacheRW-AB"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	// At the shrunken test configuration the residual stalls are port
	// contention, which AB does not address; it must convert blocked
	// allocations and must not add stalls. (The full-scale Figure 12
	// reproduction shows the order-of-magnitude stall reduction.)
	if ab.Snap.L1.Stalls+ab.Snap.L2.Stalls > rw.Snap.L1.Stalls+rw.Snap.L2.Stalls {
		t.Fatalf("AB stalls %d above CacheRW %d",
			ab.Snap.L1.Stalls+ab.Snap.L2.Stalls, rw.Snap.L1.Stalls+rw.Snap.L2.Stalls)
	}
	if ab.Snap.L1.AllocBypass+ab.Snap.L2.AllocBypass == 0 {
		t.Fatal("AB never converted an allocation")
	}
}

func TestRinserProducesRinses(t *testing.T) {
	spec, _ := workloads.ByName("BwAct")
	cfg := testConfig()
	cr, err := RunOne(cfg, mustVariant(t, "CacheRW-CR"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	_ = cr // Rinses only occur when dirty evictions happen; BwAct's
	// stores combine and flush, so just assert the run completed and
	// kept counters consistent.
	if cr.Snap.Cycles == 0 {
		t.Fatal("empty run")
	}
}

func TestPredictorEngagesOnStreaming(t *testing.T) {
	spec, _ := workloads.ByName("FwAct")
	cfg := testConfig()
	pc, err := RunOne(cfg, mustVariant(t, "CacheRW-PCby"), spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Snap.L2.PredBypass == 0 {
		t.Fatal("PC predictor never bypassed on a pure streaming workload")
	}
}

func TestMatrixHelpers(t *testing.T) {
	spec, _ := workloads.ByName("FwSoft")
	rs, err := RunMatrix(testConfig(), StaticVariants(), []workloads.Spec{spec}, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %d", len(rs))
	}
	m := NewMatrix(rs)
	if len(m.Workloads()) != 1 || m.Workloads()[0] != "FwSoft" {
		t.Fatalf("workloads = %v", m.Workloads())
	}
	bestLabel, best := m.StaticBest("FwSoft")
	worstLabel, worst := m.StaticWorst("FwSoft")
	if best.Snap.Cycles > worst.Snap.Cycles {
		t.Fatal("best slower than worst")
	}
	if bestLabel == "" || worstLabel == "" {
		t.Fatal("labels missing")
	}
	if _, ok := m.Get("FwSoft", "CacheR"); !ok {
		t.Fatal("Get failed")
	}
	if _, ok := m.Get("FwSoft", "Bogus"); ok {
		t.Fatal("phantom variant")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on missing entry did not panic")
		}
	}()
	m.MustGet("FwSoft", "Bogus")
}

func TestRunMatrixWrapsErrors(t *testing.T) {
	bad := testConfig()
	bad.L2Banks = 3
	spec, _ := workloads.ByName("FwSoft")
	_, err := RunMatrix(bad, StaticVariants(), []workloads.Spec{spec}, testScale)
	if err == nil || !strings.Contains(err.Error(), "FwSoft") {
		t.Fatalf("error not wrapped with workload context: %v", err)
	}
}

func mustVariant(t *testing.T, label string) Variant {
	t.Helper()
	v, err := VariantByLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
