package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// RunRecorded runs one workload under one variant with a trace recorder
// tapped between the GPU coalescer and the L1s, returning both the run's
// statistics and the captured request trace.
func RunRecorded(cfg Config, v Variant, spec workloads.Spec, scale workloads.Scale) (Result, *trace.Trace, error) {
	sys, err := NewSystem(cfg, v)
	if err != nil {
		return Result{}, nil, err
	}
	rec := trace.NewRecorder(sys.Sim)
	// Re-point the GPU at tapped ports. The GPU copies the port slice
	// at construction, so rebuild it with taps in place.
	ports := make([]cache.Port, len(sys.L1s))
	for i, l1 := range sys.L1s {
		ports[i] = rec.Tap(l1)
	}
	sys.GPU.SetPorts(ports)

	w := spec.Build(scale)
	if w.Name == "" {
		w.Name = spec.Name
	}
	snap, err := sys.Run(w)
	if err != nil {
		return Result{}, nil, err
	}
	r := Result{Workload: spec.Name, Class: spec.Class, Variant: v.Label, Snap: snap}
	return r, &rec.Trace, nil
}

// MemorySystem is the memory hierarchy without the GPU front end, used
// for trace-driven replay: per-CU L1s, banked L2, directory and DRAM,
// configured for a policy variant exactly as NewSystem builds them —
// including multi-tile topologies, which replay over the same NoC.
type MemorySystem struct {
	Sim       *event.Sim
	Tiles     []Tile
	Net       *noc.Network
	L1s       []*cache.Cache
	L2        *cache.Banked
	DRAM      *dram.Controller
	Directory *coherence.Directory
}

// NewMemorySystem wires the memory side only.
func NewMemorySystem(cfg Config, v Variant) (*MemorySystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sim := event.New()
	h := buildHierarchy(&cfg, v, singleSims(sim, cfg.Topology.WithDefaults().Tiles))
	return &MemorySystem{
		Sim: sim, Tiles: h.tiles, Net: h.net, L1s: h.l1s,
		L2: h.tiles[0].L2, DRAM: h.tiles[0].DRAM, Directory: h.dir,
	}, nil
}

// Snapshot collects the memory-side statistics.
func (ms *MemorySystem) Snapshot() stats.Snapshot {
	snap := stats.Snapshot{
		Cycles: uint64(ms.Sim.Now()),
	}
	snap.L1 = sumCacheStats(ms.L1s)
	for i := range ms.Tiles {
		snap.L2.Add(ms.Tiles[i].L2.Stats())
		snap.DRAM.Add(ms.Tiles[i].DRAM.Stats)
	}
	addTopology(&snap, ms.Tiles, ms.Net)
	return snap
}

// ReplayTrace drives a captured trace through a fresh memory system under
// the given variant and returns the resulting statistics. The variant may
// differ from the one the trace was recorded under: the replayer
// re-decorates requests per the replay policy, enabling what-if studies
// on a fixed request stream. mode selects timed or windowed pacing.
func ReplayTrace(cfg Config, v Variant, tr *trace.Trace, mode trace.ReplayMode, window int) (stats.Snapshot, error) {
	ms, err := NewMemorySystem(cfg, v)
	if err != nil {
		return stats.Snapshot{}, err
	}
	l2s := make([]*cache.Banked, len(ms.Tiles))
	for i := range ms.Tiles {
		l2s[i] = ms.Tiles[i].L2
	}
	eng := &coherence.Engine{
		PolicyKind: v.Policy,
		L1s:        ms.L1s, L2s: l2s,
		Sim: ms.Sim, SyncLatency: cfg.SyncLatency,
	}
	router := cache.PortFunc(func(req *mem.Request) {
		if req.CU < 0 || req.CU >= len(ms.L1s) {
			panic(fmt.Sprintf("core: trace CU %d out of range (have %d CUs)", req.CU, len(ms.L1s)))
		}
		req.Bypass = false
		eng.Decorate(req)
		ms.L1s[req.CU].Submit(req)
	})
	rp := trace.NewReplayer(ms.Sim, router, tr, mode)
	if window > 0 {
		rp.Window = window
	}
	finished := false
	rp.Start(func() { eng.Finish(func() { finished = true }) })
	ms.Sim.Run()
	if !finished && len(tr.Events) > 0 {
		return stats.Snapshot{}, fmt.Errorf("core: replay did not complete (%d/%d events)",
			rp.Completed, len(tr.Events))
	}
	snap := ms.Snapshot()
	snap.GPUMemRequests = uint64(len(tr.Events))
	return snap, nil
}
