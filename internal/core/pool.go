package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/workloads"
)

// SystemPool recycles warm System instances across experiment cells.
// Building a System is the dominant cold-start cost of a matrix sweep
// (cache set arrays, MSHR/bypass free lists, per-CU wavefront state,
// DRAM bank state); System.Reset restores a used system to its exact
// just-built observable state while keeping all of that capacity, so a
// pooled system re-runs a cell with almost no allocation.
//
// Systems are pooled per Variant: a system's wiring (store allocation,
// predictor, rinser attachment) is variant-specific and cannot be
// changed after construction. The pool is safe for concurrent use by the
// matrix worker pool; a Get/Put pair costs one mutex acquisition each.
type SystemPool struct {
	cfg         Config
	cellWorkers int

	mu   sync.Mutex
	free map[Variant][]*System

	// built/reused/puts are metrics-grade atomic counters so a serving
	// layer can export pool traffic (/metrics) without core importing
	// any HTTP machinery; internal/metrics is dependency-free.
	built  metrics.Counter
	reused metrics.Counter
	puts   metrics.Counter
}

// NewSystemPool builds an empty pool whose systems use cfg. The
// configuration is validated lazily by the first NewSystem call.
func NewSystemPool(cfg Config) *SystemPool {
	return NewSystemPoolWorkers(cfg, 1)
}

// NewSystemPoolWorkers is NewSystemPool for partitioned systems: every
// pooled system is built with the given intra-cell worker count (see
// NewSystemWorkers). cellWorkers <= 1 is exactly NewSystemPool.
func NewSystemPoolWorkers(cfg Config, cellWorkers int) *SystemPool {
	if cellWorkers < 1 {
		cellWorkers = 1
	}
	return &SystemPool{cfg: cfg, cellWorkers: cellWorkers, free: make(map[Variant][]*System)}
}

// Config returns the configuration every pooled system was built with.
func (p *SystemPool) Config() Config { return p.cfg }

// Get returns a ready-to-run system for v: a recycled warm one when
// available, a freshly built one otherwise. The caller runs it and,
// if the run completed normally, returns it with Put. A system that
// panicked mid-run must NOT be Put back; dropping it is safe.
func (p *SystemPool) Get(v Variant) (*System, error) {
	p.mu.Lock()
	if ss := p.free[v]; len(ss) > 0 {
		n := len(ss)
		s := ss[n-1]
		ss[n-1] = nil
		p.free[v] = ss[:n-1]
		p.mu.Unlock()
		p.reused.Inc()
		return s, nil
	}
	p.mu.Unlock()

	s, err := NewSystemWorkers(p.cfg, v, p.cellWorkers)
	if err != nil {
		return nil, err
	}
	p.built.Inc()
	return s, nil
}

// Put resets s and makes it available to later Get calls for its
// variant. Only systems built with this pool's Config may be returned;
// mixing configurations would silently run cells on the wrong machine.
func (p *SystemPool) Put(s *System) {
	if s.Cfg != p.cfg {
		panic("core: SystemPool.Put of a system built with a different Config")
	}
	if s.CellWorkers != p.cellWorkers {
		panic("core: SystemPool.Put of a system built with a different cell-worker count")
	}
	s.Reset()
	p.mu.Lock()
	p.free[s.Variant] = append(p.free[s.Variant], s)
	p.mu.Unlock()
	p.puts.Inc()
}

// Counts reports how many systems the pool has constructed and how many
// Get calls were served by reuse (benchmarks and tests).
func (p *SystemPool) Counts() (built, reused uint64) {
	return p.built.Load(), p.reused.Load()
}

// Gets reports the total systems handed out (built + reused); with
// Puts it exposes pool traffic for operational metrics.
func (p *SystemPool) Gets() uint64 { return p.built.Load() + p.reused.Load() }

// Puts reports how many systems have been returned (and reset).
func (p *SystemPool) Puts() uint64 { return p.puts.Load() }

// runCell executes one (spec, variant) cell on a pooled system. On
// success the system goes back to the pool. A budget-interrupted cell's
// system is also re-pooled: Put resets it, and the chaos tests pin that
// a reset-after-interrupt system is byte-identical to a fresh one. A
// deadlocked cell's system is discarded — a deadlock means the model
// itself misbehaved, so its state is not trusted for reuse — and a
// panicking cell's system is abandoned by the unwind, never re-pooled.
func runCell(pool *SystemPool, v Variant, spec workloads.Spec, scale workloads.Scale, b Budgets) (Result, error) {
	sys, err := pool.Get(v)
	if err != nil {
		return Result{}, err
	}
	r, err := runOn(sys, spec, scale, b)
	if err != nil {
		var be *ErrBudgetExceeded
		if errors.As(err, &be) {
			pool.Put(sys)
		}
		return Result{}, err
	}
	pool.Put(sys)
	return r, nil
}

// CellPanic wraps a panic raised inside a matrix cell with the cell's
// identity, so a deadlocked or crashing cell is identifiable from the
// panic message alone. RunMatrixWith re-raises worker panics as
// CellPanic values; recover-ing callers can unwrap Value.
type CellPanic struct {
	// Workload and Variant identify the matrix cell.
	Workload, Variant string
	// Value is the original panic value.
	Value any
}

// Error implements error, which is also what the runtime prints for an
// uncaught panic.
func (cp CellPanic) Error() string {
	return fmt.Sprintf("core: cell %s/%s panicked: %v", cp.Workload, cp.Variant, cp.Value)
}
