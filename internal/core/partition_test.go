package core

import (
	"math/rand"
	"testing"

	"repro/internal/noc"
	"repro/internal/workloads"
)

// TestPartitionedDifferentialRandomized is the oracle contract of
// partitioned execution: over seeded random (workload, variant, scale,
// tiles, cell-workers) tuples, a partitioned run must be byte-identical
// to the sequential wheel — snapshot, clock, and all. CI runs it under
// -race, which also checks the worker rotation's hand-off discipline.
func TestPartitionedDifferentialRandomized(t *testing.T) {
	iters := 6
	if testing.Short() {
		iters = 2
	}
	rng := rand.New(rand.NewSource(0x10AD4EAD)) // "lookahead"
	specs := smallSpecs(t, "FwSoft", "FwAct", "FwPool")
	vs := AllVariants()

	for it := 0; it < iters; it++ {
		spec := specs[rng.Intn(len(specs))]
		v := vs[rng.Intn(len(vs))]
		scale := workloads.Scale(0.004 + 0.012*rng.Float64())
		tiles := 1
		cfg := testConfig()
		if rng.Intn(2) == 1 {
			tiles = 2
			cfg = tiledConfig(2, noc.Crossbar)
		}
		cellWorkers := 2 + rng.Intn(3)

		ref, err := RunOne(cfg, v, spec, scale)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunOneWorkers(cfg, v, spec, scale, Budgets{}, cellWorkers)
		if err != nil {
			t.Fatal(err)
		}
		if !ref.Equal(got) {
			t.Fatalf("iter %d (%s/%s scale=%g tiles=%d workers=%d): partitioned differs from sequential:\nseq:  %+v\npart: %+v",
				it, spec.Name, v.Label, scale, tiles, cellWorkers, ref.Snap, got.Snap)
		}
	}
}

// TestPartitionedMatrixDifferential pins the matrix path: RunMatrixWith
// under CellWorkers > 1 (pooled, so reset partitioned systems are
// reused across cells) returns exactly the sequential matrix.
func TestPartitionedMatrixDifferential(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft", "FwAct")
	vs := AllVariants()
	const scale = workloads.Scale(0.01)

	ref, err := RunMatrixWith(cfg, vs, specs, scale, RunMatrixOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMatrixWith(cfg, vs, specs, scale, RunMatrixOpts{Workers: 2, CellWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(got) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		if !ref[i].Equal(got[i]) {
			t.Fatalf("cell %d differs under CellWorkers=2:\nseq:  %+v\npart: %+v", i, ref[i], got[i])
		}
	}
}

// TestPartitionedResetEquivalence pins reset ≡ fresh for partitioned
// systems, per variant: run partitioned, Reset, run again — both runs
// byte-identical to a fresh sequential system's result.
func TestPartitionedResetEquivalence(t *testing.T) {
	cfg := testConfig()
	spec, err := workloads.ByName("FwPool")
	if err != nil {
		t.Fatal(err)
	}
	w := spec.Build(testScale)

	for _, v := range AllVariants() {
		v := v
		t.Run(v.Label, func(t *testing.T) {
			seq, err := NewSystem(cfg, v)
			if err != nil {
				t.Fatal(err)
			}
			ref := mustRun(t, seq, w)

			sys, err := NewSystemWorkers(cfg, v, 2)
			if err != nil {
				t.Fatal(err)
			}
			first := mustRun(t, sys, w)
			if !first.Equal(ref) {
				t.Fatalf("fresh partitioned run differs from sequential:\nseq:  %+v\npart: %+v", ref, first)
			}
			sys.Reset()
			again := mustRun(t, sys, w)
			if !again.Equal(ref) {
				t.Fatalf("reset partitioned run differs from fresh:\nfresh: %+v\nreset: %+v", ref, again)
			}
		})
	}
}

// TestPartitionedSteadyStateAllocs pins that keyed-mode execution adds
// no per-event allocations: a warm partitioned system re-running a
// workload (driven on the caller goroutine, the rotation-free path)
// allocates no more than the warm sequential system does for the same
// run. The event layer's TestGroupSteadyStateAllocationFree pins the
// dispatch path at exactly 0 allocs/op; this guards the integration.
func TestPartitionedSteadyStateAllocs(t *testing.T) {
	cfg := testConfig()
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	w := spec.Build(workloads.Scale(0.01))
	v := AllVariants()[0]

	measure := func(sys *System) float64 {
		// Warm twice: first run grows capacities, second confirms reuse.
		for i := 0; i < 2; i++ {
			mustRun(t, sys, w)
			sys.Reset()
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := sys.Run(w); err != nil {
				t.Fatal(err)
			}
			sys.Reset()
		})
	}

	seq, err := NewSystem(cfg, v)
	if err != nil {
		t.Fatal(err)
	}
	seqAllocs := measure(seq)

	sys, err := NewSystemWorkers(cfg, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the group on the caller goroutine: the rotation ring is the
	// one documented per-run cost of CellWorkers > 1, and this test
	// isolates the per-event engine path from it.
	sys.CellWorkers = 1
	partAllocs := measure(sys)

	if partAllocs > seqAllocs {
		t.Fatalf("warm partitioned run allocates more than sequential: %.1f vs %.1f allocs/op",
			partAllocs, seqAllocs)
	}
}

// TestPartitionedLookaheadDerivation pins the window derivation against
// the declared cut-edge latencies: with the default cache geometry the
// minimum bound is the 15-cycle tag-lookup latency, below the 30-cycle
// directory hop and the 24-cycle NoC link.
func TestPartitionedLookaheadDerivation(t *testing.T) {
	seq, err := NewSystem(testConfig(), AllVariants()[0])
	if err != nil {
		t.Fatal(err)
	}
	if la := seq.Lookahead(); la != 0 {
		t.Fatalf("sequential system reports lookahead %d, want 0", la)
	}
	for _, tiles := range []int{1, 2} {
		cfg := testConfig()
		if tiles > 1 {
			cfg = tiledConfig(tiles, noc.Crossbar)
		}
		sys, err := NewSystemWorkers(cfg, AllVariants()[0], 4)
		if err != nil {
			t.Fatal(err)
		}
		want := cfg.L1.LookupLatency
		if cfg.L2.LookupLatency < want {
			want = cfg.L2.LookupLatency
		}
		if la := sys.Lookahead(); la != want {
			t.Fatalf("tiles=%d: derived lookahead %d, want %d", tiles, la, want)
		}
	}
}

// TestPartitionedPoolMismatch pins the option-vs-pool guard: a shared
// pool built for sequential cells cannot serve a CellWorkers matrix.
func TestPartitionedPoolMismatch(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft")
	pool := NewSystemPool(cfg)
	_, err := RunMatrixWith(cfg, AllVariants()[:1], specs, testScale,
		RunMatrixOpts{Pool: pool, CellWorkers: 2})
	if err == nil {
		t.Fatal("sequential pool accepted for a CellWorkers=2 matrix")
	}
}

// TestPartitionedCellWorkersBounds pins the validated range surfaced to
// micache/micached.
func TestPartitionedCellWorkersBounds(t *testing.T) {
	if _, err := NewSystemWorkers(testConfig(), AllVariants()[0], MaxCellWorkers+1); err == nil {
		t.Fatalf("cell workers above MaxCellWorkers=%d accepted", MaxCellWorkers)
	}
	sys, err := NewSystemWorkers(testConfig(), AllVariants()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys.CellWorkers != 1 || sys.Group != nil {
		t.Fatalf("cellWorkers=0 did not resolve to a sequential system: workers=%d group=%v",
			sys.CellWorkers, sys.Group != nil)
	}
}
