package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workloads"
)

const testScale = workloads.Scale(0.05)

// testConfig shrinks the GPU and L2 so unit tests run fast while keeping
// the footprint-to-capacity relationships of the full system (test-scale
// workloads still exceed the shrunken L2 the way full-scale ones exceed
// 4 MB).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GPU.CUs = 8
	cfg.L2.SizeBytes = 256 << 10
	return cfg
}

// mustRun runs w on sys, failing the test on any run error (deadlock or
// budget interruption).
func mustRun(tb testing.TB, sys *System, w workloads.Workload) stats.Snapshot {
	tb.Helper()
	snap, err := sys.Run(w)
	if err != nil {
		tb.Fatal(err)
	}
	return snap
}

func TestSmokeAllVariantsTinyWorkload(t *testing.T) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range AllVariants() {
		v := v
		t.Run(v.Label, func(t *testing.T) {
			r, err := RunOne(testConfig(), v, spec, testScale)
			if err != nil {
				t.Fatal(err)
			}
			if r.Snap.Cycles == 0 || r.Snap.GPUMemRequests == 0 {
				t.Fatalf("empty snapshot: %+v", r.Snap)
			}
		})
	}
}

func TestSmokeStreamingWorkload(t *testing.T) {
	spec, err := workloads.ByName("FwAct")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range StaticVariants() {
		v := v
		t.Run(v.Label, func(t *testing.T) {
			r, err := RunOne(testConfig(), v, spec, testScale)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %s", v.Label, r.Snap.String())
			if r.Snap.DRAM.Accesses() == 0 {
				t.Fatal("no DRAM traffic")
			}
		})
	}
}
