package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/mem"
	"repro/internal/workloads"
)

// TestMaxEventsBudget pins the event-count budget: the run stops within
// one poll interval of the budget, returns a fully populated
// *ErrBudgetExceeded, and leaves partial statistics inside it.
func TestMaxEventsBudget(t *testing.T) {
	spec, err := workloads.ByName("FwPool")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 5000
	_, err = sys.RunBudgeted(spec.Build(testScale), Budgets{MaxEvents: budget})
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *ErrBudgetExceeded", err)
	}
	if be.Reason != ReasonMaxEvents {
		t.Fatalf("reason = %s, want %s", be.Reason, ReasonMaxEvents)
	}
	if be.Workload != "FwPool" || be.Variant != "CacheRW" {
		t.Fatalf("error names %s/%s, want FwPool/CacheRW", be.Workload, be.Variant)
	}
	if be.Fired < budget {
		t.Fatalf("stopped after %d events, before the %d budget", be.Fired, budget)
	}
	// Poll granularity is one bucket drain (or one 1024-event cascade
	// interval); the overshoot must stay in that ballpark, not be
	// unbounded.
	if be.Fired > budget+100000 {
		t.Fatalf("budget overshot wildly: %d events for a %d budget", be.Fired, budget)
	}
	if be.Clock == 0 || uint64(be.Clock) != be.Partial.Cycles {
		t.Fatalf("partial snapshot cycles %d inconsistent with clock %d", be.Partial.Cycles, be.Clock)
	}
	if be.Partial.GPUMemRequests == 0 {
		t.Fatal("partial snapshot is empty; diagnostics lost")
	}
	for _, part := range []string{"FwPool", "CacheRW", "max-events", "pending"} {
		if !strings.Contains(be.Error(), part) {
			t.Fatalf("error %q does not mention %q", be.Error(), part)
		}
	}
}

// TestBudgetsNotHitAreInert: a run under generous budgets (and a live
// context and watchdog) is byte-identical to an unbudgeted run — the
// polls have no observable side effects.
func TestBudgetsNotHitAreInert(t *testing.T) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheRW-PCby")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, sys, spec.Build(testScale))

	sys.Reset()
	got, err := sys.RunBudgeted(spec.Build(testScale), Budgets{
		Ctx:              context.Background(),
		MaxEvents:        1 << 62,
		Timeout:          time.Hour,
		WatchdogInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("budgeted run differs from plain run:\nplain:    %+v\nbudgeted: %+v", want, got)
	}
}

// TestPreCanceledContext: a context canceled before the run starts
// reports immediately, without simulating anything.
func TestPreCanceledContext(t *testing.T) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheR")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, rerr := sys.RunBudgeted(spec.Build(testScale), Budgets{Ctx: ctx})
	var be *ErrBudgetExceeded
	if !errors.As(rerr, &be) {
		t.Fatalf("err = %v, want *ErrBudgetExceeded", rerr)
	}
	if be.Reason != ReasonCanceled || be.Fired != 0 {
		t.Fatalf("pre-canceled run: reason=%s fired=%d, want canceled/0", be.Reason, be.Fired)
	}
	if !errors.Is(rerr, context.Canceled) {
		t.Fatal("errors.Is(err, context.Canceled) = false")
	}
}

// TestCancelMidRunThenReuse cancels a run from another goroutine, checks
// the structured error, and proves the interrupted system is reusable
// after Reset (the re-pool contract).
func TestCancelMidRunThenReuse(t *testing.T) {
	spec, err := workloads.ByName("FwPool")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheRW-PCby")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, sys, spec.Build(testScale))

	sys.Reset()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	_, rerr := sys.RunBudgeted(spec.Build(testScale), Budgets{Ctx: ctx})
	if rerr == nil {
		// The whole run beat the cancel on this host; nothing to check
		// beyond the result being intact.
		t.Log("run completed before cancellation; skipping cancel assertions")
	} else {
		if !errors.Is(rerr, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", rerr)
		}
		var be *ErrBudgetExceeded
		if !errors.As(rerr, &be) || be.Reason != ReasonCanceled {
			t.Fatalf("err = %v, want ErrBudgetExceeded/canceled", rerr)
		}
	}

	// Reset-after-cancel: the rerun must be byte-identical to fresh.
	sys.Reset()
	got := mustRun(t, sys, spec.Build(testScale))
	if !got.Equal(want) {
		t.Fatalf("rerun after canceled run differs from fresh:\nfresh: %+v\nrerun: %+v", want, got)
	}
}

// TestWallClockTimeout bounds a cell by wall time. Timing-dependent by
// nature: the budget is far below the cell's real runtime, and the
// assertions accept completion on an absurdly fast host.
func TestWallClockTimeout(t *testing.T) {
	spec, err := workloads.ByName("CM")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := sys.RunBudgeted(spec.Build(testScale), Budgets{Timeout: time.Millisecond})
	if rerr == nil {
		t.Log("CM cell finished within 1ms on this host; skipping timeout assertions")
		return
	}
	var be *ErrBudgetExceeded
	if !errors.As(rerr, &be) || be.Reason != ReasonTimeout {
		t.Fatalf("err = %v, want ErrBudgetExceeded/timeout", rerr)
	}
	if be.Elapsed < time.Millisecond {
		t.Fatalf("elapsed %v below the 1ms budget", be.Elapsed)
	}
}

// TestWatchdogDetectsStall wedges the simulation goroutine inside one
// event callback (the livelock shape budgets cannot see) and checks the
// watchdog reports it through OnStall and stops the run as soon as the
// engine polls again.
func TestWatchdogDetectsStall(t *testing.T) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheR")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	// One event that blocks the engine for several watchdog intervals.
	sys.Sim.Schedule(0, func() { time.Sleep(300 * time.Millisecond) })
	stalls := make(chan StallInfo, 1)
	_, rerr := sys.RunBudgeted(spec.Build(testScale), Budgets{
		WatchdogInterval: 25 * time.Millisecond,
		OnStall: func(si StallInfo) {
			select {
			case stalls <- si:
			default:
			}
		},
	})
	var be *ErrBudgetExceeded
	if !errors.As(rerr, &be) || be.Reason != ReasonStalled {
		t.Fatalf("err = %v, want ErrBudgetExceeded/stalled", rerr)
	}
	select {
	case si := <-stalls:
		if si.Workload != "FwSoft" || si.Variant != "CacheR" {
			t.Fatalf("stall report names %s/%s, want FwSoft/CacheR", si.Workload, si.Variant)
		}
		if si.Interval != 25*time.Millisecond {
			t.Fatalf("stall report interval %v, want 25ms", si.Interval)
		}
	default:
		t.Fatal("watchdog stopped the run without calling OnStall")
	}

	// The stalled system is still reusable after Reset.
	sys.Reset()
	if snap := mustRun(t, sys, spec.Build(testScale)); snap.Cycles == 0 {
		t.Fatal("reset-after-stall system produced an empty run")
	}
}

// TestDeadlockReturnsTypedError reproduces a lost-wake-up deadlock (the
// GPU's memory ports swallow every request, so waves wait forever) and
// checks Run now returns *ErrDeadlock instead of panicking.
func TestDeadlockReturnsTypedError(t *testing.T) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testConfig(), v)
	if err != nil {
		t.Fatal(err)
	}
	blackhole := cache.PortFunc(func(req *mem.Request) {})
	ports := make([]cache.Port, len(sys.L1s))
	for i := range ports {
		ports[i] = blackhole
	}
	sys.GPU.SetPorts(ports)

	_, rerr := sys.Run(spec.Build(testScale))
	var dl *ErrDeadlock
	if !errors.As(rerr, &dl) {
		t.Fatalf("err = %v, want *ErrDeadlock", rerr)
	}
	if dl.Workload != "FwSoft" || dl.Variant != "CacheRW" {
		t.Fatalf("deadlock names %s/%s, want FwSoft/CacheRW", dl.Workload, dl.Variant)
	}
	if dl.Fired == 0 {
		t.Fatal("deadlock diagnostics lost the fired-event count")
	}
	for _, part := range []string{"FwSoft", "CacheRW", "deadlock", "pending"} {
		if !strings.Contains(dl.Error(), part) {
			t.Fatalf("deadlock message %q does not mention %q", dl.Error(), part)
		}
	}
}

// TestMatrixBudgets drives the budget layer through RunMatrixWith on
// both execution paths: an event budget every cell trips, and a
// pre-canceled matrix context.
func TestMatrixBudgets(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft", "BwSoft")
	vs := StaticVariants()

	for _, workers := range []int{1, 2} {
		_, err := RunMatrixWith(cfg, vs, specs, testScale,
			RunMatrixOpts{Workers: workers, MaxEventsPerCell: 50})
		var be *ErrBudgetExceeded
		if !errors.As(err, &be) {
			t.Fatalf("Workers=%d: err = %v, want *ErrBudgetExceeded", workers, err)
		}
		// First error in cell order: the matrix is spec-major, so the
		// first cell is FwSoft under the first static variant.
		if be.Workload != "FwSoft" || be.Variant != "Uncached" {
			t.Fatalf("Workers=%d: first budget error from %s/%s, want FwSoft/Uncached",
				workers, be.Workload, be.Variant)
		}

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err = RunMatrixWith(cfg, vs, specs, testScale,
			RunMatrixOpts{Workers: workers, Ctx: ctx})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Workers=%d: canceled matrix err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestBudgetStoppedSystemsAreRepooled pins the pool interaction: a
// budget-interrupted cell returns its (reset) system to the pool, so an
// over-budget sweep never rebuilds systems per cell.
func TestBudgetStoppedSystemsAreRepooled(t *testing.T) {
	cfg := testConfig()
	specs := smallSpecs(t, "FwSoft", "BwSoft", "FwAct")
	v, err := VariantByLabel("CacheR")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSystemPool(cfg)
	for _, spec := range specs {
		_, err := RunMatrixWith(cfg, []Variant{v}, []workloads.Spec{spec}, testScale,
			RunMatrixOpts{Workers: 1, Pool: pool, MaxEventsPerCell: 50})
		var be *ErrBudgetExceeded
		if !errors.As(err, &be) {
			t.Fatalf("%s: err = %v, want budget error", spec.Name, err)
		}
	}
	built, reused := pool.Counts()
	if built != 1 {
		t.Fatalf("pool built %d systems across budget-tripped cells, want 1 (re-pooled)", built)
	}
	if reused != uint64(len(specs)-1) {
		t.Fatalf("pool reuse count %d, want %d", reused, len(specs)-1)
	}

	// And the re-pooled systems are clean: a full unbudgeted matrix from
	// the same pool matches a cold reference.
	ref, err := RunMatrixWith(cfg, []Variant{v}, specs, testScale, RunMatrixOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMatrixWith(cfg, []Variant{v}, specs, testScale, RunMatrixOpts{Workers: 1, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !got[i].Equal(ref[i]) {
			t.Fatalf("cell %d (%s) from a budget-recycled pool differs from cold reference", i, ref[i].Workload)
		}
	}
}
