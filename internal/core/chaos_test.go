package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/workloads"
)

// TestCancelAnywhereResetEquivalence is the chaos contract behind
// re-pooling budget-interrupted systems: stop a run at an arbitrary
// event count, Reset, and the rerun must be byte-identical to a run on
// a system that was never interrupted. Every variant, several random
// cut points each, with a fixed seed so failures reproduce.
//
// This is deliberately run under -race in CI: the max-events budget
// exercises the monitor-free poll path, and interleaving it with
// watchdog-bearing tests in the same binary shakes out unsynchronized
// access between the engine goroutine and budget bookkeeping.
func TestCancelAnywhereResetEquivalence(t *testing.T) {
	cfg := testConfig()
	spec, err := workloads.ByName("FwPool")
	if err != nil {
		t.Fatal(err)
	}
	w := spec.Build(testScale)

	const cutsPerVariant = 5
	rng := rand.New(rand.NewSource(0x6d69636163686564)) // "micached"

	// cellWorkers=1 is the original sequential contract; cellWorkers=3
	// additionally chaoses the partitioned engine group — the MaxEvents
	// budget then counts fired events summed across all partitions, and
	// a cut can land with the in-flight state split between them.
	for _, cellWorkers := range []int{1, 3} {
		for _, v := range AllVariants() {
			v := v
			t.Run(fmt.Sprintf("%s/workers=%d", v.Label, cellWorkers), func(t *testing.T) {
				sys, err := NewSystemWorkers(cfg, v, cellWorkers)
				if err != nil {
					t.Fatal(err)
				}
				ref := mustRun(t, sys, w)
				total := sys.engineFired()
				if total < 2 {
					t.Fatalf("workload fired only %d events; chaos cuts need more", total)
				}

				for i := 0; i < cutsPerVariant; i++ {
					cut := 1 + uint64(rng.Int63n(int64(total)))
					sys.Reset()
					snap, rerr := sys.RunBudgeted(w, Budgets{MaxEvents: cut})
					if rerr == nil {
						// The poll granularity (one bucket drain) let the
						// run finish before noticing a cut near the end;
						// the result must then be the reference exactly.
						if !snap.Equal(ref) {
							t.Fatalf("cut=%d: uninterrupted completion differs from reference", cut)
						}
					} else {
						var be *ErrBudgetExceeded
						if !errors.As(rerr, &be) {
							t.Fatalf("cut=%d: err = %v, want *ErrBudgetExceeded", cut, rerr)
						}
						if be.Fired < cut {
							t.Fatalf("cut=%d: stopped after only %d events", cut, be.Fired)
						}
						if be.Fired > total {
							t.Fatalf("cut=%d: error reports %d events fired but the whole run is %d: aggregate fired count overshot",
								cut, be.Fired, total)
						}
					}

					// The re-pool contract: Reset after an interruption at
					// ANY point restores byte-identical behavior.
					sys.Reset()
					got := mustRun(t, sys, w)
					if !got.Equal(ref) {
						t.Fatalf("cut=%d: rerun after interrupted run differs from fresh:\nfresh: %+v\nrerun: %+v",
							cut, ref, got)
					}
				}
			})
		}
	}
}
