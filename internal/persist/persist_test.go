package persist

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/stats"
)

var errDisk = errors.New("injected disk failure")

func snapN(n uint64) stats.Snapshot {
	return stats.Snapshot{Cycles: n, VectorOps: n * 3, GPUMemRequests: n * 7,
		L1: stats.CacheStats{Hits: n, Misses: n + 1}, Kernels: 2}
}

func mustOpen(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustPut(t *testing.T, s *Store, key string, snap stats.Snapshot) {
	t.Helper()
	if err := s.Put(key, snap); err != nil {
		t.Fatal(err)
	}
}

// corruptFiles lists *.corrupt files in dir.
func corruptFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), corruptSuffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Fsync: true})
	want := snapN(42)
	want.Tiles = []stats.TileStats{{L1: stats.CacheStats{Hits: 9}}}
	want.Links = []stats.LinkStats{{Src: 0, Dst: 1, Forwarded: 5}}
	mustPut(t, s, "w=A|v=B|s=1", want)
	got, ok, err := s.Get("w=A|v=B|s=1")
	if err != nil || !ok {
		t.Fatalf("Get = ok=%v err=%v", ok, err)
	}
	if !got.Equal(want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	if _, ok, _ := s.Get("w=A|v=B|s=2"); ok {
		t.Fatal("absent key reported present")
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Writes != 1 {
		t.Fatalf("counters = %+v, want 1 hit / 1 miss / 1 write", c)
	}
}

// TestReopenRebuildsIndex is the basic persistence contract: a new
// Store over the same directory serves everything a previous one wrote.
func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, Options{Fsync: true})
	keys := []string{"k1", "k2", "k3"}
	for i, k := range keys {
		mustPut(t, s1, k, snapN(uint64(i+1)))
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != len(keys) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(keys))
	}
	for i, k := range keys {
		got, ok, err := s2.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) after reopen: ok=%v err=%v", k, ok, err)
		}
		if !got.Equal(snapN(uint64(i + 1))) {
			t.Fatalf("Get(%s) after reopen: wrong snapshot", k)
		}
	}
}

// TestPutOverwriteKeepsLatest re-puts a key (a newer deploy could write
// the same key after a fingerprint stayed equal) and checks last-write
// wins atomically.
func TestPutOverwriteKeepsLatest(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, "k", snapN(1))
	mustPut(t, s, "k", snapN(2))
	got, ok, _ := s.Get("k")
	if !ok || got.Cycles != 2 {
		t.Fatalf("after overwrite: ok=%v cycles=%d, want 2", ok, got.Cycles)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
}

// TestWriteErrorLeavesOldEntry drives the write-error branch: the Put
// fails cleanly, the previous committed entry survives, and no stray
// temp file is left behind.
func TestWriteErrorLeavesOldEntry(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	s := mustOpen(t, dir, Options{FS: in})
	mustPut(t, s, "k", snapN(1))

	in.Inject(faultfs.Rule{Op: faultfs.OpWrite, Err: errDisk, FlipBit: -1})
	if err := s.Put("k", snapN(2)); !errors.Is(err, errDisk) {
		t.Fatalf("Put with injected write error = %v, want errDisk", err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || got.Cycles != 1 {
		t.Fatalf("old entry after failed overwrite: ok=%v cycles=%d err=%v, want 1", ok, got.Cycles, err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), tmpSuffix) {
			t.Fatalf("failed Put left temp file %s", e.Name())
		}
	}
	if c := s.Counters(); c.WriteErrors != 1 {
		t.Fatalf("WriteErrors = %d, want 1", c.WriteErrors)
	}
}

// TestRenameErrorLeavesOldEntry drives the rename-error branch.
func TestRenameErrorLeavesOldEntry(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	s := mustOpen(t, dir, Options{FS: in})
	mustPut(t, s, "k", snapN(1))

	in.Inject(faultfs.Rule{Op: faultfs.OpRename, Err: errDisk, FlipBit: -1})
	if err := s.Put("k", snapN(2)); !errors.Is(err, errDisk) {
		t.Fatalf("Put with injected rename error = %v, want errDisk", err)
	}
	got, ok, err := s.Get("k")
	if err != nil || !ok || got.Cycles != 1 {
		t.Fatalf("old entry after failed rename: ok=%v cycles=%d err=%v", ok, got.Cycles, err)
	}
}

// TestCrashRecovery is the satellite scenario: several entries written
// through, one killed mid-write (silent short write — data torn, no
// rename), one left as a bare .tmp (crash before rename). On reopen
// the intact entries load, the torn ones are quarantined, and a fresh
// Put repopulates the lost key.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	s1 := mustOpen(t, dir, Options{FS: in, Fsync: true})
	mustPut(t, s1, "intact-1", snapN(1))
	mustPut(t, s1, "intact-2", snapN(2))

	// Crash shape 1: the write is silently short AND the rename never
	// happens — a classic power cut. The .tmp stays behind, torn.
	in.Inject(faultfs.Rule{Op: faultfs.OpWrite, ShortBytes: 10, FlipBit: -1})
	in.Inject(faultfs.Rule{Op: faultfs.OpRename, Err: errDisk, FlipBit: -1})
	if err := s1.Put("torn", snapN(3)); err == nil {
		t.Fatal("expected the torn Put to fail at rename")
	}
	// Simulate that the crash also prevented the cleanup Remove: put
	// the torn temp file back exactly as the power cut left it.
	tornTmp := filepath.Join(dir, FileName("torn")+tmpSuffix)
	if err := os.WriteFile(tornTmp, []byte("torn-garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Crash shape 2: a fully-written entry whose bytes rotted on disk.
	rotPath := filepath.Join(dir, FileName("intact-2"))
	data, err := os.ReadFile(rotPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(rotPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// "Reboot": a fresh store over the same directory.
	s2 := mustOpen(t, dir, Options{Fsync: true})
	if got, ok, err := s2.Get("intact-1"); err != nil || !ok || !got.Equal(snapN(1)) {
		t.Fatalf("intact entry lost across restart: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := s2.Get("intact-2"); ok {
		t.Fatal("bit-rotted entry served after restart")
	}
	if _, ok, _ := s2.Get("torn"); ok {
		t.Fatal("torn entry served after restart")
	}
	if c := s2.Counters(); c.Corrupt != 2 {
		t.Fatalf("Corrupt = %d at reopen, want 2 (rot + torn tmp)", c.Corrupt)
	}
	if got := corruptFiles(t, dir); len(got) != 2 {
		t.Fatalf("quarantined files = %v, want 2", got)
	}

	// A fresh run repopulates the lost keys.
	mustPut(t, s2, "torn", snapN(3))
	mustPut(t, s2, "intact-2", snapN(2))
	for _, k := range []string{"intact-1", "intact-2", "torn"} {
		if _, ok, err := s2.Get(k); err != nil || !ok {
			t.Fatalf("Get(%s) after repopulation: ok=%v err=%v", k, ok, err)
		}
	}
}

// TestChecksumMismatchQuarantinesOnGet corrupts an entry after the
// index was built: the Get must quarantine, report a miss, and never
// return the damaged snapshot.
func TestChecksumMismatchQuarantinesOnGet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, "k", snapN(7))
	path := filepath.Join(dir, FileName("k"))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 1 // flip a checksum bit
	os.WriteFile(path, data, 0o644)

	if _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("corrupt Get = ok=%v err=%v, want miss with nil error", ok, err)
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", c.Corrupt)
	}
	if got := corruptFiles(t, dir); len(got) != 1 {
		t.Fatalf("no quarantine file after checksum mismatch: %v", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", s.Len())
	}
}

// TestTruncatedEntryQuarantined covers every truncation point: header,
// key, payload, and checksum.
func TestTruncatedEntryQuarantined(t *testing.T) {
	for _, cut := range []int{0, 3, headerLen - 1, headerLen + 2} {
		dir := t.TempDir()
		s := mustOpen(t, dir, Options{})
		mustPut(t, s, "k", snapN(1))
		path := filepath.Join(dir, FileName("k"))
		data, _ := os.ReadFile(path)
		if cut >= len(data) {
			t.Fatalf("cut %d beyond entry size %d", cut, len(data))
		}
		os.WriteFile(path, data[:cut], 0o644)
		if _, ok, err := s.Get("k"); ok || err != nil {
			t.Fatalf("cut=%d: Get = ok=%v err=%v, want clean miss", cut, ok, err)
		}
	}
}

// TestBitFlipViaInjector drives the corruption branch through the
// faultfs seam instead of direct file surgery: a flipped bit in the
// write path is caught at read time by the checksum.
func TestBitFlipViaInjector(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	s := mustOpen(t, dir, Options{FS: in})
	in.Inject(faultfs.Rule{Op: faultfs.OpWrite, FlipBit: 20})
	mustPut(t, s, "k", snapN(1)) // write "succeeds" — corruption is silent
	if _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("bit-flipped entry Get = ok=%v err=%v, want clean miss", ok, err)
	}
	if c := s.Counters(); c.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", c.Corrupt)
	}
}

// TestReadErrorAtStartup injects an I/O error into the startup scan:
// the unreadable entry is excluded from the index (not served, not
// quarantined — the media may recover) and the scan completes.
func TestReadErrorAtStartup(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, Options{})
	mustPut(t, s1, "good", snapN(1))
	mustPut(t, s1, "unlucky", snapN(2))

	in := faultfs.NewInjector(nil).Inject(faultfs.Rule{
		Op: faultfs.OpReadFile, PathContains: FileName("unlucky"), Err: errDisk, FlipBit: -1})
	s2 := mustOpen(t, dir, Options{FS: in})
	if s2.Len() != 1 {
		t.Fatalf("Len = %d after scan read error, want 1", s2.Len())
	}
	if _, ok, _ := s2.Get("good"); !ok {
		t.Fatal("healthy entry lost to a neighbor's read error")
	}
	if c := s2.Counters(); c.ReadErrors != 1 || c.Corrupt != 0 {
		t.Fatalf("counters = %+v, want 1 read error / 0 corrupt", c)
	}
	if got := corruptFiles(t, dir); len(got) != 0 {
		t.Fatalf("read error must not quarantine, got %v", got)
	}
}

// TestReadErrorOnGet returns the error (for the circuit breaker) and
// keeps the entry indexed: a transient EIO must not evict good data.
func TestReadErrorOnGet(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	s := mustOpen(t, dir, Options{FS: in})
	mustPut(t, s, "k", snapN(1))
	in.Inject(faultfs.Rule{Op: faultfs.OpReadFile, Err: errDisk, FlipBit: -1})
	if _, ok, err := s.Get("k"); ok || !errors.Is(err, errDisk) {
		t.Fatalf("Get = ok=%v err=%v, want miss with errDisk", ok, err)
	}
	// The transient fault cleared; the entry is still there.
	if got, ok, err := s.Get("k"); err != nil || !ok || got.Cycles != 1 {
		t.Fatalf("entry lost after transient read error: ok=%v err=%v", ok, err)
	}
}

// TestVersionMismatchQuarantined: a file from a future (or ancient)
// format version is quarantined, never decoded.
func TestVersionMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, "k", snapN(1))
	path := filepath.Join(dir, FileName("k"))
	data, _ := os.ReadFile(path)
	data[4] = 0xFF // format version low byte
	os.WriteFile(path, data, 0o644)
	s2 := mustOpen(t, dir, Options{})
	if s2.Len() != 0 {
		t.Fatalf("future-version entry indexed: Len = %d", s2.Len())
	}
	if c := s2.Counters(); c.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", c.Corrupt)
	}
}

// TestEmbeddedKeyMismatch plants a valid entry under the wrong
// filename (an operator copying files around): the embedded key wins
// and the imposter is quarantined on Get.
func TestEmbeddedKeyMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	mustPut(t, s, "real", snapN(1))
	data, err := os.ReadFile(filepath.Join(dir, FileName("real")))
	if err != nil {
		t.Fatal(err)
	}
	// Fabricate the file for a different key holding "real"'s bytes,
	// then force it into the index by reopening (scan indexes by the
	// embedded key, so use Get's path: seed the index via Put then
	// overwrite the file on disk).
	mustPut(t, s, "victim", snapN(2))
	os.WriteFile(filepath.Join(dir, FileName("victim")), data, 0o644)
	if _, ok, err := s.Get("victim"); ok || err != nil {
		t.Fatalf("key-mismatched entry served: ok=%v err=%v", ok, err)
	}
	if got := corruptFiles(t, dir); len(got) != 1 {
		t.Fatalf("imposter not quarantined: %v", got)
	}
}

// TestScanIndexesByEmbeddedKey: a hand-renamed file still indexes
// under the key its content declares.
func TestScanIndexesByEmbeddedKey(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, Options{})
	mustPut(t, s1, "k", snapN(5))
	if err := os.Rename(filepath.Join(dir, FileName("k")),
		filepath.Join(dir, "renamed-by-hand"+suffix)); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	// The content is intact and declares key "k", so the scan indexes
	// it. Get goes through the canonical path, finds no file there,
	// and reports that as a read error (the index said it existed) —
	// never a bogus hit, never a panic.
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (indexed by embedded key)", s2.Len())
	}
	if snap, ok, _ := s2.Get("k"); ok && snap.Cycles != 5 {
		t.Fatalf("hand-renamed entry served wrong data: %+v", snap)
	}
}

// TestFsyncPolicy counts sync calls through the seam: fsync-on syncs
// file and directory per Put, fsync-off never calls sync at all.
func TestFsyncPolicy(t *testing.T) {
	in := faultfs.NewInjector(nil)
	s := mustOpen(t, t.TempDir(), Options{FS: in, Fsync: true})
	mustPut(t, s, "k", snapN(1))
	if in.OpCount(faultfs.OpSync) != 1 || in.OpCount(faultfs.OpSyncDir) != 1 {
		t.Fatalf("fsync=true: sync=%d syncdir=%d, want 1/1",
			in.OpCount(faultfs.OpSync), in.OpCount(faultfs.OpSyncDir))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if in.OpCount(faultfs.OpSyncDir) != 2 {
		t.Fatalf("Close with fsync=true must sync the directory")
	}

	in2 := faultfs.NewInjector(nil)
	s2 := mustOpen(t, t.TempDir(), Options{FS: in2, Fsync: false})
	mustPut(t, s2, "k", snapN(1))
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if in2.OpCount(faultfs.OpSync) != 0 || in2.OpCount(faultfs.OpSyncDir) != 0 {
		t.Fatalf("fsync=false must never sync, got sync=%d syncdir=%d",
			in2.OpCount(faultfs.OpSync), in2.OpCount(faultfs.OpSyncDir))
	}
}

// TestConcurrentRestartRace runs writers against one store while a
// second store opens over the same directory — the restart race. Run
// under -race in CI; the contract is no data race, no panic, and the
// second store serving only verified entries.
func TestConcurrentRestartRace(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, Options{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []string{"a", "b", "c", "d", "e", "f"}[(w*2+i)%6]
				_ = s1.Put(key, snapN(uint64(i)))
				_, _, _ = s1.Get(key)
			}
		}(w)
	}
	// "Restart" concurrently, several times.
	for r := 0; r < 5; r++ {
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("restart %d: %v", r, err)
		}
		for _, k := range s2.Keys() {
			if _, _, err := s2.Get(k); err != nil {
				t.Fatalf("restart %d: Get(%s): %v", r, k, err)
			}
		}
		if c := s2.Counters(); c.Corrupt != 0 {
			// Atomic rename means a concurrent writer can never
			// expose a torn entry — except its in-flight .tmp file,
			// which a scan may legitimately quarantine. Only count
			// committed-entry corruption as failure.
			for _, name := range corruptFiles(t, dir) {
				if !strings.Contains(name, tmpSuffix) {
					t.Fatalf("restart %d quarantined a committed entry: %s", r, name)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestFileNameStable(t *testing.T) {
	// The filename schema is shared between micache and micached
	// processes across deploys; pin it.
	if got := FileName("w=FwSoft|v=CacheRW"); got != FileName("w=FwSoft|v=CacheRW") {
		t.Fatal("FileName not deterministic")
	}
	if FileName("a") == FileName("b") {
		t.Fatal("trivial collision")
	}
	if !strings.HasSuffix(FileName("a"), suffix) {
		t.Fatal("missing suffix")
	}
}
