// Package persist is the crash-safe on-disk tier of the result cache:
// a content-addressed snapshot store with one file per canonical key.
//
// Durability discipline:
//
//   - Every entry is a self-verifying file: a fixed header (magic,
//     format version, key and payload lengths) followed by the full
//     canonical key, the JSON-encoded stats.Snapshot, and a CRC-32C
//     checksum over all of it. A reader can always tell a good entry
//     from a torn, truncated, or bit-flipped one.
//   - Writes are atomic: payload goes to a ".tmp" sibling first
//     (synced when the fsync policy says so), then renames into place.
//     A crash at any point leaves either the old state or the new
//     state, never a half-written visible entry.
//   - Startup scans the directory, verifies every entry, and rebuilds
//     the key index. Anything that fails verification — including
//     leftover ".tmp" files from a torn write — is quarantined by
//     renaming it to "<name>.corrupt" and counted; it is never served
//     and never fatal.
//
// All filesystem traffic goes through the internal/faultfs seam, so
// the chaos tests drive every one of those recovery branches
// deterministically.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/stats"
)

const (
	// suffix names a committed entry; tmpSuffix an in-progress write;
	// corruptSuffix a quarantined file (kept for forensics, never read).
	suffix        = ".snap"
	tmpSuffix     = ".tmp"
	corruptSuffix = ".corrupt"

	// formatVersion is the on-disk layout version. Decoders reject
	// other versions (quarantine, not crash): the layout can evolve
	// without old deployments serving garbage. Distinct from the
	// simulator fingerprint baked into keys — that invalidates results,
	// this invalidates encodings.
	formatVersion = 1

	// headerLen is magic(4) + version(2) + keyLen(4) + payloadLen(4).
	headerLen = 14
)

var (
	magic     = [4]byte{'M', 'I', 'C', 'S'}
	castTable = crc32.MakeTable(crc32.Castagnoli)
)

// Options configures Open.
type Options struct {
	// FS is the filesystem seam; nil means the real filesystem.
	FS faultfs.FS
	// Fsync syncs the entry file (and the directory) on every Put.
	// Off, a kernel crash can lose recent entries — but a torn or
	// reordered write still cannot be served, because verification
	// catches it and quarantines the file.
	Fsync bool
}

// Counters is a point-in-time copy of the store's lifetime counters.
type Counters struct {
	Hits        uint64 // Gets served from a verified entry
	Misses      uint64 // Gets for keys not in the index
	Writes      uint64 // successful Puts
	WriteErrors uint64 // Puts that failed (create/write/sync/rename)
	ReadErrors  uint64 // reads that failed with an I/O error (not corruption)
	Corrupt     uint64 // entries quarantined (torn, truncated, checksum, version)
}

// Store is the on-disk snapshot store. All methods are safe for
// concurrent use; operations on the same directory from *different*
// Store instances (or processes) are safe too, because visibility is
// only ever granted by atomic rename and every read verifies.
type Store struct {
	dir   string
	fs    faultfs.FS
	fsync bool

	mu    sync.Mutex
	index map[string]struct{} // canonical keys known to be on disk

	hits, misses, writes    metrics.Counter
	writeErrors, readErrors metrics.Counter
	corrupt                 metrics.Counter
}

// Open creates dir if needed, scans it, verifies every committed
// entry, quarantines anything unreadable, and returns the store with
// its index rebuilt. Scan-time corruption is counted, never fatal: a
// store that lost everything opens empty.
func Open(dir string, o Options) (*Store, error) {
	if o.FS == nil {
		o.FS = faultfs.OS{}
	}
	if err := o.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: o.FS, fsync: o.Fsync, index: make(map[string]struct{})}
	ents, err := o.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: scan %s: %w", dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A torn write from a crash mid-Put: the rename never
			// happened, so the content was never visible. Quarantine.
			s.quarantine(path)
		case strings.HasSuffix(name, suffix):
			key, _, err := s.readVerify(path)
			if err != nil {
				if isIOError(err) {
					// The media, not the content: leave the file where
					// it is (a later read may succeed) but keep it out
					// of the index so it cannot be served unverified.
					s.readErrors.Inc()
					continue
				}
				s.quarantine(path)
				continue
			}
			// The embedded key is authoritative; the filename is just
			// its hash. A file whose content belongs to a different
			// key (copied or renamed by hand) indexes under what it
			// actually holds.
			s.index[key] = struct{}{}
		}
	}
	return s, nil
}

// Dir returns the directory the store lives in.
func (s *Store) Dir() string { return s.dir }

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Counters returns a snapshot of the lifetime counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
		ReadErrors:  s.readErrors.Load(),
		Corrupt:     s.corrupt.Load(),
	}
}

// Get reads and verifies the entry for key. ok is false on a miss or
// when the entry failed verification (it is quarantined and counted,
// never returned); err is non-nil only for I/O errors, so the caller's
// circuit breaker can tell a failing disk from an absent entry.
func (s *Store) Get(key string) (stats.Snapshot, bool, error) {
	s.mu.Lock()
	_, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		s.misses.Inc()
		return stats.Snapshot{}, false, nil
	}
	path := s.path(key)
	gotKey, snap, err := s.readVerify(path)
	if err != nil {
		if isIOError(err) {
			s.readErrors.Inc()
			return stats.Snapshot{}, false, fmt.Errorf("persist: read %s: %w", path, err)
		}
		// Corrupt on disk after indexing (media rot, truncation by an
		// outside actor): quarantine and report a clean miss.
		s.quarantine(path)
		s.dropIndex(key)
		return stats.Snapshot{}, false, nil
	}
	if gotKey != key {
		// Hash-named file holding someone else's entry; treat as
		// corruption of this key's slot.
		s.quarantine(path)
		s.dropIndex(key)
		return stats.Snapshot{}, false, nil
	}
	s.hits.Inc()
	return snap, true, nil
}

// Put writes the entry for key atomically: temp file, optional fsync,
// rename, optional directory fsync. On any error the temp file is
// removed (best effort) and the previous entry for the key — if any —
// remains intact and served.
func (s *Store) Put(key string, snap stats.Snapshot) error {
	data, err := encode(key, snap)
	if err != nil {
		s.writeErrors.Inc()
		return fmt.Errorf("persist: encode %q: %w", key, err)
	}
	final := s.path(key)
	tmp := final + tmpSuffix
	if err := s.writeTmp(tmp, data); err != nil {
		s.writeErrors.Inc()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("persist: write %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		s.writeErrors.Inc()
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("persist: commit %s: %w", final, err)
	}
	if s.fsync {
		if err := s.fs.SyncDir(s.dir); err != nil {
			// The entry is visible and verifiable; only its durability
			// across a power cut is in doubt. Count, do not fail.
			s.writeErrors.Inc()
		}
	}
	s.mu.Lock()
	s.index[key] = struct{}{}
	s.mu.Unlock()
	s.writes.Inc()
	return nil
}

// Delete removes the entry for key (used by tests and future eviction;
// a miss is not an error).
func (s *Store) Delete(key string) error {
	s.dropIndex(key)
	err := s.fs.Remove(s.path(key))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Close flushes the directory once more when fsync is on, making the
// final set of renames durable. The drain path calls it; the store is
// unusable afterwards only by convention (no operation checks).
func (s *Store) Close() error {
	if !s.fsync {
		return nil
	}
	return s.fs.SyncDir(s.dir)
}

// Keys returns the indexed canonical keys (order unspecified).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	return out
}

// path maps a canonical key to its entry file: the key's FNV-safe
// content hash keeps filenames fixed-length and filesystem-safe while
// the embedded key keeps them self-describing.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, FileName(key))
}

// FileName returns the entry filename for a canonical key (exposed so
// tests and operators can locate an entry on disk).
func FileName(key string) string {
	sum := crc32.Checksum([]byte(key), castTable)
	// CRC-32 alone invites collisions at scale; pair it with a 64-bit
	// FNV-1a so two distinct hot keys colliding is out of practical
	// reach. (Collisions are not a correctness risk — the embedded key
	// is verified on read — only a cache-efficiency one: colliding
	// keys would evict each other's files.)
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return fmt.Sprintf("%08x%016x%s", sum, h, suffix)
}

func (s *Store) dropIndex(key string) {
	s.mu.Lock()
	delete(s.index, key)
	s.mu.Unlock()
}

// quarantine renames a bad file to <name>.corrupt and counts it; if
// even the rename fails it falls back to removal, and if that fails
// too the file simply stays — unindexed, so it can never be served.
func (s *Store) quarantine(path string) {
	s.corrupt.Inc()
	if err := s.fs.Rename(path, path+corruptSuffix); err != nil {
		_ = s.fs.Remove(path)
	}
}

// writeTmp creates the temp file, writes data, syncs per policy, and
// closes, returning the first error.
func (s *Store) writeTmp(tmp string, data []byte) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if s.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// encode serializes one entry:
//
//	magic[4] version[2] keyLen[4] payloadLen[4] key payload crc32c[4]
//
// The checksum covers everything before it, so any torn, truncated, or
// flipped byte anywhere in the file fails verification.
func encode(key string, snap stats.Snapshot) ([]byte, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, headerLen+len(key)+len(payload)+4)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castTable))
	return buf, nil
}

// errCorrupt marks verification failures (vs I/O errors). It carries
// the reason for test assertions and logs.
type errCorrupt struct{ reason string }

func (e *errCorrupt) Error() string { return "persist: corrupt entry: " + e.reason }

// isIOError distinguishes media failures from content failures: only
// the latter quarantine the file.
func isIOError(err error) bool {
	_, isCorrupt := err.(*errCorrupt)
	return !isCorrupt
}

// readVerify reads one entry file and verifies structure, version, and
// checksum, returning the embedded key and snapshot.
func (s *Store) readVerify(path string) (string, stats.Snapshot, error) {
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return "", stats.Snapshot{}, err
	}
	key, snap, cerr := decode(data)
	if cerr != nil {
		return "", stats.Snapshot{}, cerr
	}
	return key, snap, nil
}

// decode is the inverse of encode, rejecting anything malformed.
func decode(data []byte) (string, stats.Snapshot, error) {
	if len(data) < headerLen+4 {
		return "", stats.Snapshot{}, &errCorrupt{"truncated header"}
	}
	if [4]byte(data[:4]) != magic {
		return "", stats.Snapshot{}, &errCorrupt{"bad magic"}
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != formatVersion {
		return "", stats.Snapshot{}, &errCorrupt{fmt.Sprintf("format version %d", v)}
	}
	keyLen := int(binary.LittleEndian.Uint32(data[6:10]))
	payloadLen := int(binary.LittleEndian.Uint32(data[10:14]))
	want := headerLen + keyLen + payloadLen + 4
	if keyLen < 0 || payloadLen < 0 || len(data) != want {
		return "", stats.Snapshot{}, &errCorrupt{"length mismatch"}
	}
	body := data[:want-4]
	sum := binary.LittleEndian.Uint32(data[want-4:])
	if crc32.Checksum(body, castTable) != sum {
		return "", stats.Snapshot{}, &errCorrupt{"checksum mismatch"}
	}
	key := string(data[headerLen : headerLen+keyLen])
	var snap stats.Snapshot
	if err := json.Unmarshal(data[headerLen+keyLen:want-4], &snap); err != nil {
		return "", stats.Snapshot{}, &errCorrupt{"payload: " + err.Error()}
	}
	return key, snap, nil
}
