package gpu

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// latencyPort answers every request after a fixed delay.
type latencyPort struct {
	sim     *event.Sim
	lat     event.Cycle
	arrived []mem.Request // value copies: the GPU recycles requests after Done
}

func (p *latencyPort) Submit(req *mem.Request) {
	p.arrived = append(p.arrived, *req)
	if req.Done != nil {
		p.sim.Schedule(p.lat, req.Done)
	}
}

func tinyConfig() Config {
	return Config{
		CUs: 2, SIMDsPerCU: 2, MaxWavesPerSIMD: 4,
		WavefrontWidth: 64, MLPLimit: 16, LaunchLatency: 100,
	}
}

func build(cfg Config, lat event.Cycle) (*GPU, *event.Sim, []*latencyPort) {
	sim := event.New()
	ports := make([]cache.Port, cfg.CUs)
	raw := make([]*latencyPort, cfg.CUs)
	for i := range ports {
		raw[i] = &latencyPort{sim: sim, lat: lat}
		ports[i] = raw[i]
	}
	return New(cfg, sim, ports), sim, raw
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CUs != 64 || cfg.SIMDsPerCU != 4 || cfg.MaxWavesPerSIMD != 10 || cfg.WavefrontWidth != 64 {
		t.Fatalf("DefaultConfig diverges from Table 1: %+v", cfg)
	}
}

func TestMemAccessLinesContiguous(t *testing.T) {
	a := MemAccess{Base: 0, Stride: 4, Lanes: 64, ElemBytes: 4}
	lines := a.Lines()
	if len(lines) != 4 {
		t.Fatalf("64 lanes × 4B contiguous = %d lines, want 4", len(lines))
	}
	for i, la := range lines {
		if la != mem.Addr(i*64) {
			t.Fatalf("lines = %v", lines)
		}
	}
}

func TestMemAccessLinesBroadcast(t *testing.T) {
	a := MemAccess{Base: 0x100, Stride: 0, Lanes: 64}
	if got := len(a.Lines()); got != 1 {
		t.Fatalf("broadcast lines = %d, want 1", got)
	}
}

func TestMemAccessLinesScattered(t *testing.T) {
	a := MemAccess{Base: 0, Stride: 256, Lanes: 16, ElemBytes: 4}
	if got := len(a.Lines()); got != 16 {
		t.Fatalf("scattered lines = %d, want 16", got)
	}
}

func TestMemAccessLinesDouble(t *testing.T) {
	a := MemAccess{Base: 0, Stride: 8, Lanes: 64, ElemBytes: 8}
	if got := len(a.Lines()); got != 8 {
		t.Fatalf("64 lanes × 8B = %d lines, want 8", got)
	}
}

func TestMemAccessLinesUnaligned(t *testing.T) {
	// A 4-byte access at the last byte-offset of a line spans two lines.
	a := MemAccess{Base: 62, Stride: 0, Lanes: 1, ElemBytes: 4}
	if got := len(a.Lines()); got != 2 {
		t.Fatalf("straddling access lines = %d, want 2", got)
	}
}

// Property: the number of unique lines never exceeds lane count times the
// per-lane maximum span, and is at least 1.
func TestPropertyLinesBounded(t *testing.T) {
	f := func(base uint32, stride int16, lanes uint8) bool {
		a := MemAccess{Base: mem.Addr(base), Stride: int64(stride), Lanes: int(lanes%64) + 1, ElemBytes: 4}
		n := len(a.Lines())
		return n >= 1 && n <= 2*a.Lanes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func simpleKernel(name string, wgs, waves int, prog func(wg, wave int) []Instr) Kernel {
	return Kernel{
		Name: name, Workgroups: wgs, WavesPerWG: waves,
		NewProgram: func(wg, wave int) Program { return NewSliceProgram(prog(wg, wave)) },
	}
}

func TestSingleWavefrontRuns(t *testing.T) {
	g, sim, ports := build(tinyConfig(), 50)
	k := simpleKernel("k", 1, 1, func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{PC: 1, Kind: mem.Load, Base: 0, Stride: 4, Lanes: 64},
			WaitCnt{Max: 0},
			Compute{VectorOps: 64, Cycles: 4},
			MemAccess{PC: 2, Kind: mem.Store, Base: 0x10000, Stride: 4, Lanes: 64},
		}
	})
	doneAt := event.Cycle(0)
	g.RunWorkload([]Kernel{k}, func() { doneAt = sim.Now() })
	sim.Run()
	if doneAt == 0 {
		t.Fatal("workload never finished")
	}
	if g.Stats().VectorOps != 64 {
		t.Fatalf("vector ops = %d, want 64", g.Stats().VectorOps)
	}
	if g.Stats().MemRequests != 8 {
		t.Fatalf("mem requests = %d, want 8 (4 load + 4 store lines)", g.Stats().MemRequests)
	}
	if g.Stats().WavesRetired != 1 {
		t.Fatalf("waves retired = %d", g.Stats().WavesRetired)
	}
	total := 0
	for _, p := range ports {
		total += len(p.arrived)
	}
	if total != 8 {
		t.Fatalf("ports saw %d requests, want 8", total)
	}
}

func TestWaitCntEnforcesDependency(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 200)
	var computeAt event.Cycle
	k := Kernel{
		Name: "dep", Workgroups: 1, WavesPerWG: 1,
		NewProgram: func(wg, wave int) Program {
			issued := 0
			return FuncProgram(func() (Instr, bool) {
				issued++
				switch issued {
				case 1:
					return MemAccess{Kind: mem.Load, Base: 0, Stride: 4, Lanes: 64}, true
				case 2:
					return WaitCnt{Max: 0}, true
				case 3:
					computeAt = sim.Now()
					return Compute{VectorOps: 1, Cycles: 1}, true
				}
				return nil, false
			})
		},
	}
	g.RunWorkload([]Kernel{k}, nil)
	sim.Run()
	if computeAt < 200 {
		t.Fatalf("compute fetched at %d, before the 200-cycle load returned", computeAt)
	}
}

func TestLatencyHidingAcrossWavefronts(t *testing.T) {
	// With many wavefronts, total time should be far less than
	// waves × memory latency: while one waits, others issue.
	cfg := tinyConfig()
	const lat = 400
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: mem.Addr(wave * 0x1000), Stride: 4, Lanes: 64},
			WaitCnt{Max: 0},
			Compute{VectorOps: 64, Cycles: 2},
		}
	}
	// 8 waves on one CU (1 workgroup).
	g, sim, _ := build(cfg, lat)
	g.RunWorkload([]Kernel{simpleKernel("lh", 1, 8, prog)}, nil)
	end := sim.Run()
	serial := event.Cycle(8 * lat)
	if end >= serial {
		t.Fatalf("no latency hiding: end=%d, serial=%d", end, serial)
	}
	if end < lat {
		t.Fatalf("end=%d below one memory latency %d", end, lat)
	}
}

func TestMLPLimitThrottles(t *testing.T) {
	cfg := tinyConfig()
	cfg.MLPLimit = 4
	g, sim, ports := build(cfg, 1000)
	// One wavefront issuing 3 × 4-line loads back to back: with
	// MLPLimit 4 the 2nd/3rd must wait for responses.
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: 0x0000, Stride: 4, Lanes: 64},
			MemAccess{Kind: mem.Load, Base: 0x1000, Stride: 4, Lanes: 64},
			MemAccess{Kind: mem.Load, Base: 0x2000, Stride: 4, Lanes: 64},
		}
	}
	g.RunWorkload([]Kernel{simpleKernel("mlp", 1, 1, prog)}, nil)
	end := sim.Run()
	if end < 2000 {
		t.Fatalf("end=%d; MLP throttling requires ≥2 serialized memory rounds", end)
	}
	if len(ports[0].arrived)+len(ports[1].arrived) != 12 {
		t.Fatal("wrong request count")
	}
}

func TestBarrierSynchronizesWorkgroup(t *testing.T) {
	cfg := tinyConfig()
	g, sim, _ := build(cfg, 300)
	var after []event.Cycle
	k := Kernel{
		Name: "bar", Workgroups: 1, WavesPerWG: 4,
		NewProgram: func(wg, wave int) Program {
			step := 0
			return FuncProgram(func() (Instr, bool) {
				step++
				switch step {
				case 1:
					if wave == 0 {
						// Wave 0 is slow: long memory wait.
						return MemAccess{Kind: mem.Load, Base: 0, Stride: 4, Lanes: 64}, true
					}
					return Compute{VectorOps: 1, Cycles: 1}, true
				case 2:
					if wave == 0 {
						return WaitCnt{Max: 0}, true
					}
					return Barrier{}, true
				case 3:
					if wave == 0 {
						return Barrier{}, true
					}
					after = append(after, sim.Now())
					return Compute{VectorOps: 1, Cycles: 1}, true
				case 4:
					if wave == 0 {
						after = append(after, sim.Now())
						return Compute{VectorOps: 1, Cycles: 1}, true
					}
				}
				return nil, false
			})
		},
	}
	g.RunWorkload([]Kernel{k}, nil)
	sim.Run()
	if len(after) != 4 {
		t.Fatalf("post-barrier count = %d, want 4", len(after))
	}
	for _, at := range after {
		if at < 300 {
			t.Fatalf("a wave passed the barrier at %d, before wave 0's 300-cycle load", at)
		}
	}
}

func TestMultiKernelBoundaryCallback(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 10)
	prog := func(wg, wave int) []Instr {
		return []Instr{Compute{VectorOps: 1, Cycles: 1}}
	}
	var boundaries []string
	g.OnKernelDone = func(k *Kernel, resume func()) {
		boundaries = append(boundaries, k.Name)
		sim.Schedule(5, resume)
	}
	ks := []Kernel{
		simpleKernel("k0", 1, 1, prog),
		simpleKernel("k1", 1, 1, prog),
		simpleKernel("k2", 1, 1, prog),
	}
	finished := false
	g.RunWorkload(ks, func() { finished = true })
	sim.Run()
	if !finished {
		t.Fatal("workload did not finish")
	}
	if len(boundaries) != 3 || boundaries[0] != "k0" || boundaries[2] != "k2" {
		t.Fatalf("boundaries = %v", boundaries)
	}
	if g.Stats().KernelsRun != 3 {
		t.Fatalf("kernels run = %d", g.Stats().KernelsRun)
	}
}

func TestManyWorkgroupsAllRetire(t *testing.T) {
	cfg := tinyConfig()
	g, sim, _ := build(cfg, 30)
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: mem.Addr(wg * 0x4000), Stride: 4, Lanes: 64},
			WaitCnt{Max: 0},
			MemAccess{Kind: mem.Store, Base: mem.Addr(0x100000 + wg*0x4000), Stride: 4, Lanes: 64},
		}
	}
	// 50 workgroups × 2 waves over 2 CUs with 8 slots each: requires
	// multiple dispatch rounds.
	g.RunWorkload([]Kernel{simpleKernel("many", 50, 2, prog)}, nil)
	sim.Run()
	if g.Stats().WavesRetired != 100 {
		t.Fatalf("waves retired = %d, want 100", g.Stats().WavesRetired)
	}
}

func TestDecorateAppliesPolicy(t *testing.T) {
	g, sim, ports := build(tinyConfig(), 10)
	g.Decorate = func(r *mem.Request) { r.Bypass = true }
	prog := func(wg, wave int) []Instr {
		return []Instr{MemAccess{Kind: mem.Load, Base: 0, Stride: 4, Lanes: 64}}
	}
	g.RunWorkload([]Kernel{simpleKernel("dec", 1, 1, prog)}, nil)
	sim.Run()
	for _, p := range ports {
		for _, r := range p.arrived {
			if !r.Bypass {
				t.Fatal("Decorate not applied")
			}
		}
	}
}

func TestEmptyWorkloadFinishes(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 10)
	finished := false
	g.RunWorkload(nil, func() { finished = true })
	sim.Run()
	if !finished {
		t.Fatal("empty workload did not finish")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, event.Cycle) {
		g, sim, _ := build(tinyConfig(), 75)
		prog := func(wg, wave int) []Instr {
			return []Instr{
				MemAccess{Kind: mem.Load, Base: mem.Addr(wg*0x2000 + wave*0x100), Stride: 4, Lanes: 64},
				WaitCnt{Max: 0},
				Compute{VectorOps: 64, Cycles: 3},
				MemAccess{Kind: mem.Store, Base: mem.Addr(0x80000 + wg*0x2000 + wave*0x100), Stride: 4, Lanes: 64},
			}
		}
		g.RunWorkload([]Kernel{simpleKernel("det", 20, 4, prog)}, nil)
		end := sim.Run()
		return g.Stats().MemRequests, end
	}
	r1, e1 := runOnce()
	r2, e2 := runOnce()
	if r1 != r2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", r1, e1, r2, e2)
	}
}

func TestBadKernelPanics(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("malformed kernel did not panic")
		}
	}()
	g.RunWorkload([]Kernel{{Name: "bad", Workgroups: 1, WavesPerWG: 0}}, nil)
	sim.Run()
}
