// Package gpu models the GPU side of the simulated APU: compute units
// with SIMD pipelines, wavefront contexts, a memory coalescer, LDS, and
// workgroup dispatch. The CU pipeline follows the paper's GCN3-based
// model: 4 SIMD units per CU, up to 10 wavefronts per SIMD, 64-wide
// wavefronts, single-cycle instruction issue (Table 1).
//
// Wavefronts execute instruction streams produced by workload generators
// (internal/workloads). Memory dependencies use GCN-style wait counts:
// vector memory instructions are non-blocking, and an explicit WaitCnt
// instruction stalls the wavefront until its outstanding line-request
// count drops to the given bound — exactly how s_waitcnt schedules memory
// latency hiding on real GCN hardware.
package gpu

import (
	"repro/internal/event"
	"repro/internal/mem"
)

// Instr is one wavefront instruction. The concrete types are Compute,
// MemAccess, LDS, WaitCnt and Barrier.
type Instr interface{ isInstr() }

// Compute models a run of vector ALU instructions.
type Compute struct {
	// VectorOps is the number of lane operations performed, counted
	// toward GVOPS (Figure 4).
	VectorOps uint64
	// Cycles is how long the wavefront occupies its SIMD slot.
	Cycles event.Cycle
}

func (Compute) isInstr() {}

// MemAccess models one vector memory instruction. Per-lane addresses are
// Base + lane*Stride, each ElemBytes wide; the coalescer reduces them to
// unique line requests.
type MemAccess struct {
	// PC identifies the static instruction for the PC-based predictor.
	PC uint64
	// Kind is Load or Store.
	Kind mem.Kind
	// Base is the address accessed by lane 0.
	Base mem.Addr
	// Stride is the byte distance between consecutive lanes' addresses.
	// Zero models a broadcast (all lanes read the same element).
	Stride int64
	// Lanes is the number of active lanes (≤ the wavefront width).
	Lanes int
	// ElemBytes is the per-lane access size (4 for float32, 8 for
	// float64). Zero defaults to 4.
	ElemBytes int
}

func (MemAccess) isInstr() {}

// Lines returns the unique cache lines the access touches, in lane order.
func (a MemAccess) Lines() []mem.Addr {
	return a.AppendLines(nil)
}

// AppendLines appends the unique cache lines the access touches to dst,
// in lane order, and returns the extended slice. The coalescer uses it
// with a per-wavefront scratch buffer so the steady-state issue path
// performs no allocation.
func (a MemAccess) AppendLines(dst []mem.Addr) []mem.Addr {
	eb := a.ElemBytes
	if eb == 0 {
		eb = 4
	}
	lanes := a.Lanes
	if lanes <= 0 {
		lanes = 1
	}
	out := dst
	start := len(out)
	var last mem.Addr
	haveLast := false
	for i := 0; i < lanes; i++ {
		addr := mem.Addr(int64(a.Base) + int64(i)*a.Stride)
		first := mem.LineAddr(addr)
		lastB := mem.LineAddr(addr + mem.Addr(eb) - 1)
		for la := first; la <= lastB; la += mem.LineSize {
			if haveLast && la == last {
				continue
			}
			// For non-monotonic strides, fall back to a scan of
			// lines already collected.
			dup := false
			if a.Stride < 0 {
				for _, prev := range out[start:] {
					if prev == la {
						dup = true
						break
					}
				}
			}
			if !dup {
				out = append(out, la)
				last = la
				haveLast = true
			}
		}
	}
	return out
}

// LDS models local-data-share (scratchpad) traffic: it occupies the
// wavefront without touching the memory hierarchy, which is how MI GEMM
// kernels keep most of their reuse out of the caches.
type LDS struct {
	Cycles event.Cycle
}

func (LDS) isInstr() {}

// WaitCnt blocks the wavefront until its outstanding line requests drop
// to Max or fewer (GCN s_waitcnt).
type WaitCnt struct {
	Max int
}

func (WaitCnt) isInstr() {}

// Barrier synchronizes all wavefronts of a workgroup (GCN s_barrier).
type Barrier struct{}

func (Barrier) isInstr() {}

// Program supplies a wavefront's instruction stream one instruction at a
// time, so large kernels never materialize full instruction slices.
type Program interface {
	// Next returns the next instruction, or ok=false at the end.
	Next() (ins Instr, ok bool)
}

// SliceProgram adapts a fixed instruction slice to Program.
type SliceProgram struct {
	instrs []Instr
	pos    int
}

// NewSliceProgram copies instrs into a Program.
func NewSliceProgram(instrs []Instr) *SliceProgram {
	return &SliceProgram{instrs: instrs}
}

// Next implements Program.
func (p *SliceProgram) Next() (Instr, bool) {
	if p.pos >= len(p.instrs) {
		return nil, false
	}
	ins := p.instrs[p.pos]
	p.pos++
	return ins, true
}

// FuncProgram adapts a generator function to Program; the function
// returns ok=false at stream end.
type FuncProgram func() (Instr, bool)

// Next implements Program.
func (f FuncProgram) Next() (Instr, bool) { return f() }

// Kernel describes one GPU kernel launch.
type Kernel struct {
	// Name labels the kernel in statistics and traces.
	Name string
	// Workgroups is the grid size in workgroups.
	Workgroups int
	// WavesPerWG is the number of wavefronts per workgroup.
	WavesPerWG int
	// NewProgram builds the instruction stream for one wavefront.
	NewProgram func(wg, wave int) Program
	// SystemSync marks a kernel whose completion is a system-scope
	// synchronization point: the coherence layer flushes all dirty L2
	// data afterward (in addition to the usual self-invalidation).
	SystemSync bool
}
