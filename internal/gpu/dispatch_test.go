package gpu

import (
	"testing"

	"repro/internal/mem"
)

// TestDispatchSpreadsAcrossCUs ensures small grids do not pile onto CU 0:
// the hardware dispatcher round-robins workgroups over compute units.
func TestDispatchSpreadsAcrossCUs(t *testing.T) {
	cfg := tinyConfig() // 2 CUs
	g, sim, ports := build(cfg, 20)
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: mem.Addr(wg * 0x1000), Stride: 4, Lanes: 64},
		}
	}
	// 2 workgroups, each far below one CU's capacity: they must land
	// on different CUs.
	g.RunWorkload([]Kernel{simpleKernel("spread", 2, 1, prog)}, nil)
	sim.Run()
	for i, p := range ports {
		if len(p.arrived) == 0 {
			t.Fatalf("CU %d received no traffic; dispatch did not spread", i)
		}
	}
}

// TestDispatchRoundRobinAcrossKernels ensures the round-robin pointer
// persists so consecutive tiny kernels alternate CUs.
func TestDispatchRoundRobinAcrossKernels(t *testing.T) {
	cfg := tinyConfig()
	g, sim, ports := build(cfg, 20)
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: 0, Stride: 4, Lanes: 64},
		}
	}
	ks := []Kernel{
		simpleKernel("k0", 1, 1, prog),
		simpleKernel("k1", 1, 1, prog),
	}
	g.RunWorkload(ks, nil)
	sim.Run()
	if len(ports[0].arrived) == 0 || len(ports[1].arrived) == 0 {
		t.Fatalf("kernels did not alternate CUs: %d/%d requests",
			len(ports[0].arrived), len(ports[1].arrived))
	}
}

// TestDispatchRefillsFreedSlots checks a long grid keeps all CUs busy as
// workgroups retire.
func TestDispatchRefillsFreedSlots(t *testing.T) {
	cfg := tinyConfig() // 2 CUs × 8 slots
	g, sim, ports := build(cfg, 40)
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: mem.Addr(wg * 0x1000), Stride: 4, Lanes: 64},
			WaitCnt{Max: 0},
		}
	}
	g.RunWorkload([]Kernel{simpleKernel("refill", 64, 4, prog)}, nil)
	sim.Run()
	if g.Stats().WavesRetired != 256 {
		t.Fatalf("retired %d waves, want 256", g.Stats().WavesRetired)
	}
	a, b := len(ports[0].arrived), len(ports[1].arrived)
	if a == 0 || b == 0 {
		t.Fatal("a CU idled for the whole kernel")
	}
	ratio := float64(a) / float64(a+b)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("imbalanced dispatch: %d vs %d", a, b)
	}
}
