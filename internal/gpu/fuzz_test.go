package gpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// FuzzGPUConfigValidate fuzzes Config over arbitrary parameter tuples
// and asserts the validate-then-build contract: either Validate rejects
// the configuration with an error, or New builds a working GPU that can
// run a one-workgroup kernel to completion — never a panic, never a
// hang. Construction is only exercised for configurations small enough
// to build in microseconds; Validate's verdict is asserted for all of
// them.
func FuzzGPUConfigValidate(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.CUs, d.SIMDsPerCU, d.MaxWavesPerSIMD, d.WavefrontWidth, d.MLPLimit,
		uint64(d.LaunchLatency), uint64(d.DispatchInterval))
	f.Add(0, 0, 0, 0, 0, uint64(0), uint64(0))
	f.Add(-1, 4, 10, 64, 32, uint64(1200), uint64(8))
	f.Add(1, 1, 1, 1, 1, uint64(0), uint64(0))
	f.Add(1<<20, 1<<20, 1<<20, 1<<20, 1<<30, uint64(1), uint64(1))
	f.Fuzz(func(t *testing.T, cus, simds, waves, width, mlp int, launch, dispatch uint64) {
		cfg := Config{
			CUs: cus, SIMDsPerCU: simds, MaxWavesPerSIMD: waves,
			WavefrontWidth: width, MLPLimit: mlp,
			LaunchLatency:    event.Cycle(launch),
			DispatchInterval: event.Cycle(dispatch),
		}
		err := cfg.Validate()
		if err != nil {
			if cus > 0 && cus <= MaxCUs &&
				simds > 0 && simds <= MaxSIMDsPerCU &&
				waves > 0 && waves <= MaxWavesPerSIMDCap &&
				width > 0 && width <= MaxWavefrontWidth &&
				mlp > 0 && mlp <= MaxMLPLimit &&
				cfg.LaunchLatency <= MaxLatencyCycles &&
				cfg.DispatchInterval <= MaxLatencyCycles {
				t.Fatalf("in-range config rejected: %v", err)
			}
			return
		}
		if cus <= 0 || simds <= 0 || waves <= 0 || width <= 0 || mlp <= 0 {
			t.Fatalf("non-positive config accepted: %+v", cfg)
		}
		// Keep one fuzz execution cheap: only construct and run GPUs
		// whose wave-slot count is modest. Validate has already passed
		// judgement on the rest. LaunchLatency and DispatchInterval are
		// NOT bounded here: any validated pacing must run (the event
		// engine jumps idle cycles, so huge latencies cost nothing), and
		// the two-kernel multi-workgroup workload below exercises both.
		if cus > 64 || simds*waves > 1024 {
			return
		}
		sim := event.New()
		ports := make([]cache.Port, cfg.CUs)
		for i := range ports {
			ports[i] = &quietPort{sim: sim, lat: 10}
		}
		g := New(cfg, sim, ports)
		finished := false
		// Two kernels of two workgroups each: the second launch pays
		// LaunchLatency and the second placement pays DispatchInterval,
		// so validated pacing values are genuinely scheduled.
		k := Kernel{
			Name: "fuzz", Workgroups: 2, WavesPerWG: 1,
			NewProgram: func(wg, wave int) Program {
				return NewSliceProgram([]Instr{
					MemAccess{Kind: mem.Load, Base: 0, Stride: 4, Lanes: width},
					WaitCnt{Max: 0},
					Compute{VectorOps: 1, Cycles: 1},
				})
			},
		}
		g.RunWorkload([]Kernel{k, k}, func() { finished = true })
		sim.Run()
		if !finished {
			t.Fatalf("valid config %+v deadlocked a trivial kernel", cfg)
		}
		if got := g.Stats(); got.WavesRetired != 4 || got.KernelsRun != 2 {
			t.Fatalf("valid config %+v miscounted: %+v", cfg, got)
		}
	})
}
