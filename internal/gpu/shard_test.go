package gpu

import (
	"testing"

	"repro/internal/event"
	"repro/internal/mem"
)

// runShardWorkload drives a multi-workgroup kernel so several shards
// accumulate stats, grow ready heaps, and arm their tickers.
func runShardWorkload(g *GPU, sim *event.Sim) {
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: mem.Addr(wg * 0x2000), Stride: 4, Lanes: 64},
			WaitCnt{Max: 0},
			Compute{VectorOps: 64, Cycles: 2},
		}
	}
	g.RunWorkload([]Kernel{simpleKernel("shards", 8, 2, prog)}, nil)
	sim.Run()
}

// TestStatsSumsShardSlabs checks the per-CU slabs hold the counters and
// GPU.Stats merges them: traffic spread over both CUs must show up in
// more than one slab, and the sum must equal the documented totals.
func TestStatsSumsShardSlabs(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 25)
	runShardWorkload(g, sim)
	st := g.Stats()
	if st.WavesRetired != 16 || st.KernelsRun != 1 {
		t.Fatalf("stats = %+v, want 16 waves / 1 kernel", st)
	}
	var slabSum Stats
	active := 0
	for _, c := range g.shards {
		if c.stats != (Stats{}) {
			active++
		}
		slabSum.Add(c.stats)
	}
	if active < 2 {
		t.Fatalf("only %d shard slab(s) saw traffic; dispatch should spread over both CUs", active)
	}
	slabSum.KernelsRun = st.KernelsRun // launch counter is GPU-level by design
	if slabSum != st {
		t.Fatalf("slab sum %+v != Stats() %+v", slabSum, st)
	}
}

// TestIdleShardDisarms checks the empty-shard path: once a shard's last
// wave retires, its stale wake-ups drain away and its ticker disarms, so
// an idle CU stops contributing events entirely.
func TestIdleShardDisarms(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 25)
	runShardWorkload(g, sim)
	for i, c := range g.shards {
		if c.live != 0 {
			t.Fatalf("shard %d still has %d live waves after the run", i, c.live)
		}
		if c.ready.Len() != 0 {
			t.Fatalf("shard %d kept %d stale ready entries", i, c.ready.Len())
		}
		if c.ready.Armed() {
			t.Fatalf("shard %d ticker still armed after going idle", i)
		}
		for si, s := range c.simds {
			if len(s.arms) != 0 {
				t.Fatalf("shard %d simd %d kept %d stale arms", i, si, len(s.arms))
			}
		}
	}
	// An idle GPU must be re-armable: a second workload runs fine.
	finished := false
	g.RunWorkload([]Kernel{simpleKernel("again", 2, 1, func(wg, wave int) []Instr {
		return []Instr{Compute{VectorOps: 1, Cycles: 1}}
	})}, func() { finished = true })
	sim.Run()
	if !finished {
		t.Fatal("re-armed GPU did not finish its second workload")
	}
}

// TestResetClearsShardState pins Reset's coverage of the sharded front
// end: slabs, occupancy counters, ready heaps, SIMD arm stacks, and
// tickers all return to their just-built state — even when Reset lands
// mid-run with wake-ups armed.
func TestResetClearsShardState(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 400)
	prog := func(wg, wave int) []Instr {
		return []Instr{
			MemAccess{Kind: mem.Load, Base: mem.Addr(wg * 0x2000), Stride: 4, Lanes: 64},
			WaitCnt{Max: 0},
			Compute{VectorOps: 64, Cycles: 2},
		}
	}
	g.RunWorkload([]Kernel{simpleKernel("mid", 8, 2, prog)}, nil)
	// Stop mid-run: waves are resident, wake-ups are armed.
	sim.RunUntil(40)
	sim.Reset()
	g.Reset()
	if st := g.Stats(); st != (Stats{}) {
		t.Fatalf("Stats() after Reset = %+v, want zero", st)
	}
	for i, c := range g.shards {
		if c.live != 0 || c.ready.Len() != 0 {
			t.Fatalf("shard %d not reset: live=%d ready=%d", i, c.live, c.ready.Len())
		}
		if c.ready.Armed() {
			t.Fatalf("shard %d ticker armed after Reset", i)
		}
		for si, s := range c.simds {
			if len(s.waves) != 0 || len(s.arms) != 0 || s.live != 0 || s.busyUntil != 0 || s.rr != 0 {
				t.Fatalf("shard %d simd %d not reset: %d waves, %d arms, live=%d", i, si, len(s.waves), len(s.arms), s.live)
			}
		}
	}
	// The reset GPU must run the same workload from scratch, identically.
	g.RunWorkload([]Kernel{simpleKernel("mid", 8, 2, prog)}, nil)
	sim.Run()
	if st := g.Stats(); st.WavesRetired != 16 {
		t.Fatalf("post-reset run retired %d waves, want 16", st.WavesRetired)
	}
}
