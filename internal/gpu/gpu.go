package gpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// Config parameterizes the GPU (Table 1 defaults via DefaultConfig).
type Config struct {
	// CUs is the number of compute units.
	CUs int
	// SIMDsPerCU is the number of SIMD units per CU.
	SIMDsPerCU int
	// MaxWavesPerSIMD bounds resident wavefronts per SIMD.
	MaxWavesPerSIMD int
	// WavefrontWidth is lanes per wavefront.
	WavefrontWidth int
	// MLPLimit caps outstanding line requests per wavefront; a memory
	// instruction whose lines would exceed it waits (models the vector
	// memory unit's request buffer).
	MLPLimit int
	// LaunchLatency is the host-side latency between kernels (launch,
	// driver and coherence-action overhead excluded).
	LaunchLatency event.Cycle
	// DispatchInterval is the pacing of the hardware workgroup
	// dispatcher: one workgroup is placed every DispatchInterval
	// cycles. Zero places all workgroups instantly (lockstep), which
	// overstates cross-workgroup request coalescing.
	DispatchInterval event.Cycle
}

// DefaultConfig returns the Table 1 GPU parameters.
func DefaultConfig() Config {
	return Config{
		CUs:              64,
		SIMDsPerCU:       4,
		MaxWavesPerSIMD:  10,
		WavefrontWidth:   64,
		MLPLimit:         32,
		LaunchLatency:    1200,
		DispatchInterval: 8,
	}
}

func (c *Config) validate() error {
	if c.CUs <= 0 || c.SIMDsPerCU <= 0 || c.MaxWavesPerSIMD <= 0 {
		return fmt.Errorf("gpu: CU/SIMD/wave counts must be positive: %+v", *c)
	}
	if c.WavefrontWidth <= 0 || c.MLPLimit <= 0 {
		return fmt.Errorf("gpu: WavefrontWidth and MLPLimit must be positive: %+v", *c)
	}
	return nil
}

// Stats aggregates GPU-side counters for one run.
type Stats struct {
	VectorOps    uint64
	MemRequests  uint64
	Instructions uint64
	WavesRetired uint64
	KernelsRun   uint64
	LDSAccesses  uint64
}

// GPU executes kernels against the memory hierarchy. Ports[i] is the
// memory-side port (normally the policy-wrapped L1) of CU i.
type GPU struct {
	cfg   Config
	sim   *event.Sim
	ports []cache.Port
	ids   mem.IDSource

	cus          []*cu
	waveSeq      int
	dispatchRR   int
	dispatchBusy bool
	dispatchFn   event.Func // dispatchOne, built once (paced re-arms)

	// Decorate, if non-nil, adjusts each line request before it enters
	// the hierarchy; the coherence layer uses it to apply the caching
	// policy (e.g. mark all traffic Bypass under Uncached).
	Decorate func(*mem.Request)

	// OnKernelDone, if non-nil, runs between a kernel's completion and
	// the next launch; the coherence layer performs kernel-boundary
	// invalidations/flushes in it and calls resume when finished.
	OnKernelDone func(k *Kernel, resume func())

	Stats Stats

	// run state
	kernels   []Kernel
	kernelIdx int
	wgNext    int
	wgDone    int
	current   *Kernel
	finished  func()

	// reqFree recycles line-request objects. Each pooledReq carries a
	// permanently attached Done closure, so the steady-state memory path
	// allocates neither a request nor a completion callback per line.
	reqFree []*pooledReq

	// wfFree and wgFree recycle wavefront contexts (with their coalescer
	// scratch buffers) and workgroup records, so steady-state dispatch
	// allocates only the workload's Program objects.
	wfFree []*wavefront
	wgFree []*workgroup
}

// pooledReq pairs a recyclable request with the wavefront it currently
// belongs to. req.Done is built once and survives recycling.
type pooledReq struct {
	req mem.Request
	wf  *wavefront
}

// getReq hands out a request object with its Done wired to complete().
func (g *GPU) getReq() *pooledReq {
	if n := len(g.reqFree); n > 0 {
		pr := g.reqFree[n-1]
		g.reqFree = g.reqFree[:n-1]
		return pr
	}
	pr := &pooledReq{}
	pr.req.Done = func() { g.complete(pr) }
	return pr
}

// complete handles a returning line request: the object goes back on the
// free list (the hierarchy has dropped every reference by the time Done
// fires), then the owning wavefront is notified.
func (g *GPU) complete(pr *pooledReq) {
	wf := pr.wf
	pr.wf = nil
	g.reqFree = append(g.reqFree, pr)
	wf.response()
}

// getWave hands out a zeroed wavefront context, reusing a recycled one
// (and its grown coalescing scratch) when available.
func (g *GPU) getWave() *wavefront {
	if n := len(g.wfFree); n > 0 {
		wf := g.wfFree[n-1]
		g.wfFree[n-1] = nil
		g.wfFree = g.wfFree[:n-1]
		return wf
	}
	return &wavefront{}
}

// putWave recycles a wavefront context, keeping its scratch buffer.
func (g *GPU) putWave(wf *wavefront) {
	buf := wf.linesBuf
	*wf = wavefront{linesBuf: buf[:0]}
	g.wfFree = append(g.wfFree, wf)
}

// getWG hands out a cleared workgroup record.
func (g *GPU) getWG() *workgroup {
	if n := len(g.wgFree); n > 0 {
		wg := g.wgFree[n-1]
		g.wgFree[n-1] = nil
		g.wgFree = g.wgFree[:n-1]
		return wg
	}
	return &workgroup{}
}

// putWG recycles a finished workgroup record, keeping its barrier-list
// capacity. Retired waves may still hold a pointer to it; they never
// read it again.
func (g *GPU) putWG(wg *workgroup) {
	wg.cu = nil
	wg.live = 0
	wg.atBarrier = 0
	wg.barWaves = wg.barWaves[:0]
	g.wgFree = append(g.wgFree, wg)
}

// New builds a GPU. ports must have one entry per CU.
func New(cfg Config, sim *event.Sim, ports []cache.Port) *GPU {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if len(ports) != cfg.CUs {
		panic(fmt.Sprintf("gpu: %d ports for %d CUs", len(ports), cfg.CUs))
	}
	g := &GPU{cfg: cfg, sim: sim, ports: ports}
	g.dispatchFn = g.dispatchOne
	g.cus = make([]*cu, cfg.CUs)
	for i := range g.cus {
		g.cus[i] = newCU(g, i)
	}
	return g
}

// SetPorts replaces the per-CU memory ports (e.g. to interpose a trace
// recorder). It must be called before RunWorkload; changing ports with
// requests in flight would misroute responses.
func (g *GPU) SetPorts(ports []cache.Port) {
	if len(ports) != g.cfg.CUs {
		panic(fmt.Sprintf("gpu: %d ports for %d CUs", len(ports), g.cfg.CUs))
	}
	if g.current != nil {
		panic("gpu: SetPorts while a kernel is running")
	}
	g.ports = ports
}

// RunWorkload executes kernels in order, invoking OnKernelDone between
// them, then calls finished.
func (g *GPU) RunWorkload(kernels []Kernel, finished func()) {
	if len(kernels) == 0 {
		if finished != nil {
			g.sim.Schedule(0, finished)
		}
		return
	}
	g.kernels = kernels
	g.kernelIdx = 0
	g.finished = finished
	g.launch()
}

func (g *GPU) launch() {
	k := &g.kernels[g.kernelIdx]
	if k.Workgroups <= 0 || k.WavesPerWG <= 0 || k.NewProgram == nil {
		panic(fmt.Sprintf("gpu: kernel %q malformed", k.Name))
	}
	waveSlots := g.cfg.SIMDsPerCU * g.cfg.MaxWavesPerSIMD
	if k.WavesPerWG > waveSlots {
		panic(fmt.Sprintf("gpu: kernel %q needs %d waves per WG, CU holds %d", k.Name, k.WavesPerWG, waveSlots))
	}
	g.current = k
	g.wgNext = 0
	g.wgDone = 0
	g.Stats.KernelsRun++
	g.dispatch()
}

// dispatch assigns pending workgroups to CUs with space, round-robin
// across CUs so concurrent workgroups spread over the whole GPU (as the
// hardware workgroup dispatcher does) instead of piling onto CU 0. With
// a nonzero DispatchInterval, placements are paced one per interval.
func (g *GPU) dispatch() {
	if g.dispatchBusy {
		return
	}
	g.dispatchOne()
}

// dispatchOne places a single workgroup if possible, then re-arms itself
// while work and capacity remain.
func (g *GPU) dispatchOne() {
	g.dispatchBusy = false
	k := g.current
	if k == nil || g.wgNext >= k.Workgroups {
		return
	}
	n := len(g.cus)
	for i := 0; i < n; i++ {
		c := g.cus[(g.dispatchRR+i)%n]
		if c.freeSlots() >= k.WavesPerWG {
			c.place(k, g.wgNext)
			g.wgNext++
			g.dispatchRR = (g.dispatchRR + i + 1) % n
			if g.wgNext < k.Workgroups {
				interval := g.cfg.DispatchInterval
				if interval == 0 {
					g.dispatchOne()
					return
				}
				g.dispatchBusy = true
				g.sim.Schedule(interval, g.dispatchFn)
			}
			return
		}
	}
	// No capacity: a retiring workgroup re-triggers dispatch.
}

// workgroupFinished is called by a CU when all waves of a WG retire.
func (g *GPU) workgroupFinished() {
	g.wgDone++
	k := g.current
	if g.wgDone == k.Workgroups {
		g.kernelFinished()
		return
	}
	g.dispatch()
}

func (g *GPU) kernelFinished() {
	k := g.current
	next := func() {
		g.kernelIdx++
		if g.kernelIdx >= len(g.kernels) {
			if g.finished != nil {
				g.finished()
			}
			return
		}
		g.sim.Schedule(g.cfg.LaunchLatency, g.launch)
	}
	if g.OnKernelDone != nil {
		g.OnKernelDone(k, next)
		return
	}
	next()
}

// ----- compute unit -----

type cu struct {
	g     *GPU
	id    int
	simds []*simd

	// sq defers this CU's line-request submits to its memory port: the
	// coalescer pushes one pooled request per line instead of scheduling
	// one closure per line (up to 64 per instruction).
	sq *event.Queue[*mem.Request]
}

func newCU(g *GPU, id int) *cu {
	c := &cu{g: g, id: id}
	// Deliver through g.ports at delivery time so SetPorts interposition
	// is honoured.
	c.sq = event.NewQueue(g.sim, func(r *mem.Request) { c.g.ports[c.id].Submit(r) })
	c.simds = make([]*simd, g.cfg.SIMDsPerCU)
	for i := range c.simds {
		s := &simd{cu: c}
		s.ticker = event.NewTicker(g.sim, s.tick)
		c.simds[i] = s
	}
	return c
}

func (c *cu) freeSlots() int {
	n := 0
	for _, s := range c.simds {
		n += c.g.cfg.MaxWavesPerSIMD - s.liveWaves()
	}
	return n
}

// place instantiates a workgroup's wavefronts on this CU, spreading them
// across SIMDs by free capacity.
func (c *cu) place(k *Kernel, wgID int) {
	wg := c.g.getWG()
	wg.cu = c
	wg.live = k.WavesPerWG
	for w := 0; w < k.WavesPerWG; w++ {
		// Pick the SIMD with the most free slots (ties: lowest id).
		best := -1
		bestFree := 0
		for i, s := range c.simds {
			free := c.g.cfg.MaxWavesPerSIMD - s.liveWaves()
			if free > bestFree {
				bestFree = free
				best = i
			}
		}
		if best == -1 {
			panic("gpu: place called without free slots")
		}
		s := c.simds[best]
		s.compact()
		c.g.waveSeq++
		wf := c.g.getWave()
		wf.id = c.g.waveSeq
		wf.wg = wg
		wf.simd = s
		wf.prog = k.NewProgram(wgID, w)
		wf.waitMax = -1
		s.waves = append(s.waves, wf)
		s.arm()
	}
}

// ----- SIMD unit -----

type simd struct {
	cu    *cu
	waves []*wavefront
	rr    int

	// ticker re-arms the issue attempt without allocating; busyUntil is
	// when the issue port frees after the last issued instruction.
	ticker    *event.Ticker
	busyUntil event.Cycle
}

// liveWaves counts resident, unretired wavefronts.
func (s *simd) liveWaves() int {
	n := 0
	for _, wf := range s.waves {
		if !wf.retired {
			n++
		}
	}
	return n
}

// arm schedules an issue attempt for the next cycle (or the cycle the
// issue port frees, whichever is later). Redundant arms coalesce in the
// ticker.
func (s *simd) arm() {
	t := s.cu.g.sim.Now() + 1
	if s.busyUntil > t {
		t = s.busyUntil
	}
	s.ticker.ArmAt(t)
}

// tick issues at most one instruction from a ready wavefront.
func (s *simd) tick() {
	now := s.cu.g.sim.Now()
	if now < s.busyUntil {
		// A stale ticker fire landed inside the issue-port occupancy of
		// the previous instruction; try again when the port frees.
		s.ticker.ArmAt(s.busyUntil)
		return
	}
	n := len(s.waves)
	if n == 0 {
		return
	}
	var nextWake event.Cycle
	var occupancy event.Cycle
	issued := false
	for i := 0; i < n; i++ {
		wf := s.waves[(s.rr+i)%n]
		ready, wakeAt := wf.readyState(now)
		if ready {
			s.rr = (s.rr + i + 1) % n
			occupancy = wf.issue()
			issued = true
			break
		}
		if wakeAt > now && (nextWake == 0 || wakeAt < nextWake) {
			nextWake = wakeAt
		}
	}
	s.compact()
	if len(s.waves) == 0 {
		return
	}
	if issued {
		// A vector ALU instruction occupies the SIMD issue port for
		// its full duration (GCN: 64 lanes over a 16-wide SIMD take 4
		// cycles); other instructions issue back to back — the next
		// issue attempt is at now+occupancy exactly, so one-cycle
		// instructions sustain one issue per cycle.
		if occupancy < 1 {
			occupancy = 1
		}
		s.busyUntil = now + occupancy
		s.ticker.ArmAt(s.busyUntil)
		return
	}
	if nextWake > now {
		s.ticker.ArmAt(nextWake)
	}
	// Otherwise all waves are blocked on memory or barriers; response
	// and barrier-release paths re-arm the SIMD.
}

// compact removes retired wavefronts, recycling their contexts.
func (s *simd) compact() {
	all := s.waves
	out := all[:0]
	for _, wf := range all {
		if !wf.retired {
			out = append(out, wf)
		} else {
			s.cu.g.putWave(wf)
		}
	}
	for i := len(out); i < len(all); i++ {
		all[i] = nil // drop stale duplicates of recycled waves
	}
	s.waves = out
	if s.rr >= len(s.waves) {
		s.rr = 0
	}
}

// ----- workgroup / wavefront -----

type workgroup struct {
	cu        *cu
	live      int // unretired waves
	atBarrier int
	barWaves  []*wavefront
}

type wavefront struct {
	id   int
	wg   *workgroup
	simd *simd
	prog Program

	cur      Instr
	curLines []mem.Addr // coalesced lines of cur when it is a MemAccess
	linesBuf []mem.Addr // backing storage for curLines, reused per fetch
	hasCur   bool

	outstanding int
	waitMax     int // ≥0: blocked until outstanding ≤ waitMax
	readyAt     event.Cycle
	atBarrier   bool
	draining    bool // program exhausted, waiting for outstanding=0
	retired     bool
}

// readyState reports whether the wavefront can issue now, and if it is
// only time-blocked, when it becomes ready.
//
// A satisfied waitMax is NOT cleared here: a readiness probe can fail
// for an unrelated reason (readyAt, MLP), and clearing the standing wait
// on a failed probe would make later memory responses spuriously re-arm
// a time-blocked SIMD. The wait clears only on actual issue.
func (wf *wavefront) readyState(now event.Cycle) (bool, event.Cycle) {
	if wf.retired || wf.draining || wf.atBarrier {
		return false, 0
	}
	if wf.waitMax >= 0 && wf.outstanding > wf.waitMax {
		return false, 0 // memory response will unblock
	}
	if wf.readyAt > now {
		return false, wf.readyAt
	}
	if !wf.hasCur {
		ins, ok := wf.prog.Next()
		if !ok {
			wf.draining = true
			// Retire as a separate event: retirement can trigger
			// workgroup dispatch, which mutates the wave list the
			// caller (simd.tick) is iterating.
			g := wf.simd.cu.g
			g.sim.Schedule(0, wf.maybeRetire)
			return false, 0
		}
		wf.cur = ins
		wf.hasCur = true
		wf.curLines = nil
		if ma, ok := ins.(MemAccess); ok {
			// Coalesce once at fetch into the wavefront's reusable
			// buffer; readiness checks and issue reuse the result.
			wf.linesBuf = ma.AppendLines(wf.linesBuf[:0])
			wf.curLines = wf.linesBuf
		}
	}
	// A memory access must fit under the MLP limit.
	if wf.curLines != nil {
		g := wf.simd.cu.g
		lines := len(wf.curLines)
		if wf.outstanding > 0 && wf.outstanding+lines > g.cfg.MLPLimit {
			wf.waitMax = g.cfg.MLPLimit - lines
			if wf.waitMax < 0 {
				wf.waitMax = 0
			}
			return false, 0
		}
	}
	wf.waitMax = -1 // the wait (if any) is consumed by this issue
	return true, 0
}

// issue executes the current instruction and returns how long it occupies
// the SIMD issue port.
func (wf *wavefront) issue() event.Cycle {
	g := wf.simd.cu.g
	now := g.sim.Now()
	g.Stats.Instructions++
	ins := wf.cur
	wf.hasCur = false

	switch v := ins.(type) {
	case Compute:
		g.Stats.VectorOps += v.VectorOps
		wf.readyAt = now + v.Cycles
		return v.Cycles
	case LDS:
		g.Stats.LDSAccesses++
		wf.readyAt = now + v.Cycles
		// LDS has its own pipe: the SIMD keeps issuing other waves.
		return 1
	case WaitCnt:
		if wf.outstanding > v.Max {
			wf.waitMax = v.Max
		}
		wf.readyAt = now
		return 1
	case Barrier:
		wf.atBarrier = true
		wg := wf.wg
		wg.atBarrier++
		wg.barWaves = append(wg.barWaves, wf)
		if wg.atBarrier == wg.live {
			for _, b := range wg.barWaves {
				b.atBarrier = false
				b.simd.arm()
			}
			wg.atBarrier = 0
			wg.barWaves = wg.barWaves[:0]
		}
		return 1
	case MemAccess:
		lines := wf.curLines
		wf.curLines = nil
		wf.outstanding += len(lines)
		wf.readyAt = now + event.Cycle(len(lines))
		c := wf.simd.cu
		for i, la := range lines {
			pr := g.getReq()
			pr.wf = wf
			req := &pr.req
			req.ID = g.ids.Next()
			req.PC = v.PC
			req.Line = la
			req.Kind = v.Kind
			req.CU = c.id
			req.Wavefront = wf.id
			req.Bypass = false
			if g.Decorate != nil {
				g.Decorate(req)
			}
			g.Stats.MemRequests++
			// One line enters the port per cycle, via the CU's pooled
			// delivery queue rather than one closure per line.
			c.sq.Push(event.Cycle(i), req)
		}
		// Address generation occupies the memory pipe, not the SIMD.
		return 1
	default:
		panic(fmt.Sprintf("gpu: unknown instruction %T", ins))
	}
}

// response handles one returning line request.
func (wf *wavefront) response() {
	wf.outstanding--
	if wf.outstanding < 0 {
		panic("gpu: negative outstanding count")
	}
	if wf.draining {
		wf.maybeRetire()
		return
	}
	if wf.waitMax >= 0 && wf.outstanding > wf.waitMax {
		return // still waiting for more responses
	}
	// The wave's wait (WaitCnt or MLP) is satisfied, or it had none:
	// give the SIMD an issue attempt.
	wf.simd.arm()
}

func (wf *wavefront) maybeRetire() {
	// The !draining guard also rejects a stale scheduled retire event
	// firing on a recycled-and-reused wavefront context: a wave placed
	// this cycle cannot have started draining yet.
	if wf.retired || !wf.draining || wf.outstanding > 0 {
		return
	}
	wf.retired = true
	// workgroupFinished below can synchronously dispatch a new
	// workgroup onto this SIMD, whose place() compacts and recycles wf;
	// keep the simd reference for the final arm.
	sd := wf.simd
	g := sd.cu.g
	g.Stats.WavesRetired++
	wg := wf.wg
	wg.live--
	if wg.atBarrier > 0 && wg.atBarrier == wg.live {
		// A retiring wave can release a barrier the rest of the
		// workgroup is waiting at (defensive; well-formed kernels
		// barrier before any wave exits).
		for _, b := range wg.barWaves {
			b.atBarrier = false
			b.simd.arm()
		}
		wg.atBarrier = 0
		wg.barWaves = wg.barWaves[:0]
	}
	if wg.live == 0 {
		g.putWG(wg)
		g.workgroupFinished()
	}
	sd.arm()
}

// Reset returns the GPU to the observable state of a freshly built one:
// statistics zeroed, request-id and wavefront sequences restarted,
// dispatch idle, resident wavefronts dropped and recycled. The object
// pools (line requests, wavefronts, workgroups) and their grown scratch
// buffers keep their capacity, so a reset GPU re-runs a workload without
// cold-start allocations. Call it together with the Sim's Reset; pooled
// requests that were in flight at reset time are abandoned to the
// garbage collector.
func (g *GPU) Reset() {
	g.Stats = Stats{}
	g.ids.Reset()
	g.waveSeq = 0
	g.dispatchRR = 0
	g.dispatchBusy = false
	g.kernels = nil
	g.kernelIdx = 0
	g.wgNext = 0
	g.wgDone = 0
	g.current = nil
	g.finished = nil
	for _, c := range g.cus {
		c.sq.Reset()
		for _, s := range c.simds {
			for i, wf := range s.waves {
				g.putWave(wf)
				s.waves[i] = nil
			}
			s.waves = s.waves[:0]
			s.rr = 0
			s.busyUntil = 0
			s.ticker.Reset()
		}
	}
}
