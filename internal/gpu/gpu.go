package gpu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// Config parameterizes the GPU (Table 1 defaults via DefaultConfig).
type Config struct {
	// CUs is the number of compute units.
	CUs int
	// SIMDsPerCU is the number of SIMD units per CU.
	SIMDsPerCU int
	// MaxWavesPerSIMD bounds resident wavefronts per SIMD.
	MaxWavesPerSIMD int
	// WavefrontWidth is lanes per wavefront.
	WavefrontWidth int
	// MLPLimit caps outstanding line requests per wavefront; a memory
	// instruction whose lines would exceed it waits (models the vector
	// memory unit's request buffer).
	MLPLimit int
	// LaunchLatency is the host-side latency between kernels (launch,
	// driver and coherence-action overhead excluded).
	LaunchLatency event.Cycle
	// DispatchInterval is the pacing of the hardware workgroup
	// dispatcher: one workgroup is placed every DispatchInterval
	// cycles. Zero places all workgroups instantly (lockstep), which
	// overstates cross-workgroup request coalescing.
	DispatchInterval event.Cycle
}

// DefaultConfig returns the Table 1 GPU parameters.
func DefaultConfig() Config {
	return Config{
		CUs:              64,
		SIMDsPerCU:       4,
		MaxWavesPerSIMD:  10,
		WavefrontWidth:   64,
		MLPLimit:         32,
		LaunchLatency:    1200,
		DispatchInterval: 8,
	}
}

// Sanity ceilings for Validate. They are far above any machine the
// paper models (Table 1 is 64 CUs × 4 SIMDs); their purpose is to turn
// absurd configurations — fuzzers, corrupted config files — into errors
// before New tries to allocate per-CU state for them.
const (
	MaxCUs             = 1 << 16
	MaxSIMDsPerCU      = 1 << 8
	MaxWavesPerSIMDCap = 1 << 12
	MaxWavefrontWidth  = 1 << 12
	MaxMLPLimit        = 1 << 20
	// MaxLatencyCycles bounds LaunchLatency and DispatchInterval: far
	// above any real pacing (≈2.7 simulated seconds at 1.6 GHz), but
	// small enough that launch/dispatch schedule arithmetic can never
	// wrap the uint64 cycle clock into a scheduling-in-the-past panic.
	MaxLatencyCycles = event.Cycle(1) << 32
)

// Validate reports configuration errors: non-positive counts, or counts
// beyond the sanity ceilings above. New panics on an invalid Config, so
// callers assembling one from user input should Validate first.
func (c *Config) Validate() error {
	if c.CUs <= 0 || c.SIMDsPerCU <= 0 || c.MaxWavesPerSIMD <= 0 {
		return fmt.Errorf("gpu: CU/SIMD/wave counts must be positive: %+v", *c)
	}
	if c.WavefrontWidth <= 0 || c.MLPLimit <= 0 {
		return fmt.Errorf("gpu: WavefrontWidth and MLPLimit must be positive: %+v", *c)
	}
	if c.CUs > MaxCUs || c.SIMDsPerCU > MaxSIMDsPerCU || c.MaxWavesPerSIMD > MaxWavesPerSIMDCap {
		return fmt.Errorf("gpu: CU/SIMD/wave counts beyond sanity ceilings (%d/%d/%d): %+v",
			MaxCUs, MaxSIMDsPerCU, MaxWavesPerSIMDCap, *c)
	}
	if c.WavefrontWidth > MaxWavefrontWidth || c.MLPLimit > MaxMLPLimit {
		return fmt.Errorf("gpu: WavefrontWidth/MLPLimit beyond sanity ceilings (%d/%d): %+v",
			MaxWavefrontWidth, MaxMLPLimit, *c)
	}
	if c.LaunchLatency > MaxLatencyCycles || c.DispatchInterval > MaxLatencyCycles {
		return fmt.Errorf("gpu: LaunchLatency/DispatchInterval beyond the %d-cycle ceiling: %+v",
			MaxLatencyCycles, *c)
	}
	return nil
}

// Stats aggregates GPU-side counters for one run. The live counters are
// sharded per compute unit (see shard); GPU.Stats sums the shards into
// one Stats value at snapshot time.
type Stats struct {
	VectorOps    uint64
	MemRequests  uint64
	Instructions uint64
	WavesRetired uint64
	KernelsRun   uint64
	LDSAccesses  uint64
}

// Add accumulates other into s. GPU.Stats uses it to merge the per-CU
// shard slabs; external aggregators (multi-GPU totals) can reuse it.
func (s *Stats) Add(other Stats) {
	s.VectorOps += other.VectorOps
	s.MemRequests += other.MemRequests
	s.Instructions += other.Instructions
	s.WavesRetired += other.WavesRetired
	s.KernelsRun += other.KernelsRun
	s.LDSAccesses += other.LDSAccesses
}

// GPU executes kernels against the memory hierarchy. Ports[i] is the
// memory-side port (normally the policy-wrapped L1) of CU i.
type GPU struct {
	cfg   Config
	sim   *event.Sim
	ports []cache.Port
	ids   mem.IDSource

	shards       []*shard
	waveSeq      int
	dispatchRR   int
	dispatchBusy bool
	dispatchFn   event.Func // dispatchOne, built once (paced re-arms)

	// Decorate, if non-nil, adjusts each line request before it enters
	// the hierarchy; the coherence layer uses it to apply the caching
	// policy (e.g. mark all traffic Bypass under Uncached).
	Decorate func(*mem.Request)

	// OnKernelDone, if non-nil, runs between a kernel's completion and
	// the next launch; the coherence layer performs kernel-boundary
	// invalidations/flushes in it and calls resume when finished.
	OnKernelDone func(k *Kernel, resume func())

	// kernelsRun counts launches; it is the one counter that belongs to
	// the GPU rather than a front-end shard.
	kernelsRun uint64

	// run state
	kernels   []Kernel
	kernelIdx int
	wgNext    int
	wgDone    int
	current   *Kernel
	finished  func()

	// reqFree recycles line-request objects. Each pooledReq carries a
	// permanently attached Done closure, so the steady-state memory path
	// allocates neither a request nor a completion callback per line.
	reqFree []*pooledReq

	// wfFree and wgFree recycle wavefront contexts (with their coalescer
	// scratch buffers) and workgroup records, so steady-state dispatch
	// allocates only the workload's Program objects.
	wfFree []*wavefront
	wgFree []*workgroup
}

// Stats sums the per-CU shard slabs and the GPU-level launch counter
// into one snapshot-time view. The issue path only ever touches its own
// shard's slab; nothing is aggregated until a caller asks.
func (g *GPU) Stats() Stats {
	out := Stats{KernelsRun: g.kernelsRun}
	for _, c := range g.shards {
		out.Add(c.stats)
	}
	return out
}

// pooledReq pairs a recyclable request with the wavefront it currently
// belongs to. req.Done is built once and survives recycling.
type pooledReq struct {
	req mem.Request
	wf  *wavefront
}

// getReq hands out a request object with its Done wired to complete().
func (g *GPU) getReq() *pooledReq {
	if n := len(g.reqFree); n > 0 {
		pr := g.reqFree[n-1]
		g.reqFree = g.reqFree[:n-1]
		return pr
	}
	pr := &pooledReq{}
	pr.req.Done = func() { g.complete(pr) }
	return pr
}

// complete handles a returning line request: the object goes back on the
// free list (the hierarchy has dropped every reference by the time Done
// fires), then the owning wavefront is notified.
func (g *GPU) complete(pr *pooledReq) {
	wf := pr.wf
	pr.wf = nil
	g.reqFree = append(g.reqFree, pr)
	wf.response()
}

// getWave hands out a zeroed wavefront context, reusing a recycled one
// (and its grown coalescing scratch) when available.
func (g *GPU) getWave() *wavefront {
	if n := len(g.wfFree); n > 0 {
		wf := g.wfFree[n-1]
		g.wfFree[n-1] = nil
		g.wfFree = g.wfFree[:n-1]
		return wf
	}
	return &wavefront{}
}

// putWave recycles a wavefront context, keeping its scratch buffer.
func (g *GPU) putWave(wf *wavefront) {
	buf := wf.linesBuf
	*wf = wavefront{linesBuf: buf[:0]}
	g.wfFree = append(g.wfFree, wf)
}

// getWG hands out a cleared workgroup record.
func (g *GPU) getWG() *workgroup {
	if n := len(g.wgFree); n > 0 {
		wg := g.wgFree[n-1]
		g.wgFree[n-1] = nil
		g.wgFree = g.wgFree[:n-1]
		return wg
	}
	return &workgroup{}
}

// putWG recycles a finished workgroup record, keeping its barrier-list
// capacity. Retired waves may still hold a pointer to it; they never
// read it again.
func (g *GPU) putWG(wg *workgroup) {
	wg.cu = nil
	wg.live = 0
	wg.atBarrier = 0
	wg.barWaves = wg.barWaves[:0]
	g.wgFree = append(g.wgFree, wg)
}

// New builds a GPU. ports must have one entry per CU.
func New(cfg Config, sim *event.Sim, ports []cache.Port) *GPU {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(ports) != cfg.CUs {
		panic(fmt.Sprintf("gpu: %d ports for %d CUs", len(ports), cfg.CUs))
	}
	g := &GPU{cfg: cfg, sim: sim, ports: ports}
	g.dispatchFn = g.dispatchOne
	g.shards = make([]*shard, cfg.CUs)
	for i := range g.shards {
		g.shards[i] = newShard(g, i)
	}
	return g
}

// SetPorts replaces the per-CU memory ports (e.g. to interpose a trace
// recorder). It must be called before RunWorkload; changing ports with
// requests in flight would misroute responses.
func (g *GPU) SetPorts(ports []cache.Port) {
	if len(ports) != g.cfg.CUs {
		panic(fmt.Sprintf("gpu: %d ports for %d CUs", len(ports), g.cfg.CUs))
	}
	if g.current != nil {
		panic("gpu: SetPorts while a kernel is running")
	}
	g.ports = ports
}

// RunWorkload executes kernels in order, invoking OnKernelDone between
// them, then calls finished.
func (g *GPU) RunWorkload(kernels []Kernel, finished func()) {
	if len(kernels) == 0 {
		// Direct call, not Schedule(0, ...): an empty workload has no
		// in-flight GPU work the completion could race with, so the
		// deferred hand-off bought nothing (batch-dispatch audit, PR 5).
		if finished != nil {
			finished()
		}
		return
	}
	g.kernels = kernels
	g.kernelIdx = 0
	g.finished = finished
	g.launch()
}

func (g *GPU) launch() {
	k := &g.kernels[g.kernelIdx]
	if k.Workgroups <= 0 || k.WavesPerWG <= 0 || k.NewProgram == nil {
		panic(fmt.Sprintf("gpu: kernel %q malformed", k.Name))
	}
	waveSlots := g.cfg.SIMDsPerCU * g.cfg.MaxWavesPerSIMD
	if k.WavesPerWG > waveSlots {
		panic(fmt.Sprintf("gpu: kernel %q needs %d waves per WG, CU holds %d", k.Name, k.WavesPerWG, waveSlots))
	}
	g.current = k
	g.wgNext = 0
	g.wgDone = 0
	g.kernelsRun++
	g.dispatch()
}

// dispatch assigns pending workgroups to CUs with space, round-robin
// across CUs so concurrent workgroups spread over the whole GPU (as the
// hardware workgroup dispatcher does) instead of piling onto CU 0. With
// a nonzero DispatchInterval, placements are paced one per interval.
func (g *GPU) dispatch() {
	if g.dispatchBusy {
		return
	}
	g.dispatchOne()
}

// dispatchOne places a single workgroup if possible, then re-arms itself
// while work and capacity remain. The per-shard occupancy counters make
// each capacity probe O(1), so a full-GPU scan is O(CUs) regardless of
// resident wave count.
func (g *GPU) dispatchOne() {
	g.dispatchBusy = false
	k := g.current
	if k == nil || g.wgNext >= k.Workgroups {
		return
	}
	n := len(g.shards)
	for i := 0; i < n; i++ {
		c := g.shards[(g.dispatchRR+i)%n]
		if c.freeSlots() >= k.WavesPerWG {
			c.place(k, g.wgNext)
			g.wgNext++
			g.dispatchRR = (g.dispatchRR + i + 1) % n
			if g.wgNext < k.Workgroups {
				interval := g.cfg.DispatchInterval
				if interval == 0 {
					g.dispatchOne()
					return
				}
				g.dispatchBusy = true
				g.sim.Schedule(interval, g.dispatchFn)
			}
			return
		}
	}
	// No capacity: a retiring workgroup re-triggers dispatch.
}

// workgroupFinished is called by a shard when all waves of a WG retire.
func (g *GPU) workgroupFinished() {
	g.wgDone++
	k := g.current
	if g.wgDone == k.Workgroups {
		g.kernelFinished()
		return
	}
	g.dispatch()
}

func (g *GPU) kernelFinished() {
	k := g.current
	next := func() {
		g.kernelIdx++
		if g.kernelIdx >= len(g.kernels) {
			if g.finished != nil {
				g.finished()
			}
			return
		}
		g.sim.Schedule(g.cfg.LaunchLatency, g.launch)
	}
	if g.OnKernelDone != nil {
		g.OnKernelDone(k, next)
		return
	}
	next()
}

// ----- front-end shard (one compute unit) -----

// shard is one compute unit's slice of the GPU front end: its SIMD
// pipelines, its pooled line-submit queue, its slab of the GPU
// statistics, and the wake-up machinery that drives instruction issue
// for this CU alone. Nothing on the issue path touches state outside
// the shard except the shared request-id source and the object pools,
// so an idle shard costs zero heap traffic and zero event-queue churn:
// its ticker is disarmed the moment its last wave retires.
type shard struct {
	g     *GPU
	id    int
	simds []*simd

	// live counts resident unretired waves across all SIMDs; freeSlots
	// and the empty-shard disarm read it in O(1).
	live int

	// stats is this shard's slab of the GPU counters. The issue path
	// increments only this slab; GPU.Stats sums the slabs once at
	// snapshot time.
	stats Stats

	// sq defers this shard's line-request submits to its memory port:
	// the coalescer pushes one pooled request per line instead of
	// scheduling one closure per line (up to 64 per instruction).
	sq *event.Queue[*mem.Request]

	// ready delivers pending SIMD wake-ups in (cycle, arrival) order
	// through one ticker, so a shard schedules at most one issue event
	// per cycle no matter how many of its SIMDs are due. Each entry
	// corresponds 1:1 to an accepted arm on the owning simd's arms
	// stack, which preserves the exact per-SIMD tick times of the
	// unsharded front end.
	ready *event.Queue[*simd]
}

func newShard(g *GPU, id int) *shard {
	c := &shard{g: g, id: id}
	// Deliver through g.ports at delivery time so SetPorts interposition
	// is honoured.
	c.sq = event.NewQueue(g.sim, func(r *mem.Request) { c.g.ports[c.id].Submit(r) })
	c.ready = event.NewQueue(g.sim, func(s *simd) { s.fire() })
	c.simds = make([]*simd, g.cfg.SIMDsPerCU)
	for i := range c.simds {
		c.simds[i] = &simd{cu: c}
	}
	return c
}

func (c *shard) freeSlots() int {
	return c.g.cfg.SIMDsPerCU*c.g.cfg.MaxWavesPerSIMD - c.live
}

// disarm sheds all pending wake-ups: the ready queue empties, the SIMD
// arm stacks clear, and outstanding drain fires become no-ops — an
// idle CU schedules nothing until dispatch places work on it again.
// The retired waves still resident are recycled here — the per-SIMD
// ticks that would have compacted them are exactly the ones being
// shed. Called when the shard's last wave retires; once live is zero
// nothing can arm a SIMD except a future placement, which re-arms the
// queue normally.
func (c *shard) disarm() {
	c.ready.Disarm()
	for _, s := range c.simds {
		s.arms = s.arms[:0]
		s.compact()
	}
}

// place instantiates a workgroup's wavefronts on this shard, spreading
// them across SIMDs by free capacity.
func (c *shard) place(k *Kernel, wgID int) {
	wg := c.g.getWG()
	wg.cu = c
	wg.live = k.WavesPerWG
	for w := 0; w < k.WavesPerWG; w++ {
		// Pick the SIMD with the most free slots (ties: lowest id).
		best := -1
		bestFree := 0
		for i, s := range c.simds {
			free := c.g.cfg.MaxWavesPerSIMD - s.live
			if free > bestFree {
				bestFree = free
				best = i
			}
		}
		if best == -1 {
			panic("gpu: place called without free slots")
		}
		s := c.simds[best]
		s.compact()
		c.g.waveSeq++
		wf := c.g.getWave()
		wf.id = c.g.waveSeq
		wf.wg = wg
		wf.simd = s
		wf.prog = k.NewProgram(wgID, w)
		wf.waitMax = -1
		s.waves = append(s.waves, wf)
		s.live++
		c.live++
		s.arm()
	}
}

// ----- SIMD unit -----

type simd struct {
	cu    *shard
	waves []*wavefront
	rr    int

	// live counts resident unretired waves (placement balancing and the
	// shard occupancy counter derive from it).
	live int

	// arms is this SIMD's strictly decreasing stack of pending wake-up
	// cycles — the same discipline event.Ticker uses, except the fires
	// live in the owning shard's ready heap so the whole CU needs only
	// one scheduled event per cycle. busyUntil is when the issue port
	// frees after the last issued instruction.
	arms      []event.Cycle
	busyUntil event.Cycle
}

// arm schedules an issue attempt for the next cycle (or the cycle the
// issue port frees, whichever is later). Redundant arms coalesce in the
// arms stack.
func (s *simd) arm() {
	t := s.cu.g.sim.Now() + 1
	if s.busyUntil > t {
		t = s.busyUntil
	}
	s.armAt(t)
}

// armAt requests a tick at cycle at (clamped to now), coalescing into
// an earlier-or-equal pending wake-up exactly as a dedicated
// event.Ticker would.
func (s *simd) armAt(at event.Cycle) {
	if now := s.cu.g.sim.Now(); at < now {
		at = now
	}
	if n := len(s.arms); n > 0 && s.arms[n-1] <= at {
		return
	}
	s.arms = append(s.arms, at)
	s.cu.ready.PushAt(at, s)
}

// fire consumes the earliest pending wake-up and runs the issue tick;
// the owning shard calls it when the matching ready-heap entry pops.
func (s *simd) fire() {
	if n := len(s.arms); n > 0 {
		s.arms = s.arms[:n-1]
	}
	s.tick()
}

// tick issues at most one instruction from a ready wavefront.
func (s *simd) tick() {
	now := s.cu.g.sim.Now()
	if now < s.busyUntil {
		// A stale wake-up landed inside the issue-port occupancy of
		// the previous instruction; try again when the port frees.
		s.armAt(s.busyUntil)
		return
	}
	n := len(s.waves)
	if n == 0 {
		return
	}
	var nextWake event.Cycle
	var occupancy event.Cycle
	issued := false
	for i := 0; i < n; i++ {
		wf := s.waves[(s.rr+i)%n]
		ready, wakeAt := wf.readyState(now)
		if ready {
			s.rr = (s.rr + i + 1) % n
			occupancy = wf.issue()
			issued = true
			break
		}
		if wakeAt > now && (nextWake == 0 || wakeAt < nextWake) {
			nextWake = wakeAt
		}
	}
	s.compact()
	if len(s.waves) == 0 {
		return
	}
	if issued {
		// A vector ALU instruction occupies the SIMD issue port for
		// its full duration (GCN: 64 lanes over a 16-wide SIMD take 4
		// cycles); other instructions issue back to back — the next
		// issue attempt is at now+occupancy exactly, so one-cycle
		// instructions sustain one issue per cycle.
		if occupancy < 1 {
			occupancy = 1
		}
		s.busyUntil = now + occupancy
		s.armAt(s.busyUntil)
		return
	}
	if nextWake > now {
		s.armAt(nextWake)
	}
	// Otherwise all waves are blocked on memory or barriers; response
	// and barrier-release paths re-arm the SIMD.
}

// compact removes retired wavefronts, recycling their contexts.
func (s *simd) compact() {
	all := s.waves
	out := all[:0]
	for _, wf := range all {
		if !wf.retired {
			out = append(out, wf)
		} else {
			s.cu.g.putWave(wf)
		}
	}
	for i := len(out); i < len(all); i++ {
		all[i] = nil // drop stale duplicates of recycled waves
	}
	s.waves = out
	if s.rr >= len(s.waves) {
		s.rr = 0
	}
}

// ----- workgroup / wavefront -----

type workgroup struct {
	cu        *shard
	live      int // unretired waves
	atBarrier int
	barWaves  []*wavefront
}

type wavefront struct {
	id   int
	wg   *workgroup
	simd *simd
	prog Program

	cur      Instr
	curLines []mem.Addr // coalesced lines of cur when it is a MemAccess
	linesBuf []mem.Addr // backing storage for curLines, reused per fetch
	hasCur   bool

	outstanding int
	waitMax     int // ≥0: blocked until outstanding ≤ waitMax
	readyAt     event.Cycle
	atBarrier   bool
	draining    bool // program exhausted, waiting for outstanding=0
	retired     bool
}

// readyState reports whether the wavefront can issue now, and if it is
// only time-blocked, when it becomes ready.
//
// A satisfied waitMax is NOT cleared here: a readiness probe can fail
// for an unrelated reason (readyAt, MLP), and clearing the standing wait
// on a failed probe would make later memory responses spuriously re-arm
// a time-blocked SIMD. The wait clears only on actual issue.
func (wf *wavefront) readyState(now event.Cycle) (bool, event.Cycle) {
	if wf.retired || wf.draining || wf.atBarrier {
		return false, 0
	}
	if wf.waitMax >= 0 && wf.outstanding > wf.waitMax {
		return false, 0 // memory response will unblock
	}
	if wf.readyAt > now {
		return false, wf.readyAt
	}
	if !wf.hasCur {
		ins, ok := wf.prog.Next()
		if !ok {
			wf.draining = true
			// Retire as a separate event: retirement can trigger
			// workgroup dispatch, which mutates the wave list the
			// caller (simd.tick) is iterating. Batch dispatch does not
			// make this Schedule(0, ...) redundant — the deferral is a
			// re-entrancy guard, not a hand-off.
			g := wf.simd.cu.g
			g.sim.Schedule(0, wf.maybeRetire)
			return false, 0
		}
		wf.cur = ins
		wf.hasCur = true
		wf.curLines = nil
		if ma, ok := ins.(MemAccess); ok {
			// Coalesce once at fetch into the wavefront's reusable
			// buffer; readiness checks and issue reuse the result.
			wf.linesBuf = ma.AppendLines(wf.linesBuf[:0])
			wf.curLines = wf.linesBuf
		}
	}
	// A memory access must fit under the MLP limit.
	if wf.curLines != nil {
		g := wf.simd.cu.g
		lines := len(wf.curLines)
		if wf.outstanding > 0 && wf.outstanding+lines > g.cfg.MLPLimit {
			wf.waitMax = g.cfg.MLPLimit - lines
			if wf.waitMax < 0 {
				wf.waitMax = 0
			}
			return false, 0
		}
	}
	wf.waitMax = -1 // the wait (if any) is consumed by this issue
	return true, 0
}

// issue executes the current instruction and returns how long it occupies
// the SIMD issue port.
func (wf *wavefront) issue() event.Cycle {
	c := wf.simd.cu
	g := c.g
	now := g.sim.Now()
	c.stats.Instructions++
	ins := wf.cur
	wf.hasCur = false

	switch v := ins.(type) {
	case Compute:
		c.stats.VectorOps += v.VectorOps
		wf.readyAt = now + v.Cycles
		return v.Cycles
	case LDS:
		c.stats.LDSAccesses++
		wf.readyAt = now + v.Cycles
		// LDS has its own pipe: the SIMD keeps issuing other waves.
		return 1
	case WaitCnt:
		if wf.outstanding > v.Max {
			wf.waitMax = v.Max
		}
		wf.readyAt = now
		return 1
	case Barrier:
		wf.atBarrier = true
		wg := wf.wg
		wg.atBarrier++
		wg.barWaves = append(wg.barWaves, wf)
		if wg.atBarrier == wg.live {
			for _, b := range wg.barWaves {
				b.atBarrier = false
				b.simd.arm()
			}
			wg.atBarrier = 0
			wg.barWaves = wg.barWaves[:0]
		}
		return 1
	case MemAccess:
		lines := wf.curLines
		wf.curLines = nil
		wf.outstanding += len(lines)
		wf.readyAt = now + event.Cycle(len(lines))
		for i, la := range lines {
			pr := g.getReq()
			pr.wf = wf
			req := &pr.req
			req.ID = g.ids.Next()
			req.PC = v.PC
			req.Line = la
			req.Kind = v.Kind
			req.CU = c.id
			req.Wavefront = wf.id
			req.Bypass = false
			if g.Decorate != nil {
				g.Decorate(req)
			}
			c.stats.MemRequests++
			// One line enters the port per cycle, via the shard's
			// pooled delivery queue rather than one closure per line.
			c.sq.Push(event.Cycle(i), req)
		}
		// Address generation occupies the memory pipe, not the SIMD.
		return 1
	default:
		panic(fmt.Sprintf("gpu: unknown instruction %T", ins))
	}
}

// response handles one returning line request.
func (wf *wavefront) response() {
	wf.outstanding--
	if wf.outstanding < 0 {
		panic("gpu: negative outstanding count")
	}
	if wf.draining {
		wf.maybeRetire()
		return
	}
	if wf.waitMax >= 0 && wf.outstanding > wf.waitMax {
		return // still waiting for more responses
	}
	// The wave's wait (WaitCnt or MLP) is satisfied, or it had none:
	// give the SIMD an issue attempt.
	wf.simd.arm()
}

func (wf *wavefront) maybeRetire() {
	// The !draining guard also rejects a stale scheduled retire event
	// firing on a recycled-and-reused wavefront context: a wave placed
	// this cycle cannot have started draining yet.
	if wf.retired || !wf.draining || wf.outstanding > 0 {
		return
	}
	wf.retired = true
	// workgroupFinished below can synchronously dispatch a new
	// workgroup onto this SIMD, whose place() compacts and recycles wf;
	// keep the simd reference for the final arm.
	sd := wf.simd
	c := sd.cu
	g := c.g
	c.stats.WavesRetired++
	sd.live--
	c.live--
	wg := wf.wg
	wg.live--
	if wg.atBarrier > 0 && wg.atBarrier == wg.live {
		// A retiring wave can release a barrier the rest of the
		// workgroup is waiting at (defensive; well-formed kernels
		// barrier before any wave exits).
		for _, b := range wg.barWaves {
			b.atBarrier = false
			b.simd.arm()
		}
		wg.atBarrier = 0
		wg.barWaves = wg.barWaves[:0]
	}
	if wg.live == 0 {
		g.putWG(wg)
		g.workgroupFinished()
	}
	if c.live == 0 {
		// workgroupFinished's dispatch placed nothing here: the shard
		// is idle — the issue attempt a retire normally grants would be
		// a no-op, so shed all pending wake-ups until new work arrives.
		c.disarm()
		return
	}
	sd.arm()
}

// Reset returns the GPU to the observable state of a freshly built one:
// statistics zeroed (every shard slab included), request-id and
// wavefront sequences restarted, dispatch idle, resident wavefronts
// dropped and recycled, shard ready heaps emptied and tickers disarmed.
// The object pools (line requests, wavefronts, workgroups) and their
// grown scratch buffers keep their capacity, so a reset GPU re-runs a
// workload without cold-start allocations. Call it together with the
// Sim's Reset; pooled requests that were in flight at reset time are
// abandoned to the garbage collector.
func (g *GPU) Reset() {
	g.kernelsRun = 0
	g.ids.Reset()
	g.waveSeq = 0
	g.dispatchRR = 0
	g.dispatchBusy = false
	g.kernels = nil
	g.kernelIdx = 0
	g.wgNext = 0
	g.wgDone = 0
	g.current = nil
	g.finished = nil
	for _, c := range g.shards {
		c.stats = Stats{}
		c.live = 0
		c.ready.Reset()
		c.sq.Reset()
		for _, s := range c.simds {
			for i, wf := range s.waves {
				g.putWave(wf)
				s.waves[i] = nil
			}
			s.waves = s.waves[:0]
			s.rr = 0
			s.live = 0
			s.busyUntil = 0
			s.arms = s.arms[:0]
		}
	}
}
