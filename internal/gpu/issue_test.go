package gpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/event"
	"repro/internal/mem"
)

// TestBackToBackComputeIssueRate is the regression test for the SIMD
// issue-rate off-by-one: the post-issue re-arm used to add an extra
// cycle, so one-cycle instructions issued every 2 cycles (100 ops
// retired at cycle 201). Back-to-back one-cycle compute ops must issue
// 1 cycle apart.
func TestBackToBackComputeIssueRate(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 10)
	const ops = 100
	instrs := make([]Instr, ops)
	for i := range instrs {
		instrs[i] = Compute{VectorOps: 1, Cycles: 1}
	}
	g.RunWorkload([]Kernel{simpleKernel("b2b", 1, 1, func(wg, wave int) []Instr {
		return instrs
	})}, nil)
	end := sim.Run()
	if end > ops+5 {
		t.Fatalf("100 one-cycle compute ops finished at cycle %d, want ≤ %d (1 issue/cycle)", end, ops+5)
	}
	if g.Stats().Instructions != ops {
		t.Fatalf("instructions = %d, want %d", g.Stats().Instructions, ops)
	}
}

// TestMultiCycleComputeOccupancy checks the other side of the fix: a
// Cycles=4 vector instruction must hold the issue port 4 cycles, not 5.
func TestMultiCycleComputeOccupancy(t *testing.T) {
	g, sim, _ := build(tinyConfig(), 10)
	const ops, cyc = 25, 4
	instrs := make([]Instr, ops)
	for i := range instrs {
		instrs[i] = Compute{VectorOps: 1, Cycles: cyc}
	}
	g.RunWorkload([]Kernel{simpleKernel("occ", 1, 1, func(wg, wave int) []Instr {
		return instrs
	})}, nil)
	end := sim.Run()
	if end > ops*cyc+5 {
		t.Fatalf("%d four-cycle ops finished at cycle %d, want ≤ %d", ops, end, ops*cyc+5)
	}
	if end < ops*cyc {
		t.Fatalf("%d four-cycle ops finished at cycle %d, below the %d-cycle port occupancy floor", ops, end, ops*cyc)
	}
}

// TestReadyStateProbeKeepsWaitMax is the regression test for the
// waitMax-clearing bug: a readiness probe that passes the wait-count
// gate but fails for another reason (here: time-blocked on readyAt)
// must not clear the standing wait. Only an actual issue consumes it.
func TestReadyStateProbeKeepsWaitMax(t *testing.T) {
	wf := &wavefront{
		waitMax:     2,
		outstanding: 1,
		readyAt:     10,
		hasCur:      true,
		cur:         Compute{VectorOps: 1, Cycles: 1},
	}
	ready, wakeAt := wf.readyState(5)
	if ready {
		t.Fatal("time-blocked wavefront reported ready")
	}
	if wakeAt != 10 {
		t.Fatalf("wakeAt = %d, want 10", wakeAt)
	}
	if wf.waitMax != 2 {
		t.Fatalf("failed probe cleared waitMax to %d, want 2 retained", wf.waitMax)
	}
	// Once genuinely ready, the issue-side probe consumes the wait.
	ready, _ = wf.readyState(10)
	if !ready {
		t.Fatal("wavefront not ready at readyAt")
	}
	if wf.waitMax != -1 {
		t.Fatalf("successful probe left waitMax = %d, want -1", wf.waitMax)
	}
}

// quietPort answers requests after a fixed delay without recording them,
// so steady-state allocation measurements see only the simulator.
type quietPort struct {
	sim *event.Sim
	lat event.Cycle
}

func (p *quietPort) Submit(req *mem.Request) {
	if req.Done != nil {
		p.sim.Schedule(p.lat, req.Done)
	}
}

// loopProgram repeats a pre-boxed instruction slice forever, so the
// program side of the measurement allocates nothing per instruction.
type loopProgram struct {
	instrs []Instr
	i      int
}

func (p *loopProgram) Next() (Instr, bool) {
	ins := p.instrs[p.i]
	p.i++
	if p.i == len(p.instrs) {
		p.i = 0
	}
	return ins, true
}

// TestSteadyStateIssuePathAllocationFree pins the zero-allocation
// contract of the GPU front end: with request objects pooled, line
// coalescing reusing the wavefront's scratch buffer, and per-line
// submits going through the CU's delivery queue, a steady-state mix of
// memory and compute instructions must not allocate at all.
func TestSteadyStateIssuePathAllocationFree(t *testing.T) {
	cfg := Config{
		CUs: 1, SIMDsPerCU: 1, MaxWavesPerSIMD: 2,
		WavefrontWidth: 64, MLPLimit: 8, LaunchLatency: 10,
	}
	sim := event.New()
	g := New(cfg, sim, []cache.Port{&quietPort{sim: sim, lat: 25}})
	prog := &loopProgram{instrs: []Instr{
		MemAccess{PC: 1, Kind: mem.Load, Base: 0, Stride: 4, Lanes: 64},
		WaitCnt{Max: 0},
		Compute{VectorOps: 64, Cycles: 2},
		MemAccess{PC: 2, Kind: mem.Store, Base: 0x10000, Stride: 4, Lanes: 64},
	}}
	g.RunWorkload([]Kernel{{
		Name: "steady", Workgroups: 1, WavesPerWG: 1,
		NewProgram: func(wg, wave int) Program { return prog },
	}}, nil)

	// Warm up: grow the request pool, queue heaps, and event heap to
	// their steady-state sizes.
	sim.RunUntil(sim.Now() + 20000)
	allocs := testing.AllocsPerRun(10, func() {
		sim.RunUntil(sim.Now() + 2000)
	})
	if allocs != 0 {
		t.Fatalf("steady-state issue path allocates %v/op, want 0", allocs)
	}
	if g.Stats().MemRequests == 0 {
		t.Fatal("workload issued no memory requests")
	}
}
