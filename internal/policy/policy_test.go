package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestPredictorColdCaches(t *testing.T) {
	p := NewPCPredictor(DefaultPredictorConfig())
	if p.ShouldBypass(0x400, mem.Load) {
		t.Fatal("cold predictor must favor caching")
	}
}

func TestPredictorLearnsDeadPC(t *testing.T) {
	p := NewPCPredictor(DefaultPredictorConfig())
	const pc = 0x1234
	for i := 0; i < 10; i++ {
		p.OnEvict(pc, false)
	}
	if !p.ShouldBypass(pc, mem.Load) {
		t.Fatal("predictor failed to learn a streaming PC")
	}
}

func TestPredictorLearnsReusePC(t *testing.T) {
	p := NewPCPredictor(DefaultPredictorConfig())
	const pc = 0x5678
	for i := 0; i < 10; i++ {
		p.OnEvict(pc, false)
	}
	for i := 0; i < 10; i++ {
		p.OnHit(pc)
	}
	if p.ShouldBypass(pc, mem.Load) {
		t.Fatal("predictor failed to recover after observing reuse")
	}
}

func TestPredictorReusedEvictionIsPositive(t *testing.T) {
	p := NewPCPredictor(DefaultPredictorConfig())
	const pc = 0x42
	for i := 0; i < 3; i++ {
		p.OnEvict(pc, false)
	}
	for i := 0; i < 5; i++ {
		p.OnEvict(pc, true)
	}
	if p.ShouldBypass(pc, mem.Load) {
		t.Fatal("reused evictions must count as reuse evidence")
	}
}

func TestPredictorCountersSaturate(t *testing.T) {
	cfg := DefaultPredictorConfig()
	p := NewPCPredictor(cfg)
	const pc = 7
	for i := 0; i < 100; i++ {
		p.OnHit(pc)
	}
	if p.Counter(pc) != cfg.Max {
		t.Fatalf("counter = %d, want saturated %d", p.Counter(pc), cfg.Max)
	}
	for i := 0; i < 100; i++ {
		p.OnEvict(pc, false)
	}
	if p.Counter(pc) != 0 {
		t.Fatalf("counter = %d, want floor 0", p.Counter(pc))
	}
}

func TestPredictorStats(t *testing.T) {
	p := NewPCPredictor(DefaultPredictorConfig())
	p.OnEvict(1, false)
	p.OnEvict(1, false)
	p.OnEvict(1, false)
	p.ShouldBypass(1, mem.Load)
	p.ShouldBypass(2, mem.Load)
	if p.Lookups != 2 {
		t.Fatalf("lookups = %d", p.Lookups)
	}
	if p.BypassHints != 1 {
		t.Fatalf("bypass hints = %d", p.BypassHints)
	}
}

func TestPredictorBadConfigPanics(t *testing.T) {
	bad := []PredictorConfig{
		{Entries: 0, Max: 7, Threshold: 2, Initial: 3},
		{Entries: 3, Max: 7, Threshold: 2, Initial: 3},
		{Entries: 8, Max: 0, Threshold: 0, Initial: 0},
		{Entries: 8, Max: 7, Threshold: 8, Initial: 3},
		{Entries: 8, Max: 7, Threshold: 2, Initial: 9},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			NewPCPredictor(cfg)
		}()
	}
}

// Property: counters stay within [0, Max] for any operation sequence.
func TestPropertyPredictorBounds(t *testing.T) {
	cfg := DefaultPredictorConfig()
	f := func(ops []bool, pcs []uint8) bool {
		p := NewPCPredictor(cfg)
		for i, op := range ops {
			pc := uint64(0)
			if i < len(pcs) {
				pc = uint64(pcs[i])
			}
			if op {
				p.OnHit(pc)
			} else {
				p.OnEvict(pc, i%3 == 0)
			}
			c := p.Counter(pc)
			if c < 0 || c > cfg.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// rowOf64 groups 4 consecutive lines per row for tests.
func rowOf64(a mem.Addr) uint64 { return uint64(a) >> 8 }

func TestRinserTracksRowMates(t *testing.T) {
	r := NewRowRinser(rowOf64, 16)
	r.OnDirty(0x000)
	r.OnDirty(0x040)
	r.OnDirty(0x080)
	r.OnDirty(0x100) // next row
	mates := r.RowMates(0x000)
	if len(mates) != 2 {
		t.Fatalf("mates = %v, want 2 entries", mates)
	}
	for _, m := range mates {
		if m != 0x040 && m != 0x080 {
			t.Fatalf("unexpected mate %#x", uint64(m))
		}
	}
}

func TestRinserCleanRemoves(t *testing.T) {
	r := NewRowRinser(rowOf64, 16)
	r.OnDirty(0x000)
	r.OnDirty(0x040)
	r.OnClean(0x040)
	if got := r.RowMates(0x000); len(got) != 0 {
		t.Fatalf("mates after clean = %v", got)
	}
	r.OnClean(0x000)
	if r.TrackedRows() != 0 {
		t.Fatalf("tracked rows = %d, want 0", r.TrackedRows())
	}
}

func TestRinserDuplicateDirtyIgnored(t *testing.T) {
	r := NewRowRinser(rowOf64, 16)
	r.OnDirty(0x40)
	r.OnDirty(0x40)
	if got := r.RowMates(0x00); len(got) != 1 {
		t.Fatalf("mates = %v, want exactly one 0x40", got)
	}
}

func TestRinserCleanUnknownIsNoop(t *testing.T) {
	r := NewRowRinser(rowOf64, 16)
	r.OnClean(0x999)
	if r.TrackedRows() != 0 {
		t.Fatal("phantom row appeared")
	}
}

func TestRinserCapacityForgetsOldest(t *testing.T) {
	r := NewRowRinser(rowOf64, 2)
	r.OnDirty(0x000) // row 0
	r.OnDirty(0x100) // row 1
	r.OnDirty(0x200) // row 2 → evicts row 0
	if r.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", r.Evictions)
	}
	if got := r.RowMates(0x040); len(got) != 0 {
		t.Fatalf("forgotten row still tracked: %v", got)
	}
	if got := r.RowMates(0x140); len(got) != 1 {
		t.Fatalf("young row lost: %v", got)
	}
}

func TestRinserPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil rowOf accepted")
		}
	}()
	NewRowRinser(nil, 4)
}

// Property: after any dirty/clean sequence, RowMates never returns the
// queried line itself and never returns cleaned lines.
func TestPropertyRinserConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		r := NewRowRinser(rowOf64, 8)
		dirty := map[mem.Addr]bool{}
		for _, op := range ops {
			line := mem.Addr(op&0x1f) * 64
			if op&0x80 != 0 {
				r.OnDirty(line)
				dirty[line] = true
			} else {
				r.OnClean(line)
				delete(dirty, line)
			}
		}
		for l := range dirty {
			for _, m := range r.RowMates(l) {
				if m == l {
					return false
				}
				if !dirty[m] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPredictorReset checks Reset re-seeds the counters to the initial
// bias and zeroes the query stats.
func TestPredictorReset(t *testing.T) {
	p := NewPCPredictor(PredictorConfig{Entries: 16, Max: 7, Threshold: 2, Initial: 3})
	const pc = 0x40
	for i := 0; i < 10; i++ {
		p.OnEvict(pc, false)
	}
	if !p.ShouldBypass(pc, mem.Load) {
		t.Fatal("training did not drive the counter below threshold")
	}

	p.Reset()
	if p.Counter(pc) != 3 {
		t.Fatalf("post-reset counter = %d, want the initial bias 3", p.Counter(pc))
	}
	if p.Lookups != 0 || p.BypassHints != 0 {
		t.Fatalf("post-reset stats not zeroed: lookups=%d hints=%d", p.Lookups, p.BypassHints)
	}
	if p.ShouldBypass(pc, mem.Load) {
		t.Fatal("reset predictor must be biased toward caching again")
	}
}

// TestRinserReset checks Reset forgets all tracked rows.
func TestRinserReset(t *testing.T) {
	r := NewRowRinser(func(a mem.Addr) uint64 { return uint64(a) >> 8 }, 4)
	r.OnDirty(0x100)
	r.OnDirty(0x140)
	r.OnDirty(0x200)
	if r.TrackedRows() != 2 {
		t.Fatalf("TrackedRows = %d, want 2", r.TrackedRows())
	}

	r.Reset()
	if r.TrackedRows() != 0 || r.Evictions != 0 {
		t.Fatalf("post-reset: rows=%d evictions=%d, want 0/0", r.TrackedRows(), r.Evictions)
	}
	if got := r.RowMates(0x140); len(got) != 0 {
		t.Fatalf("RowMates after Reset = %v, want empty", got)
	}
	// The index keeps working after a reset.
	r.OnDirty(0x100)
	r.OnDirty(0x140)
	if got := r.RowMates(0x140); len(got) != 1 || got[0] != 0x100 {
		t.Fatalf("post-reset RowMates = %v, want [0x100]", got)
	}
}
