package policy

import (
	"fmt"

	"repro/internal/mem"
)

// RowRinser is the dirty-block index (DBI) behind row-locality-aware
// cache rinsing: it tracks which dirty L2 lines map to each DRAM row so
// that, when one dirty line of a row is evicted, the rest can be written
// back in the same burst and land as row hits at the memory controller.
//
// The index has bounded capacity like the hardware structure in [58];
// when full it forgets the least-recently-dirtied row, which only costs
// rinse opportunities, never correctness.
type RowRinser struct {
	rowOf   func(mem.Addr) uint64
	maxRows int

	rows  map[uint64][]mem.Addr
	order []uint64 // FIFO of tracked rows for capacity eviction

	// TrackedRows is exposed for tests and diagnostics.
	Evictions uint64
}

// NewRowRinser builds a rinser. rowOf maps a line address to its DRAM row
// id (dram.Config.RowID). maxRows bounds the number of rows tracked.
func NewRowRinser(rowOf func(mem.Addr) uint64, maxRows int) *RowRinser {
	if rowOf == nil {
		panic("policy: rinser needs a row-mapping function")
	}
	if maxRows <= 0 {
		panic(fmt.Sprintf("policy: rinser maxRows must be positive, got %d", maxRows))
	}
	return &RowRinser{
		rowOf:   rowOf,
		maxRows: maxRows,
		rows:    make(map[uint64][]mem.Addr),
	}
}

// OnDirty implements cache.Rinser: records a newly dirty line.
func (r *RowRinser) OnDirty(line mem.Addr) {
	row := r.rowOf(line)
	lines, ok := r.rows[row]
	if !ok {
		if len(r.order) >= r.maxRows {
			// Forget the oldest tracked row.
			old := r.order[0]
			r.order = r.order[1:]
			delete(r.rows, old)
			r.Evictions++
		}
		r.order = append(r.order, row)
	}
	for _, l := range lines {
		if l == line {
			return
		}
	}
	r.rows[row] = append(lines, line)
}

// OnClean implements cache.Rinser: removes a line that was written back
// or invalidated.
func (r *RowRinser) OnClean(line mem.Addr) {
	row := r.rowOf(line)
	lines, ok := r.rows[row]
	if !ok {
		return
	}
	for i, l := range lines {
		if l == line {
			lines = append(lines[:i], lines[i+1:]...)
			break
		}
	}
	if len(lines) == 0 {
		delete(r.rows, row)
		for i, id := range r.order {
			if id == row {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
		return
	}
	r.rows[row] = lines
}

// RowMates implements cache.Rinser: the other dirty lines in line's row.
func (r *RowRinser) RowMates(line mem.Addr) []mem.Addr {
	row := r.rowOf(line)
	lines := r.rows[row]
	out := make([]mem.Addr, 0, len(lines))
	for _, l := range lines {
		if l != line {
			out = append(out, l)
		}
	}
	return out
}

// Reset forgets every tracked row, returning the index to its just-built
// state while keeping map and slice capacity.
func (r *RowRinser) Reset() {
	clear(r.rows)
	r.order = r.order[:0]
	r.Evictions = 0
}

// TrackedRows reports how many rows currently have dirty lines.
func (r *RowRinser) TrackedRows() int { return len(r.rows) }
