// Package policy implements the paper's three caching optimizations in
// reusable form: the PC-based bypass predictor (CacheRW-PCby, after
// Tian et al. [54]), the dirty-block-index row rinser (CacheRW-CR, after
// Seshadri et al. [58]), and helpers for allocation bypassing (CacheRW-AB,
// implemented inside internal/cache and configured from here).
package policy

import (
	"fmt"

	"repro/internal/mem"
)

// PCPredictor predicts, per static memory instruction, whether lines it
// allocates will see reuse. Instructions with a history of dead (never
// reused) allocations are bypassed at the L2, avoiding caching overheads
// for streaming traffic while preserving reuse-friendly traffic.
//
// The predictor keeps a table of saturating counters indexed by a PC
// hash. Hits and reused evictions increment; dead evictions decrement.
// A PC whose counter falls below the bypass threshold is predicted
// non-reusing.
type PCPredictor struct {
	table     []int8
	mask      uint64
	max       int8
	threshold int8
	initial   int8 // the cold-counter seed, reapplied by Reset

	// Lookups, BypassHints count predictor queries and bypass answers.
	Lookups, BypassHints uint64
}

// PredictorConfig parameterizes a PCPredictor.
type PredictorConfig struct {
	// Entries is the table size; must be a power of two.
	Entries int
	// Max is the saturating counter ceiling (e.g. 7).
	Max int8
	// Threshold is the bypass boundary: counters strictly below it
	// predict bypass.
	Threshold int8
	// Initial seeds counters, biasing the cold predictor toward
	// caching (so reuse has a chance to be observed).
	Initial int8
}

// DefaultPredictorConfig mirrors the adaptive-bypass setup of [54]:
// a small table of 3-bit counters biased toward caching.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{Entries: 512, Max: 7, Threshold: 2, Initial: 3}
}

// NewPCPredictor builds a predictor. It panics on invalid geometry.
func NewPCPredictor(cfg PredictorConfig) *PCPredictor {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic(fmt.Sprintf("policy: predictor entries must be a positive power of two, got %d", cfg.Entries))
	}
	if cfg.Max <= 0 || cfg.Threshold < 0 || cfg.Threshold > cfg.Max || cfg.Initial < 0 || cfg.Initial > cfg.Max {
		panic(fmt.Sprintf("policy: inconsistent predictor config %+v", cfg))
	}
	p := &PCPredictor{
		table:     make([]int8, cfg.Entries),
		mask:      uint64(cfg.Entries - 1),
		max:       cfg.Max,
		threshold: cfg.Threshold,
		initial:   cfg.Initial,
	}
	p.Reset()
	return p
}

// Reset re-seeds every counter to the configured initial bias and zeroes
// the query counters, returning the predictor to its just-built state.
func (p *PCPredictor) Reset() {
	for i := range p.table {
		p.table[i] = p.initial
	}
	p.Lookups = 0
	p.BypassHints = 0
}

func (p *PCPredictor) idx(pc uint64) uint64 {
	// Mix the PC so nearby instruction addresses spread over the table.
	pc ^= pc >> 7
	pc *= 0x9e3779b97f4a7c15
	pc ^= pc >> 23
	return pc & p.mask
}

// ShouldBypass implements cache.Predictor.
func (p *PCPredictor) ShouldBypass(pc uint64, kind mem.Kind) bool {
	p.Lookups++
	if p.table[p.idx(pc)] < p.threshold {
		p.BypassHints++
		return true
	}
	return false
}

// OnHit implements cache.Predictor: resident-line reuse is positive
// evidence for the allocating PC.
func (p *PCPredictor) OnHit(pc uint64) {
	i := p.idx(pc)
	if p.table[i] < p.max {
		p.table[i]++
	}
}

// OnEvict implements cache.Predictor: an eviction without reuse is a dead
// allocation and counts against the PC.
func (p *PCPredictor) OnEvict(pc uint64, reused bool) {
	i := p.idx(pc)
	if reused {
		if p.table[i] < p.max {
			p.table[i]++
		}
		return
	}
	if p.table[i] > 0 {
		p.table[i]--
	}
}

// Counter exposes the current counter for a PC (tests, harness dumps).
func (p *PCPredictor) Counter(pc uint64) int8 { return p.table[p.idx(pc)] }
