// Package workloads provides synthetic kernel generators for the 17 MI
// benchmarks of Table 2. Each generator reproduces the memory access
// structure of its MIOpen/DeepBench counterpart — streaming elementwise
// traffic, pooling windows, multi-pass normalizations, LDS-tiled GEMMs,
// and multi-kernel RNN timestep sequences — because those structures, not
// the arithmetic, determine how each workload responds to GPU caching
// policy.
//
// Footprints are scaled relative to the paper's (Table 2) so whole-figure
// sweeps run in seconds, but each workload keeps its footprint-to-cache
// regime: FwSoft still fits in one L1, BwBN still roughly matches the L2,
// and the activation layers still exceed the L2 many times over. The
// Scale parameter grows or shrinks everything proportionally.
package workloads

import (
	"fmt"
	"hash/fnv"

	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/mem"
)

// Class is the paper's workload grouping (Section VI.A).
type Class int

const (
	// Insensitive workloads change <5% across policies.
	Insensitive Class = iota
	// ReuseSensitive workloads improve with caching.
	ReuseSensitive
	// ThroughputSensitive workloads degrade with caching.
	ThroughputSensitive
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Insensitive:
		return "Insensitive"
	case ReuseSensitive:
		return "Reuse Sensitive"
	case ThroughputSensitive:
		return "Throughput Sensitive"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Scale multiplies every workload's element counts. 1.0 is the default
// harness scale; tests use smaller values.
type Scale float64

// Spec describes one benchmark: identity, Table 2 metadata, and a
// builder producing its kernel sequence.
type Spec struct {
	// Name is the paper's benchmark abbreviation (e.g. "FwAct").
	Name string
	// Suite is the source suite (DNNMark, DeepBench, MIOpen-benchmark).
	Suite string
	// Class is the paper's sensitivity grouping.
	Class Class
	// PaperFootprint is Table 2's GPU footprint, for reporting.
	PaperFootprint string
	// PaperInput is Table 2's input description.
	PaperInput string
	// UniqueKernels and TotalKernels mirror Table 2.
	UniqueKernels, TotalKernels int
	// Build produces the kernel sequence at a given scale.
	Build func(s Scale) Workload
}

// Workload is a built benchmark: its kernels plus derived metadata.
type Workload struct {
	// Name identifies the workload in diagnostics (e.g. deadlock
	// panics). Spec.Build fills it from the spec's name.
	Name    string
	Kernels []gpu.Kernel
	// FootprintBytes is the number of distinct bytes the kernels touch.
	FootprintBytes uint64
}

// pcFor derives a stable PC for a static instruction: workload/kernel
// name plus role index. The PC-based predictor keys on these.
func pcFor(name string, role int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()<<8 | uint64(role&0xff)
}

// alloc is a bump allocator handing out row-aligned buffers in the
// simulated address space so distinct workload buffers never share DRAM
// rows.
type alloc struct {
	next mem.Addr
}

const allocAlign = 4096

// heapBase is where workload buffers start in the simulated address
// space. Every address a generated kernel touches lies in
// [heapBase, heapBase+FootprintBytes) — the coalescer invariant the
// fuzz harness asserts.
const heapBase mem.Addr = 0x1000_0000

func newAlloc() *alloc { return &alloc{next: heapBase} }

// buf reserves size bytes and returns the base address.
func (a *alloc) buf(size uint64) mem.Addr {
	base := a.next
	sz := mem.Addr((size + allocAlign - 1) &^ (allocAlign - 1))
	a.next += sz
	return base
}

// used returns total bytes reserved.
func (a *alloc) used() uint64 { return uint64(a.next - heapBase) }

// scaled returns n scaled by s, rounded up to a multiple of unit and at
// least one unit.
func scaled(n int, s Scale, unit int) int {
	v := int(float64(n) * float64(s))
	if v < unit {
		return unit
	}
	return (v + unit - 1) / unit * unit
}

// chunkedKernel builds a kernel whose wavefronts split totalElems into
// contiguous per-wave chunks, processing 64 elements per iteration. gen
// returns the per-iteration instruction slice for the chunk starting at
// element index base.
func chunkedKernel(name string, totalElems, wgs, wavesPerWG int, sync bool,
	gen func(elemBase int) []gpu.Instr) gpu.Kernel {
	if totalElems <= 0 || wgs <= 0 || wavesPerWG <= 0 {
		panic(fmt.Sprintf("workloads: kernel %s has empty geometry", name))
	}
	waves := wgs * wavesPerWG
	chunks := (totalElems + 63) / 64
	perWave := (chunks + waves - 1) / waves
	return gpu.Kernel{
		Name:       name,
		Workgroups: wgs,
		WavesPerWG: wavesPerWG,
		SystemSync: sync,
		NewProgram: func(wg, wave int) gpu.Program {
			waveIdx := wg*wavesPerWG + wave
			cur := waveIdx * perWave
			end := cur + perWave
			if end > chunks {
				end = chunks
			}
			var pend []gpu.Instr
			pos := 0
			return gpu.FuncProgram(func() (gpu.Instr, bool) {
				for pos >= len(pend) {
					if cur >= end {
						return nil, false
					}
					pend = gen(cur * 64)
					pos = 0
					cur++
				}
				ins := pend[pos]
				pos++
				return ins, true
			})
		},
	}
}

// multiPassKernel builds a kernel whose wavefronts sweep their contiguous
// chunk of totalElems several times (normalization layers: statistics
// pass(es), then an apply pass). passes[p] generates the instruction
// slice for the 64-element iteration at elemBase during pass p. The
// reuse distance between passes is the wave's whole chunk, which is what
// lets caching (and only caching) capture cross-pass reuse.
func multiPassKernel(name string, totalElems, wgs, wavesPerWG int, sync bool,
	passes []func(elemBase int) []gpu.Instr) gpu.Kernel {
	if totalElems <= 0 || wgs <= 0 || wavesPerWG <= 0 || len(passes) == 0 {
		panic(fmt.Sprintf("workloads: kernel %s has empty geometry", name))
	}
	waves := wgs * wavesPerWG
	chunks := (totalElems + 63) / 64
	perWave := (chunks + waves - 1) / waves
	return gpu.Kernel{
		Name:       name,
		Workgroups: wgs,
		WavesPerWG: wavesPerWG,
		SystemSync: sync,
		NewProgram: func(wg, wave int) gpu.Program {
			waveIdx := wg*wavesPerWG + wave
			start := waveIdx * perWave
			limit := start + perWave
			if limit > chunks {
				limit = chunks
			}
			pass := 0
			cur := start
			var pend []gpu.Instr
			pos := 0
			return gpu.FuncProgram(func() (gpu.Instr, bool) {
				for pos >= len(pend) {
					// Loop, not if: a wave whose chunk range is empty
					// (start >= limit happens when waves × perWave
					// overshoots the chunk count) must step through
					// every pass without generating an iteration, or it
					// would emit one out-of-footprint access per pass.
					for cur >= limit {
						pass++
						cur = start
						if pass >= len(passes) {
							return nil, false
						}
					}
					pend = passes[pass](cur * 64)
					pos = 0
					cur++
				}
				ins := pend[pos]
				pos++
				return ins, true
			})
		},
	}
}

// loadAt builds a 64-lane contiguous float32 load of the 64 elements at
// element index base of the buffer at bufBase.
func loadAt(pc uint64, bufBase mem.Addr, elemBase int) gpu.Instr {
	return gpu.MemAccess{
		PC: pc, Kind: mem.Load,
		Base: bufBase + mem.Addr(elemBase*4), Stride: 4, Lanes: 64, ElemBytes: 4,
	}
}

// storeAt is loadAt's store counterpart.
func storeAt(pc uint64, bufBase mem.Addr, elemBase int) gpu.Instr {
	return gpu.MemAccess{
		PC: pc, Kind: mem.Store,
		Base: bufBase + mem.Addr(elemBase*4), Stride: 4, Lanes: 64, ElemBytes: 4,
	}
}

// compute builds a vector-ALU burst: instrs 64-lane VALU instructions,
// each taking 4 cycles on the 16-wide SIMD.
func compute(valuInstrs int) gpu.Instr {
	if valuInstrs < 1 {
		valuInstrs = 1
	}
	return gpu.Compute{
		VectorOps: uint64(64 * valuInstrs),
		Cycles:    event.Cycle(4 * valuInstrs),
	}
}

// named wraps a spec's builder so every built Workload carries the
// spec's name, without each generator having to remember to set it.
func named(s Spec) Spec {
	build := s.Build
	s.Build = func(sc Scale) Workload {
		w := build(sc)
		w.Name = s.Name
		return w
	}
	return s
}

// All returns the 17 Table 2 workload specs in the paper's figure order
// (grouped: insensitive, reuse sensitive, throughput sensitive).
func All() []Spec {
	specs := []Spec{
		specDGEMM(),
		specSGEMM(),
		specCM(),
		specFwBN(),
		specFwPool(),
		specFwSoft(),
		specBwSoft(),
		specBwPool(),
		specFwGRU(),
		specFwLSTM(),
		specFwBwGRU(),
		specFwBwLSTM(),
		specBwBN(),
		specFwFc(),
		specFwAct(),
		specFwLRN(),
		specBwAct(),
	}
	for i := range specs {
		specs[i] = named(specs[i])
	}
	return specs
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns all workload names in figure order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
