package workloads

import (
	"repro/internal/gpu"
	"repro/internal/mem"
)

// --- Batch normalization layers (DNNMark) ---
//
// Batch norm is a multi-pass computation: statistics over the input
// (mean, then variance), then a normalize pass. The passes re-read the
// same data at a reuse distance of a whole per-wave chunk — far too long
// for bypass coalescing but well within the shared L2 — making BN the
// paper's canonical reuse-sensitive normalization layer. The backward
// pass additionally accumulates per-channel gradient partial sums, whose
// repeated stores to the same lines are exactly what L2 write combining
// (CacheRW) collapses.

func specFwBN() Spec {
	return Spec{
		Name: "FwBN", Suite: "DNNMark", Class: ReuseSensitive,
		PaperFootprint: "42 MB", PaperInput: "Batch size 256",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			n := scaled(640_000, s, 64)
			a := newAlloc()
			x := a.buf(uint64(n) * 4)
			y := a.buf(uint64(n) * 4)
			wgs := gridFor(n, 4, 10)
			k := multiPassKernel("FwBN", n, wgs, 4, false,
				[]func(int) []gpu.Instr{
					func(base int) []gpu.Instr { // mean pass
						return []gpu.Instr{
							loadAt(pcFor("FwBN.mean", 0), x, base),
							gpu.WaitCnt{Max: 0},
							compute(1),
						}
					},
					func(base int) []gpu.Instr { // variance pass
						return []gpu.Instr{
							loadAt(pcFor("FwBN.var", 1), x, base),
							gpu.WaitCnt{Max: 0},
							compute(2),
						}
					},
					func(base int) []gpu.Instr { // normalize pass
						return []gpu.Instr{
							loadAt(pcFor("FwBN.norm", 2), x, base),
							gpu.WaitCnt{Max: 0},
							compute(2),
							storeAt(pcFor("FwBN.y", 3), y, base),
						}
					},
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}

func specBwBN() Spec {
	return Spec{
		Name: "BwBN", Suite: "DNNMark", Class: ReuseSensitive,
		PaperFootprint: "5.88 MB", PaperInput: "Batch size 512",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			// Sized so x and dy (the pass-1/pass-2 reuse set) fit the
			// 4 MB L2 together, as the paper's 5.88 MB footprint
			// mostly does.
			n := scaled(384_000, s, 64)
			a := newAlloc()
			x := a.buf(uint64(n) * 4)
			dy := a.buf(uint64(n) * 4)
			dx := a.buf(uint64(n) * 4)
			wgs := gridFor(n, 4, 10)
			waves := wgs * 4
			// One accumulator line per wave: the gradient reduction
			// target each wave updates every iteration.
			acc := a.buf(uint64(waves) * mem.LineSize)
			accLine := func(base int) mem.Addr {
				chunks := (n + 63) / 64
				perWave := (chunks + waves - 1) / waves
				wave := (base / 64) / perWave
				return acc + mem.Addr(wave)*mem.LineSize
			}
			k := multiPassKernel("BwBN", n, wgs, 4, false,
				[]func(int) []gpu.Instr{
					func(base int) []gpu.Instr { // dgamma/dbeta reduction
						return []gpu.Instr{
							loadAt(pcFor("BwBN.x", 0), x, base),
							loadAt(pcFor("BwBN.dy", 1), dy, base),
							gpu.WaitCnt{Max: 0},
							compute(2),
							// Partial-sum store: hits the same line
							// every iteration; CacheRW combines it,
							// CacheR sends every update to memory.
							gpu.MemAccess{
								PC: pcFor("BwBN.acc", 2), Kind: mem.Store,
								Base: accLine(base), Stride: 0, Lanes: 16, ElemBytes: 4,
							},
						}
					},
					func(base int) []gpu.Instr { // dx pass
						return []gpu.Instr{
							loadAt(pcFor("BwBN.x2", 3), x, base),
							loadAt(pcFor("BwBN.dy2", 4), dy, base),
							gpu.WaitCnt{Max: 0},
							compute(3),
							storeAt(pcFor("BwBN.dx", 5), dx, base),
						}
					},
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}
