package workloads

import (
	"repro/internal/gpu"
	"repro/internal/mem"
)

// --- Pooling layers (DNNMark) ---
//
// 2×2/stride-2 max pooling. Forward reads four inputs per output in two
// comparison rounds; the second round re-reads the same lines after a
// dependency wait, so caching captures the repeat while bypass
// coalescing cannot (the rounds are too far apart in time). Because the
// input set streams far beyond the L2, forward pooling also shows the
// caching overheads the paper highlights: allocation-blocking stalls and
// DRAM row-locality disruption, which its modest reuse only partly
// repays. Backward pooling is store-dominated (four gradient stores per
// loaded output gradient, two per line), which is what makes L2 write
// combining profitable for it.

// poolRowWidth is the modelled feature-map row width in elements.
const poolRowWidth = 4096

func specFwPool() Spec {
	return Spec{
		Name: "FwPool", Suite: "DNNMark", Class: ReuseSensitive,
		PaperFootprint: "480 MB", PaperInput: "Batch size 256",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			nOut := scaled(512_000, s, 64)
			nIn := nOut * 4
			a := newAlloc()
			in := a.buf(uint64(nIn)*4 + poolRowWidth*4)
			out := a.buf(uint64(nOut) * 4)
			// 64 outputs at out-index base pool over input rows at
			// in-index 2*base (row 0) and 2*base+rowWidth (row 1),
			// reading every other element (stride 8 bytes).
			rowLoad := func(pc uint64, elemBase int, row, off int) gpu.Instr {
				idx := 2*elemBase + row*poolRowWidth + off
				return gpu.MemAccess{
					PC: pc, Kind: mem.Load,
					Base: in + mem.Addr(idx*4), Stride: 8, Lanes: 64, ElemBytes: 4,
				}
			}
			k := chunkedKernel("FwPool", nOut, gridFor(nOut, 4, 10), 4, false,
				func(base int) []gpu.Instr {
					return []gpu.Instr{
						// Round 1: compare left elements of both rows.
						rowLoad(pcFor("FwPool.r0a", 0), base, 0, 0),
						rowLoad(pcFor("FwPool.r1a", 1), base, 1, 0),
						gpu.WaitCnt{Max: 0},
						compute(1),
						// Round 2: right elements — same lines again.
						rowLoad(pcFor("FwPool.r0b", 2), base, 0, 1),
						rowLoad(pcFor("FwPool.r1b", 3), base, 1, 1),
						gpu.WaitCnt{Max: 0},
						compute(1),
						storeAt(pcFor("FwPool.y", 4), out, base),
					}
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}

func specBwPool() Spec {
	return Spec{
		Name: "BwPool", Suite: "DNNMark", Class: ReuseSensitive,
		PaperFootprint: "252 MB", PaperInput: "Batch size 256",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			nDy := scaled(256_000, s, 64)
			nDx := nDy * 4
			a := newAlloc()
			dy := a.buf(uint64(nDy) * 4)
			dx := a.buf(uint64(nDx)*4 + poolRowWidth*4)
			rowStore := func(pc uint64, elemBase int, row, off int) gpu.Instr {
				idx := 2*elemBase + row*poolRowWidth + off
				return gpu.MemAccess{
					PC: pc, Kind: mem.Store,
					Base: dx + mem.Addr(idx*4), Stride: 8, Lanes: 64, ElemBytes: 4,
				}
			}
			k := chunkedKernel("BwPool", nDy, gridFor(nDy, 4, 10), 4, false,
				func(base int) []gpu.Instr {
					return []gpu.Instr{
						loadAt(pcFor("BwPool.dy", 0), dy, base),
						gpu.WaitCnt{Max: 0},
						compute(1),
						// Scatter the gradient to the 2×2 window:
						// two stores per input line (left/right
						// halves) — write combining halves the
						// store traffic.
						rowStore(pcFor("BwPool.r0a", 1), base, 0, 0),
						rowStore(pcFor("BwPool.r0b", 2), base, 0, 1),
						rowStore(pcFor("BwPool.r1a", 3), base, 1, 0),
						rowStore(pcFor("BwPool.r1b", 4), base, 1, 1),
					}
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}
