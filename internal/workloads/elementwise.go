package workloads

import (
	"repro/internal/gpu"
)

// gridFor sizes a kernel grid: enough workgroups that every wave runs
// about targetIters iterations over the chunk count.
func gridFor(totalElems, wavesPerWG, targetIters int) int {
	chunks := (totalElems + 63) / 64
	wgs := chunks / (wavesPerWG * targetIters)
	if wgs < 1 {
		wgs = 1
	}
	return wgs
}

// --- Activation layers (DNNMark) ---
//
// Activations apply an elementwise function: one streaming load, trivial
// compute, one streaming store, no reuse anywhere (Section II.A). They
// are the paper's canonical throughput-sensitive workloads: caching buys
// nothing and the added allocation blocking and row-locality disruption
// cost up to ~24%.

func specFwAct() Spec {
	return Spec{
		Name: "FwAct", Suite: "DNNMark", Class: ThroughputSensitive,
		PaperFootprint: "1.6 GB", PaperInput: "Batch size 100",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			n := scaled(1_500_000, s, 64)
			a := newAlloc()
			x := a.buf(uint64(n) * 4)
			y := a.buf(uint64(n) * 4)
			k := chunkedKernel("FwAct", n, gridFor(n, 4, 10), 4, false,
				func(base int) []gpu.Instr {
					return []gpu.Instr{
						loadAt(pcFor("FwAct.x", 0), x, base),
						gpu.WaitCnt{Max: 0},
						compute(1),
						storeAt(pcFor("FwAct.y", 1), y, base),
					}
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}

func specBwAct() Spec {
	return Spec{
		Name: "BwAct", Suite: "DNNMark", Class: ThroughputSensitive,
		PaperFootprint: "2.4 GB", PaperInput: "Batch size 100",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			n := scaled(1_100_000, s, 64)
			a := newAlloc()
			x := a.buf(uint64(n) * 4)
			dy := a.buf(uint64(n) * 4)
			dx := a.buf(uint64(n) * 4)
			k := chunkedKernel("BwAct", n, gridFor(n, 4, 10), 4, false,
				func(base int) []gpu.Instr {
					return []gpu.Instr{
						loadAt(pcFor("BwAct.dy", 0), dy, base),
						loadAt(pcFor("BwAct.x", 1), x, base),
						gpu.WaitCnt{Max: 0},
						compute(1),
						storeAt(pcFor("BwAct.dx", 2), dx, base),
					}
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}

// --- Local response normalization (DNNMark) ---
//
// FwLRN reads a window of neighbouring channel values per output. With
// the channel-innermost layout MIOpen uses, the window loads of adjacent
// outputs land in the same cache lines and coalesce whether or not
// caching is enabled, so LRN behaves as pure streaming with somewhat more
// compute than an activation — and is likewise throughput sensitive.

func specFwLRN() Spec {
	return Spec{
		Name: "FwLRN", Suite: "DNNMark", Class: ThroughputSensitive,
		PaperFootprint: "2.4 GB", PaperInput: "Batch size 100",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			n := scaled(1_000_000, s, 64)
			a := newAlloc()
			x := a.buf(uint64(n)*4 + 256)
			scale := a.buf(uint64(n) * 4)
			y := a.buf(uint64(n) * 4)
			k := chunkedKernel("FwLRN", n, gridFor(n, 4, 10), 4, false,
				func(base int) []gpu.Instr {
					return []gpu.Instr{
						// Window loads: the shifted load overlaps
						// three of the four lines of the first and
						// coalesces against it in flight.
						loadAt(pcFor("FwLRN.x", 0), x, base),
						loadAt(pcFor("FwLRN.xw", 1), x, base+16),
						loadAt(pcFor("FwLRN.scale", 2), scale, base),
						gpu.WaitCnt{Max: 0},
						compute(4),
						storeAt(pcFor("FwLRN.y", 3), y, base),
					}
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}

// --- Softmax layers (DNNMark) ---
//
// Softmax output layers touch a tiny footprint (Table 2: 0.01–0.02 MB —
// it fits in a single L1) in several passes (max, exponent sum,
// normalize). With caching the later passes hit; uncached, every pass
// refetches from DRAM. These are reuse-sensitive workloads whose small
// size also makes them latency bound.

func specFwSoft() Spec {
	return Spec{
		Name: "FwSoft", Suite: "DNNMark", Class: ReuseSensitive,
		PaperFootprint: "0.01 MB", PaperInput: "Batch size 512",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			n := scaled(2560, s, 64)
			a := newAlloc()
			x := a.buf(uint64(n) * 4)
			y := a.buf(uint64(n) * 4)
			k := chunkedKernel("FwSoft", n, (n+63)/64, 1, false,
				func(base int) []gpu.Instr {
					return []gpu.Instr{
						loadAt(pcFor("FwSoft.max", 0), x, base),
						gpu.WaitCnt{Max: 0},
						compute(2),
						loadAt(pcFor("FwSoft.sum", 1), x, base),
						gpu.WaitCnt{Max: 0},
						compute(2),
						loadAt(pcFor("FwSoft.norm", 2), x, base),
						gpu.WaitCnt{Max: 0},
						compute(2),
						storeAt(pcFor("FwSoft.y", 3), y, base),
					}
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}

func specBwSoft() Spec {
	return Spec{
		Name: "BwSoft", Suite: "DNNMark", Class: ReuseSensitive,
		PaperFootprint: "0.02 MB", PaperInput: "Batch size 512",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			n := scaled(2560, s, 64)
			a := newAlloc()
			y := a.buf(uint64(n) * 4)
			dy := a.buf(uint64(n) * 4)
			dx := a.buf(uint64(n) * 4)
			k := chunkedKernel("BwSoft", n, (n+63)/64, 1, false,
				func(base int) []gpu.Instr {
					return []gpu.Instr{
						loadAt(pcFor("BwSoft.y", 0), y, base),
						loadAt(pcFor("BwSoft.dy", 1), dy, base),
						gpu.WaitCnt{Max: 0},
						compute(2),
						loadAt(pcFor("BwSoft.y2", 2), y, base),
						gpu.WaitCnt{Max: 0},
						compute(2),
						storeAt(pcFor("BwSoft.dx", 3), dx, base),
					}
				})
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: a.used()}
		},
	}
}
