package workloads

import (
	"repro/internal/event"
	"repro/internal/gpu"
	"repro/internal/mem"
)

// --- GEMM workloads (DeepBench SGEMM/DGEMM, DNNMark FwFc) ---
//
// Tiled GEMM in the MIOpenGEMM style: each workgroup owns an MT×NT output
// tile and sweeps the K dimension in KT-deep slabs, staging operand tiles
// through the LDS behind a barrier, then performing the MAC burst. Almost
// all reuse lives in the LDS, which is why the paper finds square GEMM
// compute bound and cache-policy insensitive even though read caching
// removes 74–84% of its DRAM traffic (operand tiles are shared between
// workgroups: B tiles across M-tiles, A tiles across N-tiles).
//
// The fully connected layer (FwFc) uses a thin K slab (low arithmetic
// intensity): without caching it is memory bound, and its weight tiles —
// re-read by every batch tile — are exactly the high-connectivity reuse
// the paper credits with up to 93% read-demand reduction and a 29%
// speedup under caching.

const (
	gemmMT = 64
	gemmNT = 64
)

// gemmDims are the matrix dimensions of one GEMM: C[M][N] += A[M][K]·B[K][N].
type gemmDims struct {
	M, N, K int
	// KT is the K-slab depth per iteration (default 16). Smaller KT
	// lowers arithmetic intensity.
	KT int
	// Waves is wavefronts per workgroup (default 4).
	Waves int
	// ElemBytes is 4 (float32) or 8 (float64).
	ElemBytes int
	// ValuCycles is the SIMD occupancy of one VALU instruction (4 for
	// fp32, 8 for fp64 at half rate).
	ValuCycles int
	// OverheadQ is the VALU instruction count per MAC in quarters
	// (default 7 = 1.75x: MACs plus the address arithmetic, LDS moves
	// and loop control of an im2col GEMM kernel; the simpler fully
	// connected inner loop uses 5 = 1.25x).
	OverheadQ int
}

func (d *gemmDims) normalize() {
	if d.KT == 0 {
		d.KT = 16
	}
	if d.Waves == 0 {
		d.Waves = 4
	}
	if d.OverheadQ == 0 {
		d.OverheadQ = 7
	}
}

// pitchPad is the leading-dimension padding in bytes. GEMM operand rows
// at power-of-two pitches all map to the same cache set and DRAM bank;
// BLAS libraries pad the leading dimension by one line to spread them,
// and MIOpenGEMM's generated kernels assume padded workspaces.
const pitchPad = mem.LineSize

// operandBytes returns the padded buffer size for a rows×cols operand.
func operandBytes(rows, cols, eb int) uint64 {
	return uint64(rows) * uint64(cols*eb+pitchPad)
}

// gemmKernel builds the tiled kernel. a, b, c are the operand base
// addresses.
func gemmKernel(name string, d gemmDims, a, b, c mem.Addr, sync bool) gpu.Kernel {
	d.normalize()
	if d.M%gemmMT != 0 || d.N%gemmNT != 0 || d.K%d.KT != 0 {
		panic("workloads: GEMM dims must be tile multiples: " + name)
	}
	eb := d.ElemBytes
	pitchA := d.K*eb + pitchPad
	pitchB := d.N*eb + pitchPad
	pitchC := d.N*eb + pitchPad
	mTiles := d.M / gemmMT
	nTiles := d.N / gemmNT
	kIters := d.K / d.KT
	waves := d.Waves
	rowsPerWave := gemmMT / waves
	bRowsPerWave := d.KT / waves
	if bRowsPerWave < 1 {
		bRowsPerWave = 1
	}

	// Per-workgroup-iteration MAC count split over the waves, expressed
	// as one folded VALU burst per wave. Real GEMM kernels also spend
	// VALU issue slots on address arithmetic, LDS moves and loop
	// control — about 75% on top of the MACs — which is what makes the
	// square DeepBench GEMMs compute bound on the Table 1 machine.
	macsPerWaveIter := uint64(gemmMT * gemmNT * d.KT / waves)
	valuInstrs := int(macsPerWaveIter) / 64 * d.OverheadQ / 4
	if valuInstrs < 1 {
		valuInstrs = 1
	}
	burst := gpu.Compute{
		VectorOps: uint64(valuInstrs) * 64,
		Cycles:    event.Cycle(valuInstrs * d.ValuCycles),
	}

	// Lines in flight per wave per iteration, for the double-buffering
	// wait count: software pipelining overlaps iteration k+1's tile
	// loads with iteration k's MAC burst, as MIOpenGEMM kernels do.
	bLinesPerRow := (gemmNT*eb + mem.LineSize - 1) / mem.LineSize
	iterLines := rowsPerWave + bRowsPerWave*bLinesPerRow

	return gpu.Kernel{
		Name:       name,
		Workgroups: mTiles * nTiles,
		WavesPerWG: waves,
		SystemSync: sync,
		NewProgram: func(wg, wave int) gpu.Program {
			mi := wg / nTiles
			ni := wg % nTiles
			kt := 0
			step := 0
			stored := false
			return gpu.FuncProgram(func() (gpu.Instr, bool) {
				if kt < kIters {
					switch {
					case step == 0:
						step++
						// This wave's A-tile rows, KT elements
						// each, strided by the A pitch.
						return gpu.MemAccess{
							PC:        pcFor(name+".a", 10),
							Kind:      mem.Load,
							Base:      a + mem.Addr((mi*gemmMT+wave*rowsPerWave)*pitchA+kt*d.KT*eb),
							Stride:    int64(pitchA),
							Lanes:     rowsPerWave,
							ElemBytes: d.KT * eb,
						}, true
					case step <= bRowsPerWave:
						r := kt*d.KT + wave*bRowsPerWave + (step - 1)
						step++
						if r >= (kt+1)*d.KT {
							r = (kt+1)*d.KT - 1
						}
						// B-tile rows: contiguous NT-wide rows
						// shared with every workgroup in this
						// N-tile column — the cross-workgroup
						// reuse caching captures.
						return gpu.MemAccess{
							PC:        pcFor(name+".b", 20),
							Kind:      mem.Load,
							Base:      b + mem.Addr(r*pitchB+ni*gemmNT*eb),
							Stride:    int64(eb),
							Lanes:     gemmNT,
							ElemBytes: eb,
						}, true
					case step == bRowsPerWave+1:
						step++
						// Double buffering: wait only for the
						// previous iteration's tiles; this
						// iteration's loads stay in flight under
						// the MAC burst.
						return gpu.WaitCnt{Max: iterLines}, true
					case step == bRowsPerWave+2:
						step++
						return gpu.LDS{Cycles: 8}, true
					case step == bRowsPerWave+3:
						step++
						return gpu.Barrier{}, true
					default:
						step = 0
						kt++
						return burst, true
					}
				}
				if !stored {
					stored = true
					// Store this wave's C-tile rows in one scatter.
					rowBytes := gemmNT * eb
					return gpu.MemAccess{
						PC:        pcFor(name+".c", 40),
						Kind:      mem.Store,
						Base:      c + mem.Addr((mi*gemmMT+wave*rowsPerWave)*pitchC+ni*gemmNT*eb),
						Stride:    int64(pitchC),
						Lanes:     rowsPerWave,
						ElemBytes: rowBytes,
					}, true
				}
				return nil, false
			})
		},
	}
}

// scaledDim scales a matrix dimension to a multiple of the tile size.
func scaledDim(n int, s Scale, tile int) int {
	v := int(float64(n) * float64(s))
	if v < tile {
		return tile
	}
	return (v + tile - 1) / tile * tile
}

func specSGEMM() Spec {
	return Spec{
		Name: "SGEMM", Suite: "DeepBench", Class: Insensitive,
		PaperFootprint: "68 MB", PaperInput: "4Kx128x4K",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			d := gemmDims{M: scaledDim(2048, s, gemmMT), N: 128,
				K: scaledDim(2048, s, 16), Waves: 8,
				ElemBytes: 4, ValuCycles: 4}
			al := newAlloc()
			a := al.buf(operandBytes(d.M, d.K, d.ElemBytes))
			b := al.buf(operandBytes(d.K, d.N, d.ElemBytes))
			c := al.buf(operandBytes(d.M, d.N, d.ElemBytes))
			k := gemmKernel("SGEMM", d, a, b, c, false)
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: al.used()}
		},
	}
}

func specDGEMM() Spec {
	return Spec{
		Name: "DGEMM", Suite: "DeepBench", Class: Insensitive,
		PaperFootprint: "132 MB", PaperInput: "4Kx128x4K",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			d := gemmDims{M: scaledDim(2048, s, gemmMT), N: 128,
				K: scaledDim(1024, s, 16), Waves: 8,
				ElemBytes: 8, ValuCycles: 8}
			al := newAlloc()
			a := al.buf(operandBytes(d.M, d.K, d.ElemBytes))
			b := al.buf(operandBytes(d.K, d.N, d.ElemBytes))
			c := al.buf(operandBytes(d.M, d.N, d.ElemBytes))
			k := gemmKernel("DGEMM", d, a, b, c, false)
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: al.used()}
		},
	}
}

func specFwFc() Spec {
	return Spec{
		Name: "FwFc", Suite: "DNNMark", Class: ReuseSensitive,
		PaperFootprint: "148.2 MB", PaperInput: "Batch size 512",
		UniqueKernels: 1, TotalKernels: 1,
		Build: func(s Scale) Workload {
			// out[batch][outN] = in[batch][inN] · W[inN][outN]:
			// thin K slabs make the layer memory bound uncached;
			// weight tiles re-read by every batch tile are the
			// high-connectivity reuse only caches capture.
			d := gemmDims{M: 1024, N: scaledDim(512, s, gemmNT),
				K: scaledDim(512, s, 16), KT: 4,
				ElemBytes: 4, ValuCycles: 4, OverheadQ: 5}
			al := newAlloc()
			in := al.buf(operandBytes(d.M, d.K, d.ElemBytes))
			w := al.buf(operandBytes(d.K, d.N, d.ElemBytes))
			out := al.buf(operandBytes(d.M, d.N, d.ElemBytes))
			k := gemmKernel("FwFc", d, in, w, out, false)
			return Workload{Kernels: []gpu.Kernel{k}, FootprintBytes: al.used()}
		},
	}
}
