package workloads

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/mem"
)

// FuzzWorkloadAddressStream fuzzes the workload generators over their
// shape parameters (which Table 2 benchmark, at what scale) and asserts
// the coalescer invariants every generated kernel must uphold:
//
//   - every kernel is well-formed (positive grid, a program builder),
//     so gpu.launch cannot panic on it;
//   - every memory instruction coalesces to at least one line (no
//     zero-length accesses);
//   - every coalesced line lies inside the workload's declared
//     footprint [heapBase, heapBase+FootprintBytes).
//
// Programs are sampled rather than exhausted — the first and last wave
// of each kernel, a bounded number of instructions each — so one fuzz
// execution stays fast at any scale.
func FuzzWorkloadAddressStream(f *testing.F) {
	f.Add(uint8(0), uint16(1000))
	f.Add(uint8(5), uint16(50))
	f.Add(uint8(16), uint16(2999))
	f.Add(uint8(255), uint16(0))
	specs := All()
	f.Fuzz(func(t *testing.T, widx uint8, scaleMilli uint16) {
		spec := specs[int(widx)%len(specs)]
		// Scale in (0, 3.0]: well below 0.001 every workload degenerates
		// to its minimum geometry, which is itself worth fuzzing.
		scale := Scale(float64(scaleMilli%3000+1) / 1000)
		w := spec.Build(scale)
		if w.Name != spec.Name {
			t.Fatalf("built workload is named %q, want %q", w.Name, spec.Name)
		}
		if len(w.Kernels) == 0 {
			t.Fatalf("%s@%g built no kernels", spec.Name, scale)
		}
		if w.FootprintBytes == 0 {
			t.Fatalf("%s@%g declares an empty footprint", spec.Name, scale)
		}
		limit := heapBase + mem.Addr(w.FootprintBytes)
		for ki := range w.Kernels {
			k := &w.Kernels[ki]
			if k.Workgroups <= 0 || k.WavesPerWG <= 0 || k.NewProgram == nil {
				t.Fatalf("%s@%g kernel %q is malformed: %d WGs × %d waves",
					spec.Name, scale, k.Name, k.Workgroups, k.WavesPerWG)
			}
			// Sample the two extreme waves of the grid; their chunk
			// arithmetic covers the first and the remainder-carrying
			// last slice of the element range.
			waves := [][2]int{{0, 0}, {k.Workgroups - 1, k.WavesPerWG - 1}}
			for _, wv := range waves {
				checkProgram(t, spec.Name, k, k.NewProgram(wv[0], wv[1]), limit)
			}
		}
	})
}

// checkProgram walks up to a bounded number of instructions of one
// wavefront program, asserting the memory-access invariants.
func checkProgram(t *testing.T, name string, k *gpu.Kernel, p gpu.Program, limit mem.Addr) {
	t.Helper()
	const maxInstrs = 4096
	var lines []mem.Addr
	for n := 0; n < maxInstrs; n++ {
		ins, ok := p.Next()
		if !ok {
			return
		}
		ma, ok := ins.(gpu.MemAccess)
		if !ok {
			continue
		}
		lines = ma.AppendLines(lines[:0])
		if len(lines) == 0 {
			t.Fatalf("%s kernel %q: zero-length access %+v", name, k.Name, ma)
		}
		for _, la := range lines {
			if la < heapBase || la+mem.LineSize > limit {
				t.Fatalf("%s kernel %q: line %#x of %+v outside footprint [%#x, %#x)",
					name, k.Name, uint64(la), ma, uint64(heapBase), uint64(limit))
			}
		}
	}
}
