package workloads

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/mem"
)

const testScale = Scale(0.05)

func TestAllSeventeenWorkloads(t *testing.T) {
	specs := All()
	if len(specs) != 17 {
		t.Fatalf("len(All()) = %d, want 17 (Table 2)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate workload %q", s.Name)
		}
		seen[s.Name] = true
		if s.Build == nil {
			t.Errorf("%s has no builder", s.Name)
		}
		if s.UniqueKernels <= 0 || s.TotalKernels < s.UniqueKernels {
			t.Errorf("%s kernel counts invalid: %d/%d", s.Name, s.UniqueKernels, s.TotalKernels)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("FwAct")
	if err != nil || s.Name != "FwAct" {
		t.Fatalf("ByName(FwAct) = %v, %v", s.Name, err)
	}
	if _, err := ByName("NoSuch"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestTable2KernelCounts(t *testing.T) {
	// Table 2's launch counts are structural properties of the
	// generators — check the multi-kernel workloads exactly.
	want := map[string]int{
		"CM":       130,
		"FwLSTM":   150,
		"FwGRU":    150,
		"FwBwLSTM": 363,
		"FwBwGRU":  363,
		"FwAct":    1,
		"SGEMM":    1,
	}
	for name, n := range want {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		w := spec.Build(testScale)
		if len(w.Kernels) != n {
			t.Errorf("%s built %d kernels, want %d", name, len(w.Kernels), n)
		}
		if spec.TotalKernels != n {
			t.Errorf("%s spec says %d kernels, want %d", name, spec.TotalKernels, n)
		}
	}
}

// drainProgram pulls every instruction of a program, with a generous
// bound against runaway generators.
func drainProgram(t *testing.T, p gpu.Program, bound int) []gpu.Instr {
	t.Helper()
	var out []gpu.Instr
	for i := 0; i < bound; i++ {
		ins, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, ins)
	}
	t.Fatalf("program exceeded %d instructions", bound)
	return nil
}

func TestEveryWorkloadProgramsAreWellFormed(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			w := spec.Build(testScale)
			if len(w.Kernels) == 0 {
				t.Fatal("no kernels")
			}
			if w.FootprintBytes == 0 {
				t.Fatal("zero footprint")
			}
			for ki := range w.Kernels {
				k := &w.Kernels[ki]
				if k.Workgroups <= 0 || k.WavesPerWG <= 0 {
					t.Fatalf("kernel %s has empty grid", k.Name)
				}
				if k.WavesPerWG > 40 {
					t.Fatalf("kernel %s: %d waves/WG exceeds CU capacity", k.Name, k.WavesPerWG)
				}
				// Drain one representative wavefront per kernel and
				// validate its instructions.
				instrs := drainProgram(t, k.NewProgram(0, 0), 1_000_000)
				sawMem := false
				for _, ins := range instrs {
					if ma, ok := ins.(gpu.MemAccess); ok {
						sawMem = true
						if len(ma.Lines()) == 0 {
							t.Fatalf("kernel %s: empty access", k.Name)
						}
						if ma.Kind != mem.Load && ma.Kind != mem.Store {
							t.Fatalf("kernel %s: bad kind", k.Name)
						}
					}
				}
				if !sawMem && ki == 0 {
					t.Fatalf("kernel %s wave 0 touches no memory", k.Name)
				}
			}
		})
	}
}

func TestFwActCoversEveryElementOnce(t *testing.T) {
	spec, _ := ByName("FwAct")
	w := spec.Build(testScale)
	k := &w.Kernels[0]
	loadLines := map[mem.Addr]int{}
	storeLines := map[mem.Addr]int{}
	for wg := 0; wg < k.Workgroups; wg++ {
		for wave := 0; wave < k.WavesPerWG; wave++ {
			for _, ins := range drainProgram(t, k.NewProgram(wg, wave), 1_000_000) {
				ma, ok := ins.(gpu.MemAccess)
				if !ok {
					continue
				}
				for _, la := range ma.Lines() {
					if ma.Kind == mem.Load {
						loadLines[la]++
					} else {
						storeLines[la]++
					}
				}
			}
		}
	}
	if len(loadLines) == 0 || len(loadLines) != len(storeLines) {
		t.Fatalf("load lines %d vs store lines %d", len(loadLines), len(storeLines))
	}
	for la, n := range loadLines {
		if n != 1 {
			t.Fatalf("line %#x loaded %d times; FwAct must stream", uint64(la), n)
		}
	}
}

func TestFwSoftRereadsItsInput(t *testing.T) {
	spec, _ := ByName("FwSoft")
	w := spec.Build(testScale)
	k := &w.Kernels[0]
	counts := map[mem.Addr]int{}
	for _, ins := range drainProgram(t, k.NewProgram(0, 0), 100_000) {
		if ma, ok := ins.(gpu.MemAccess); ok && ma.Kind == mem.Load {
			for _, la := range ma.Lines() {
				counts[la]++
			}
		}
	}
	for la, n := range counts {
		if n != 3 {
			t.Fatalf("softmax line %#x loaded %d times, want 3 passes", uint64(la), n)
		}
	}
}

func TestMultiPassKernelRevisitsChunk(t *testing.T) {
	var visits []int
	k := multiPassKernel("mp", 256, 1, 1, false, []func(int) []gpu.Instr{
		func(base int) []gpu.Instr {
			visits = append(visits, base)
			return []gpu.Instr{compute(1)}
		},
		func(base int) []gpu.Instr {
			visits = append(visits, base+1_000_000)
			return []gpu.Instr{compute(1)}
		},
	})
	drainProgram(t, k.NewProgram(0, 0), 10_000)
	if len(visits) != 8 {
		t.Fatalf("visits = %d, want 8 (4 chunks × 2 passes)", len(visits))
	}
	for i := 0; i < 4; i++ {
		if visits[i] != i*64 {
			t.Fatalf("pass 1 visits = %v", visits[:4])
		}
		if visits[4+i] != i*64+1_000_000 {
			t.Fatalf("pass 2 visits = %v", visits[4:])
		}
	}
}

func TestChunkedKernelPartitionsWithoutOverlap(t *testing.T) {
	const elems = 64 * 37
	k := chunkedKernel("ck", elems, 5, 2, false, func(base int) []gpu.Instr {
		return []gpu.Instr{loadAt(1, 0x1000_0000, base)}
	})
	seen := map[int]bool{}
	total := 0
	for wg := 0; wg < 5; wg++ {
		for wv := 0; wv < 2; wv++ {
			for _, ins := range drainProgram(t, k.NewProgram(wg, wv), 10_000) {
				ma := ins.(gpu.MemAccess)
				base := int(ma.Base-0x1000_0000) / 4
				if seen[base] {
					t.Fatalf("chunk %d processed twice", base)
				}
				seen[base] = true
				total++
			}
		}
	}
	if total != 37 {
		t.Fatalf("chunks processed = %d, want 37", total)
	}
}

func TestGemmTileReuseStructure(t *testing.T) {
	// Two workgroups in the same N-tile column must load identical B
	// lines (the cross-WG reuse the caches capture).
	d := gemmDims{M: 128, N: 64, K: 64, ElemBytes: 4, ValuCycles: 4}
	k := gemmKernel("g", d, 0x1000_0000, 0x2000_0000, 0x3000_0000, false)
	bLines := func(wg int) map[mem.Addr]bool {
		out := map[mem.Addr]bool{}
		for _, ins := range drainProgram(t, k.NewProgram(wg, 0), 100_000) {
			if ma, ok := ins.(gpu.MemAccess); ok && ma.Kind == mem.Load && ma.Base >= 0x2000_0000 && ma.Base < 0x3000_0000 {
				for _, la := range ma.Lines() {
					out[la] = true
				}
			}
		}
		return out
	}
	// M=128 → 2 M-tiles, N=64 → 1 N-tile: WGs 0 and 1 share B.
	b0, b1 := bLines(0), bLines(1)
	if len(b0) == 0 || len(b0) != len(b1) {
		t.Fatalf("B line sets differ in size: %d vs %d", len(b0), len(b1))
	}
	for la := range b0 {
		if !b1[la] {
			t.Fatalf("workgroups do not share B line %#x", uint64(la))
		}
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	spec, _ := ByName("FwAct")
	small := spec.Build(0.05)
	big := spec.Build(0.5)
	if small.FootprintBytes >= big.FootprintBytes {
		t.Fatalf("scale did not grow footprint: %d vs %d", small.FootprintBytes, big.FootprintBytes)
	}
}

func TestFootprintRegimes(t *testing.T) {
	// The classification depends on footprint vs cache capacity
	// (L1 16 KB, L2 4 MB): softmax fits in an L1; BwBN is L2-scale;
	// the activations dwarf the L2. Verify at default scale.
	const l1 = 16 << 10
	const l2 = 4 << 20
	fwSoft, _ := ByName("FwSoft")
	if fp := fwSoft.Build(1).FootprintBytes; fp > 2*l1 {
		t.Errorf("FwSoft footprint %d should be L1-resident scale", fp)
	}
	bwBN, _ := ByName("BwBN")
	if fp := bwBN.Build(1).FootprintBytes; fp < l2 || fp > 4*l2 {
		t.Errorf("BwBN footprint %d should be L2-scale (~%d)", fp, l2)
	}
	fwAct, _ := ByName("FwAct")
	if fp := fwAct.Build(1).FootprintBytes; fp < 2*l2 {
		t.Errorf("FwAct footprint %d must exceed the L2 severalfold", fp)
	}
}

func TestPCsAreStableAndDistinct(t *testing.T) {
	a := pcFor("FwAct.x", 0)
	b := pcFor("FwAct.x", 0)
	c := pcFor("FwAct.y", 1)
	if a != b {
		t.Fatal("pcFor not deterministic")
	}
	if a == c {
		t.Fatal("distinct roles collide")
	}
}

func TestAllocatorSeparatesBuffers(t *testing.T) {
	a := newAlloc()
	b1 := a.buf(100)
	b2 := a.buf(100)
	if b2 <= b1 || uint64(b2-b1) < 100 {
		t.Fatal("buffers overlap")
	}
	if uint64(b1)%allocAlign != 0 || uint64(b2)%allocAlign != 0 {
		t.Fatal("buffers not aligned")
	}
	if a.used() == 0 {
		t.Fatal("used() not tracking")
	}
}

func TestClassStrings(t *testing.T) {
	if Insensitive.String() == "" || ReuseSensitive.String() == "" || ThroughputSensitive.String() == "" {
		t.Fatal("empty class strings")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should format")
	}
}
