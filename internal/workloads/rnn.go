package workloads

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/mem"
)

// --- DeepBench / MIOpen-benchmark RNNs ---
//
// LSTM and GRU cells at the paper's configuration (batch 1, sequence
// length 16, hidden size 128). Each timestep launches a small gate GEMM
// (gates = W · [x;h]) followed by elementwise gate activations and
// pointwise state updates — Table 2's 150 kernels for forward, 363 for
// forward+backward.
//
// The cache-relevant structure: the concatenated input vector is
// broadcast to every output neuron (within-kernel reuse caching turns
// into hits), weights stream once per step (self-invalidation at kernel
// boundaries prevents cross-step weight reuse, as on the real machine),
// and the backward pass re-reads forward-saved gate activations and
// accumulates weight gradients into the same buffer every step — traffic
// that L2 write combining (CacheRW) keeps on chip, which is why the
// FwBw variants are the paper's biggest CacheRW winners.

type rnnParams struct {
	name     string
	gates    int // 4 for LSTM, 3 for GRU
	hidden   int
	seq      int
	backward bool
}

// rnnGateGEMM builds the per-step gate GEMM: out[gateW] = W[kW][gateW]·xh[kW].
func rnnGateGEMM(name string, kW, gateW int, w, xh, out mem.Addr, store bool) gpu.Kernel {
	const kt = 16
	if gateW%64 != 0 || kW%kt != 0 {
		panic("workloads: RNN gate GEMM needs 64-aligned widths: " + name)
	}
	kIters := kW / kt
	return gpu.Kernel{
		Name:       name,
		Workgroups: gateW / 64,
		WavesPerWG: 1,
		NewProgram: func(wg, wave int) gpu.Program {
			outBase := wg * 64
			ki := 0
			step := 0
			stored := false
			return gpu.FuncProgram(func() (gpu.Instr, bool) {
				if ki < kIters {
					switch {
					case step < kt:
						// One W row segment per k: 64
						// contiguous outputs.
						k := ki*kt + step
						step++
						return gpu.MemAccess{
							PC:     pcFor(name+".w", 10),
							Kind:   mem.Load,
							Base:   w + mem.Addr((k*gateW+outBase)*4),
							Stride: 4, Lanes: 64, ElemBytes: 4,
						}, true
					case step == kt:
						step++
						// Broadcast slice of xh shared by
						// every workgroup: the within-kernel
						// reuse that makes RNNs reuse
						// sensitive.
						return gpu.MemAccess{
							PC:     pcFor(name+".xh", 11),
							Kind:   mem.Load,
							Base:   xh + mem.Addr(ki*kt*4),
							Stride: 4, Lanes: kt, ElemBytes: 4,
						}, true
					case step == kt+1:
						step++
						return gpu.WaitCnt{Max: 0}, true
					default:
						step = 0
						ki++
						return compute(kt), true
					}
				}
				if store && !stored {
					stored = true
					return storeAt(pcFor(name+".out", 12), out, outBase), true
				}
				return nil, false
			})
		},
	}
}

// rnnVecKernel builds an elementwise kernel over an n-element vector.
func rnnVecKernel(name string, n int, loads []mem.Addr, dst mem.Addr, valu int) gpu.Kernel {
	return chunkedKernel(name, n, (n+63)/64, 1, false, func(base int) []gpu.Instr {
		instrs := make([]gpu.Instr, 0, len(loads)+3)
		for i, b := range loads {
			instrs = append(instrs, loadAt(pcFor(name, i), b, base))
		}
		instrs = append(instrs, gpu.WaitCnt{Max: 0}, compute(valu))
		if dst != 0 {
			instrs = append(instrs, storeAt(pcFor(name+".dst", 9), dst, base))
		}
		return instrs
	})
}

// rnnDWKernel accumulates the weight gradient: dW[k][out] += xh[k]·dg[out].
// Every step rewrites the same dW lines — the write-combining target.
func rnnDWKernel(name string, kW, gateW int, dW, xh, dg mem.Addr) gpu.Kernel {
	const kt = 16
	kIters := kW / kt
	return gpu.Kernel{
		Name:       name,
		Workgroups: gateW / 64,
		WavesPerWG: 1,
		NewProgram: func(wg, wave int) gpu.Program {
			outBase := wg * 64
			ki := 0
			step := 0
			return gpu.FuncProgram(func() (gpu.Instr, bool) {
				if ki >= kIters {
					return nil, false
				}
				switch {
				case step == 0:
					step++
					return loadAt(pcFor(name+".dg", 0), dg, outBase), true
				case step == 1:
					step++
					return gpu.MemAccess{
						PC:     pcFor(name+".xh", 1),
						Kind:   mem.Load,
						Base:   xh + mem.Addr(ki*kt*4),
						Stride: 4, Lanes: kt, ElemBytes: 4,
					}, true
				case step == 2:
					step++
					return gpu.WaitCnt{Max: 0}, true
				case step == 3:
					step++
					return compute(kt), true
				case step < 4+kt:
					k := ki*kt + (step - 4)
					step++
					return gpu.MemAccess{
						PC:     pcFor(name+".dw", 2),
						Kind:   mem.Store,
						Base:   dW + mem.Addr((k*gateW+outBase)*4),
						Stride: 4, Lanes: 64, ElemBytes: 4,
					}, true
				default:
					step = 0
					ki++
					return gpu.WaitCnt{Max: 8}, true
				}
			})
		},
	}
}

func buildRNN(p rnnParams, s Scale) Workload {
	h := scaled(p.hidden, s, 64)
	gateW := p.gates * h
	kW := 2 * h
	seq := p.seq

	al := newAlloc()
	w := al.buf(uint64(kW * gateW * 4))
	xh := al.buf(uint64(kW * 4))
	gatesRaw := al.buf(uint64(gateW * 4))
	// Per-step saved activations (consumed by backward).
	gatesAct := make([]mem.Addr, seq)
	hState := make([]mem.Addr, seq)
	for t := 0; t < seq; t++ {
		gatesAct[t] = al.buf(uint64(gateW * 4))
		hState[t] = al.buf(uint64(h * 4))
	}

	var kernels []gpu.Kernel
	// Prologue: 6 small setup kernels (embedding lookup, state init).
	for i := 0; i < 6; i++ {
		kernels = append(kernels,
			rnnVecKernel(fmt.Sprintf("%s.init%d", p.name, i), kW, []mem.Addr{xh}, xh, 1))
	}

	// Forward: 9 kernels per step → 6 + 9×16 = 150 launches.
	actSplit := gateW / p.gates // per-gate vector width
	for t := 0; t < seq; t++ {
		kernels = append(kernels,
			rnnGateGEMM(p.name+".gemm", kW, gateW, w, xh, gatesRaw, true))
		for g := 0; g < 3; g++ { // sigmoid gates
			kernels = append(kernels,
				rnnVecKernel(p.name+".sig", actSplit, []mem.Addr{gatesRaw}, gatesAct[t], 2))
		}
		kernels = append(kernels, // tanh gate / candidate
			rnnVecKernel(p.name+".tanh", actSplit, []mem.Addr{gatesRaw}, gatesAct[t], 2))
		for i := 0; i < 4; i++ { // pointwise state updates
			kernels = append(kernels,
				rnnVecKernel(p.name+".pw", h, []mem.Addr{gatesAct[t], hState[t]}, hState[t], 1))
		}
	}

	if p.backward {
		dW := al.buf(uint64(kW * gateW * 4))
		dg := al.buf(uint64(gateW * 4))
		dh := al.buf(uint64(h * 4))
		// Backward: 13 kernels per step + 5 epilogue → 208 + 5; with
		// the forward 150 this gives Table 2's 363 launches.
		for t := seq - 1; t >= 0; t-- {
			// Gradient through the gate GEMM (transposed weights).
			kernels = append(kernels,
				rnnGateGEMM(p.name+".gemmT", kW, gateW, w, dh, dg, true))
			// Weight gradient accumulation into the same dW buffer
			// every step: CacheRW's biggest win.
			kernels = append(kernels,
				rnnDWKernel(p.name+".dw", kW, gateW, dW, xh, dg))
			for g := 0; g < 3; g++ { // sigmoid backward
				kernels = append(kernels,
					rnnVecKernel(p.name+".sigbw", actSplit,
						[]mem.Addr{gatesAct[t], dg}, dg, 2))
			}
			kernels = append(kernels, // tanh backward
				rnnVecKernel(p.name+".tanhbw", actSplit,
					[]mem.Addr{gatesAct[t], dg}, dg, 2))
			for i := 0; i < 7; i++ { // pointwise state gradients
				kernels = append(kernels,
					rnnVecKernel(p.name+".pwbw", h,
						[]mem.Addr{gatesAct[t], hState[t], dh}, dh, 1))
			}
		}
		for i := 0; i < 5; i++ { // epilogue reductions
			kernels = append(kernels,
				rnnVecKernel(fmt.Sprintf("%s.fin%d", p.name, i), h, []mem.Addr{dh}, dh, 1))
		}
	}

	return Workload{Kernels: kernels, FootprintBytes: al.used()}
}

func specFwLSTM() Spec {
	return Spec{
		Name: "FwLSTM", Suite: "DeepBench", Class: ReuseSensitive,
		PaperFootprint: "0.38 MB",
		PaperInput:     "Batch 1, seq 16, hidden 128, LSTM",
		UniqueKernels:  4, TotalKernels: 150,
		Build: func(s Scale) Workload {
			return buildRNN(rnnParams{name: "FwLSTM", gates: 4, hidden: 128, seq: 16}, s)
		},
	}
}

func specFwGRU() Spec {
	return Spec{
		Name: "FwGRU", Suite: "DeepBench", Class: ReuseSensitive,
		PaperFootprint: "0.38 MB",
		PaperInput:     "Batch 1, seq 16, hidden 128, GRU",
		UniqueKernels:  4, TotalKernels: 150,
		Build: func(s Scale) Workload {
			return buildRNN(rnnParams{name: "FwGRU", gates: 3, hidden: 128, seq: 16}, s)
		},
	}
}

func specFwBwLSTM() Spec {
	return Spec{
		Name: "FwBwLSTM", Suite: "DeepBench", Class: ReuseSensitive,
		PaperFootprint: "0.48 MB",
		PaperInput:     "Batch 1, seq 16, hidden 128, LSTM",
		UniqueKernels:  6, TotalKernels: 363,
		Build: func(s Scale) Workload {
			return buildRNN(rnnParams{name: "FwBwLSTM", gates: 4, hidden: 128, seq: 16, backward: true}, s)
		},
	}
}

func specFwBwGRU() Spec {
	return Spec{
		Name: "FwBwGRU", Suite: "DeepBench", Class: ReuseSensitive,
		PaperFootprint: "0.48 MB",
		PaperInput:     "Batch 1, seq 16, hidden 128, GRU",
		UniqueKernels:  6, TotalKernels: 363,
		Build: func(s Scale) Workload {
			return buildRNN(rnnParams{name: "FwBwGRU", gates: 3, hidden: 128, seq: 16, backward: true}, s)
		},
	}
}
