package workloads

import (
	"repro/internal/gpu"
	"repro/internal/mem"
)

// --- Composed Model (DNNMark) ---
//
// CM chains convolution (im2col GEMM), batch normalization, activation
// and pooling layers into one multi-kernel network: 130 kernel launches
// of 4 unique kernels (Table 2). Its footprint is small (~12 MB) and its
// per-kernel memory demand is tiny next to its convolution compute, so —
// as the paper observes — caching raises its measured reuse substantially
// (intermediate activations written by one layer are read by the next
// from the L2 under CacheRW) without moving execution time at all.

func specCM() Spec {
	return Spec{
		Name: "CM", Suite: "DNNMark", Class: Insensitive,
		PaperFootprint: "12.1 MB", PaperInput: "Batch size 64",
		UniqueKernels: 4, TotalKernels: 130,
		Build: func(s Scale) Workload {
			// Activations per layer: small enough that convolution
			// compute dominates end-to-end time (the paper finds CM
			// insensitive because its memory demand is tiny).
			n := scaled(8_192, s, 64)
			al := newAlloc()
			// Each layer has its own activation buffers, as in the
			// real network — the total footprint (~paper's 12.1 MB)
			// exceeds the L2 so write-combined data ages out
			// naturally instead of staying resident forever.
			const ewPairs = 8
			bufs := make([]mem.Addr, 2*ewPairs)
			for i := range bufs {
				bufs[i] = al.buf(uint64(n) * 4)
			}
			// im2col convolution GEMM: output pixels × output
			// channels, K = 3×3×16 input patch.
			conv := gemmDims{M: 512, N: 128, K: 288, ElemBytes: 4, ValuCycles: 4}
			cw := al.buf(operandBytes(conv.K, conv.N, conv.ElemBytes))
			cin := al.buf(operandBytes(conv.M, conv.K, conv.ElemBytes))
			couts := make([]mem.Addr, 33)
			for i := range couts {
				couts[i] = al.buf(operandBytes(conv.M, conv.N, conv.ElemBytes))
			}

			bn := func(in, out int) gpu.Kernel {
				src, dst := bufs[in], bufs[out]
				return multiPassKernel("CM.bn", n, gridFor(n, 4, 1), 4, false,
					[]func(int) []gpu.Instr{
						func(base int) []gpu.Instr {
							return []gpu.Instr{
								loadAt(pcFor("CM.bn.mean", 0), src, base),
								gpu.WaitCnt{Max: 0},
								compute(1),
							}
						},
						func(base int) []gpu.Instr {
							return []gpu.Instr{
								loadAt(pcFor("CM.bn.norm", 1), src, base),
								gpu.WaitCnt{Max: 0},
								compute(2),
								storeAt(pcFor("CM.bn.y", 2), dst, base),
							}
						},
					})
			}
			act := func(in, out int) gpu.Kernel {
				src, dst := bufs[in], bufs[out]
				return chunkedKernel("CM.act", n, gridFor(n, 4, 1), 4, false,
					func(base int) []gpu.Instr {
						return []gpu.Instr{
							loadAt(pcFor("CM.act.x", 0), src, base),
							gpu.WaitCnt{Max: 0},
							compute(1),
							storeAt(pcFor("CM.act.y", 1), dst, base),
						}
					})
			}
			pool := func(in, out int) gpu.Kernel {
				src, dst := bufs[in], bufs[out]
				return chunkedKernel("CM.pool", n/4, gridFor(n/4, 4, 1), 4, false,
					func(base int) []gpu.Instr {
						return []gpu.Instr{
							loadAt(pcFor("CM.pool.a", 0), src, 4*base),
							loadAt(pcFor("CM.pool.b", 1), src, 4*base+128),
							gpu.WaitCnt{Max: 0},
							compute(1),
							storeAt(pcFor("CM.pool.y", 2), dst, base),
						}
					})
			}

			var kernels []gpu.Kernel
			// 33 conv + 33 bn + 32 act + 32 pool = 130 launches,
			// rotating activation buffers layer to layer.
			for i := 0; i < 33; i++ {
				p := (i % ewPairs) * 2
				kernels = append(kernels,
					gemmKernel("CM.conv", conv, cin, cw, couts[i], false),
					bn(p, p+1))
				if i < 32 {
					kernels = append(kernels, act(p+1, p), pool(p, p+1))
				}
			}
			return Workload{Kernels: kernels, FootprintBytes: al.used()}
		},
	}
}
