package cache

import (
	"testing"

	"repro/internal/event"
	"repro/internal/mem"
)

// fakeMem is a Port that responds to loads after a fixed latency and acks
// stores after a (possibly different) latency. It records the order in
// which requests arrive.
type fakeMem struct {
	sim      *event.Sim
	loadLat  event.Cycle
	storeLat event.Cycle
	arrived  []mem.Request // value copies: the cache recycles its forwards after Done
}

func newFakeMem(sim *event.Sim, lat event.Cycle) *fakeMem {
	return &fakeMem{sim: sim, loadLat: lat, storeLat: lat}
}

func (f *fakeMem) Submit(req *mem.Request) {
	f.arrived = append(f.arrived, *req)
	lat := f.loadLat
	if req.Kind == mem.Store {
		lat = f.storeLat
	}
	if req.Done != nil {
		f.sim.Schedule(lat, req.Done)
	}
}

func (f *fakeMem) count(k mem.Kind) int {
	n := 0
	for _, r := range f.arrived {
		if r.Kind == k {
			n++
		}
	}
	return n
}

func testConfig() Config {
	return Config{
		Name: "L1", Sets: 4, Ways: 2,
		HitLatency: 10, LookupLatency: 2, FillLatency: 2,
		MSHRs: 8, BypassEntries: 64, PortsPerCycle: 4,
	}
}

func run(t *testing.T, sim *event.Sim) {
	t.Helper()
	sim.Run()
}

func load(id uint64, line mem.Addr, done func()) *mem.Request {
	return &mem.Request{ID: id, Line: line, Kind: mem.Load, Done: done}
}

func store(id uint64, line mem.Addr, done func()) *mem.Request {
	return &mem.Request{ID: id, Line: line, Kind: mem.Store, Done: done}
}

func TestColdMissThenHit(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 100)
	c := New(testConfig(), sim, lower)

	var t1, t2 event.Cycle
	c.Submit(load(1, 0x1000, func() { t1 = sim.Now() }))
	run(t, sim)
	if c.Stats.Misses != 1 || c.Stats.Hits != 0 {
		t.Fatalf("after cold access: %+v", c.Stats)
	}
	if t1 < 100 {
		t.Fatalf("miss completed at %d, faster than memory latency", t1)
	}

	base := sim.Now()
	c.Submit(load(2, 0x1000, func() { t2 = sim.Now() }))
	run(t, sim)
	if c.Stats.Hits != 1 {
		t.Fatalf("expected hit: %+v", c.Stats)
	}
	if got := t2 - base; got != 10 {
		t.Fatalf("hit latency = %d, want 10", got)
	}
	if lower.count(mem.Load) != 1 {
		t.Fatalf("memory saw %d loads, want 1", lower.count(mem.Load))
	}
}

func TestMSHRCoalescing(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 100)
	c := New(testConfig(), sim, lower)

	done := 0
	for i := 0; i < 5; i++ {
		c.Submit(load(uint64(i), 0x2000, func() { done++ }))
	}
	run(t, sim)
	if done != 5 {
		t.Fatalf("completed %d of 5 loads", done)
	}
	if lower.count(mem.Load) != 1 {
		t.Fatalf("memory saw %d loads, want 1 (coalesced)", lower.count(mem.Load))
	}
	if c.Stats.Misses != 1 || c.Stats.Coalesced != 4 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 50)
	cfg := testConfig()
	cfg.Sets, cfg.Ways = 1, 2 // tiny: force eviction on 3rd distinct line
	c := New(cfg, sim, lower)

	lines := []mem.Addr{0x0, 0x40, 0x80}
	for i, la := range lines {
		c.Submit(load(uint64(i), la, nil))
		run(t, sim)
	}
	// 0x0 was LRU and must be gone; 0x40, 0x80 resident.
	c.Submit(load(10, 0x40, nil))
	run(t, sim)
	c.Submit(load(11, 0x0, nil))
	run(t, sim)
	if c.Stats.Hits != 1 {
		t.Fatalf("hits = %d, want 1 (0x40 resident, 0x0 evicted)", c.Stats.Hits)
	}
	if c.Stats.Misses != 4 {
		t.Fatalf("misses = %d, want 4", c.Stats.Misses)
	}
}

func TestBlockingAllocationStalls(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 200)
	cfg := testConfig()
	cfg.Sets, cfg.Ways = 1, 2
	cfg.MSHRs = 8
	c := New(cfg, sim, lower)

	// Two misses fill both ways with pending fills; the third load to a
	// different line must stall until a fill completes.
	var done3 event.Cycle
	c.Submit(load(1, 0x000, nil))
	c.Submit(load(2, 0x040, nil))
	c.Submit(load(3, 0x080, func() { done3 = sim.Now() }))
	run(t, sim)
	if c.Stats.Stalls == 0 {
		t.Fatal("expected allocation stalls")
	}
	if done3 < 400 {
		t.Fatalf("blocked load finished at %d; it cannot start before a fill at ~200", done3)
	}
}

func TestAllocationBypassAvoidsStall(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 200)
	cfg := testConfig()
	cfg.Sets, cfg.Ways = 1, 2
	cfg.AllocBypass = true
	c := New(cfg, sim, lower)

	var done3 event.Cycle
	c.Submit(load(1, 0x000, nil))
	c.Submit(load(2, 0x040, nil))
	c.Submit(load(3, 0x080, func() { done3 = sim.Now() }))
	run(t, sim)
	if c.Stats.Stalls != 0 {
		t.Fatalf("stalls = %d, want 0 with allocation bypass", c.Stats.Stalls)
	}
	if c.Stats.AllocBypass != 1 {
		t.Fatalf("alloc bypasses = %d, want 1", c.Stats.AllocBypass)
	}
	if done3 > 250 {
		t.Fatalf("bypassed load finished at %d; should be ~memory latency", done3)
	}
}

func TestStoreBypassWhenNoStoreAllocate(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 50)
	c := New(testConfig(), sim, lower) // StoreAllocate=false (L1 behaviour)

	acked := false
	c.Submit(store(1, 0x3000, func() { acked = true }))
	run(t, sim)
	if !acked {
		t.Fatal("store never acked")
	}
	if c.Stats.Bypasses != 1 {
		t.Fatalf("bypasses = %d, want 1", c.Stats.Bypasses)
	}
	if lower.count(mem.Store) != 1 {
		t.Fatal("store did not reach memory")
	}
	if c.ValidLines() != 0 {
		t.Fatal("store must not allocate when StoreAllocate=false")
	}
}

func TestStoreCombiningAllocates(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 50)
	cfg := testConfig()
	cfg.StoreAllocate = true
	c := New(cfg, sim, lower) // L2 under CacheRW

	for i := 0; i < 4; i++ {
		c.Submit(store(uint64(i), 0x4000, nil))
		run(t, sim)
	}
	if lower.count(mem.Store) != 0 {
		t.Fatalf("memory saw %d stores, want 0 (combined in cache)", lower.count(mem.Store))
	}
	if c.DirtyLines() != 1 {
		t.Fatalf("dirty lines = %d, want 1", c.DirtyLines())
	}
	if c.Stats.Hits != 3 || c.Stats.Misses != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 20)
	cfg := testConfig()
	cfg.Sets, cfg.Ways = 1, 1
	cfg.StoreAllocate = true
	c := New(cfg, sim, lower)

	c.Submit(store(1, 0x0, nil))
	run(t, sim)
	c.Submit(store(2, 0x40, nil)) // evicts dirty 0x0
	run(t, sim)
	if lower.count(mem.Store) != 1 {
		t.Fatalf("memory saw %d stores, want 1 writeback", lower.count(mem.Store))
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestBypassLoadCoalescing(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 100)
	c := New(testConfig(), sim, lower)

	done := 0
	for i := 0; i < 3; i++ {
		r := load(uint64(i), 0x5000, func() { done++ })
		r.Bypass = true
		c.Submit(r)
	}
	run(t, sim)
	if done != 3 {
		t.Fatalf("completed %d of 3", done)
	}
	if lower.count(mem.Load) != 1 {
		t.Fatalf("memory saw %d loads, want 1 (bypass coalescing)", lower.count(mem.Load))
	}
	if c.ValidLines() != 0 {
		t.Fatal("bypass loads must not allocate")
	}
	if c.Stats.Bypasses != 1 || c.Stats.Coalesced != 2 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestInvalidateCleanDropsCleanKeepsDirty(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	cfg.StoreAllocate = true
	c := New(cfg, sim, lower)

	c.Submit(load(1, 0x0, nil))
	c.Submit(store(2, 0x1040, nil))
	run(t, sim)
	if c.ValidLines() != 2 {
		t.Fatalf("valid = %d, want 2", c.ValidLines())
	}
	c.InvalidateClean()
	if c.ValidLines() != 1 || c.DirtyLines() != 1 {
		t.Fatalf("after invalidate: valid=%d dirty=%d, want 1/1", c.ValidLines(), c.DirtyLines())
	}
	if c.Stats.Invalidates != 1 {
		t.Fatalf("invalidates = %d, want 1", c.Stats.Invalidates)
	}
}

func TestFlushDirtyWritesAllAndCompletes(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	cfg.StoreAllocate = true
	c := New(cfg, sim, lower)

	for i := 0; i < 5; i++ {
		c.Submit(store(uint64(i), mem.Addr(i*0x40), nil))
	}
	run(t, sim)
	flushed := false
	c.FlushDirty(func() { flushed = true })
	run(t, sim)
	if !flushed {
		t.Fatal("flush completion never fired")
	}
	if lower.count(mem.Store) != 5 {
		t.Fatalf("memory saw %d stores, want 5", lower.count(mem.Store))
	}
	if c.DirtyLines() != 0 || c.ValidLines() != 0 {
		t.Fatal("flush left resident lines")
	}
}

func TestFlushDirtyEmptyCompletesImmediately(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	c := New(testConfig(), sim, lower)
	flushed := false
	c.FlushDirty(func() { flushed = true })
	run(t, sim)
	if !flushed {
		t.Fatal("empty flush did not complete")
	}
}

func TestPortContentionCountsStalls(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	cfg.PortsPerCycle = 1
	c := New(cfg, sim, lower)

	// 4 requests in the same cycle through a 1-wide port: 0+1+2+3 stall
	// cycles in total.
	for i := 0; i < 4; i++ {
		c.Submit(load(uint64(i), mem.Addr(0x40*i), nil))
	}
	run(t, sim)
	if c.Stats.Stalls != 6 {
		t.Fatalf("stalls = %d, want 6", c.Stats.Stalls)
	}
}

func TestMSHRLimitStalls(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 100)
	cfg := testConfig()
	cfg.MSHRs = 2
	cfg.Sets, cfg.Ways = 4, 8
	c := New(cfg, sim, lower)

	done := 0
	for i := 0; i < 4; i++ {
		c.Submit(load(uint64(i), mem.Addr(0x40*i), func() { done++ }))
	}
	run(t, sim)
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	if c.Stats.Stalls == 0 {
		t.Fatal("expected MSHR stalls")
	}
	if c.PendingMisses() != 0 {
		t.Fatal("MSHRs leaked")
	}
}

func TestStoreToPendingLineWaitsForFill(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 100)
	cfg := testConfig()
	cfg.StoreAllocate = true
	c := New(cfg, sim, lower)

	var loadDone, storeDone event.Cycle
	c.Submit(load(1, 0x6000, func() { loadDone = sim.Now() }))
	c.Submit(store(2, 0x6000, func() { storeDone = sim.Now() }))
	run(t, sim)
	if storeDone < loadDone {
		t.Fatalf("store (%d) completed before the pending load fill (%d)", storeDone, loadDone)
	}
	if c.DirtyLines() != 1 {
		t.Fatal("store must leave the line dirty")
	}
}

func TestConfigValidation(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 1)
	bad := []Config{
		{Name: "a", Sets: 3, Ways: 1, MSHRs: 1, BypassEntries: 1, PortsPerCycle: 1},
		{Name: "b", Sets: 4, Ways: 0, MSHRs: 1, BypassEntries: 1, PortsPerCycle: 1},
		{Name: "c", Sets: 4, Ways: 1, MSHRs: 0, BypassEntries: 1, PortsPerCycle: 1},
		{Name: "d", Sets: 4, Ways: 1, MSHRs: 1, BypassEntries: 0, PortsPerCycle: 1},
		{Name: "e", Sets: 4, Ways: 1, MSHRs: 1, BypassEntries: 1, PortsPerCycle: 0},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %s: expected panic", cfg.Name)
				}
			}()
			New(cfg, sim, lower)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, uint64, uint64) {
		sim := event.New()
		lower := newFakeMem(sim, 37)
		cfg := testConfig()
		cfg.StoreAllocate = true
		c := New(cfg, sim, lower)
		for i := 0; i < 200; i++ {
			la := mem.Addr((i * 7 % 32) * 64)
			if i%3 == 0 {
				c.Submit(store(uint64(i), la, nil))
			} else {
				c.Submit(load(uint64(i), la, nil))
			}
			if i%10 == 9 {
				sim.RunUntil(sim.Now() + 5)
			}
		}
		sim.Run()
		return c.Stats.Hits, c.Stats.Misses, c.Stats.Stalls
	}
	h1, m1, s1 := runOnce()
	h2, m2, s2 := runOnce()
	if h1 != h2 || m1 != m2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", h1, m1, s1, h2, m2, s2)
	}
}

// TestCacheReset checks Reset returns a used cache to a cold, empty,
// zero-stats state that behaves like a fresh instance.
func TestCacheReset(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 20)
	c := New(testConfig(), sim, lower)

	// Warm the cache: a miss-fill, a hit, and a dirty store-combined line.
	cfgRW := testConfig()
	cfgRW.StoreAllocate = true
	d := New(cfgRW, sim, lower)
	c.Submit(load(1, 0x1000, nil))
	c.Submit(load(2, 0x1000, nil))
	d.Submit(store(3, 0x2000, nil))
	run(t, sim)
	if c.ValidLines() == 0 || d.DirtyLines() == 0 {
		t.Fatal("warm-up did not populate the caches")
	}

	c.Reset()
	d.Reset()
	if c.ValidLines() != 0 || c.PendingMisses() != 0 || d.DirtyLines() != 0 {
		t.Fatalf("reset cache not empty: valid=%d pending=%d dirty=%d",
			c.ValidLines(), c.PendingMisses(), d.DirtyLines())
	}
	if c.Stats.Hits != 0 || c.Stats.Misses != 0 || c.Stats.Stalls != 0 || d.Stats.Misses != 0 {
		t.Fatalf("reset stats not zeroed: %+v / %+v", c.Stats, d.Stats)
	}

	// The first access after reset behaves like a cold miss again.
	sim.Reset()
	before := lower.count(mem.Load)
	c.Submit(load(9, 0x1000, nil))
	run(t, sim)
	if c.Stats.Misses != 1 || c.Stats.Hits != 0 {
		t.Fatalf("post-reset access: hits=%d misses=%d, want a cold miss", c.Stats.Hits, c.Stats.Misses)
	}
	if lower.count(mem.Load) != before+1 {
		t.Fatal("post-reset miss did not fetch below")
	}
}
