package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Banked groups several Cache banks behind one Port, routing requests by
// line-address bank bits. The simulated GPU L2 (4 MB shared by 64 CUs,
// Table 1) is a Banked cache: banking provides the request throughput a
// single tag array could not.
type Banked struct {
	banks []*Cache
	// bankShift/bankMask are the precomputed bank-selection pair: the
	// per-request bankOf is one shift plus one and, with the per-bank
	// set-count division folded into the shift at construction.
	bankShift uint
	bankMask  mem.Addr
}

// NewBanked builds nBanks caches from cfg (each bank receives the full
// per-bank geometry given in cfg) over the shared lower level. nBanks must
// be a power of two.
func NewBanked(cfg Config, nBanks int, sim *event.Sim, lower Port) *Banked {
	if nBanks <= 0 || nBanks&(nBanks-1) != 0 {
		panic(fmt.Sprintf("cache %s: bank count must be a positive power of two, got %d", cfg.Name, nBanks))
	}
	b := &Banked{
		banks:    make([]*Cache, nBanks),
		bankMask: mem.Addr(nBanks - 1),
	}
	for i := range b.banks {
		c := cfg
		c.Name = fmt.Sprintf("%s.bank%d", cfg.Name, i)
		b.banks[i] = New(c, sim, lower)
	}
	b.bankShift = mem.LineShift + uint(bits.TrailingZeros(uint(cfg.Sets)))
	return b
}

// bankOf selects the bank for a line address. Bank bits sit directly above
// the set-index bits so that consecutive runs of sets spread across banks:
// bankShift strips the line offset and the per-bank set index in one
// shift, and the bank mask selects the bits directly above them.
func (b *Banked) bankOf(lineAddr mem.Addr) int {
	return int((lineAddr >> b.bankShift) & b.bankMask)
}

// Submit implements Port.
func (b *Banked) Submit(req *mem.Request) {
	b.banks[b.bankOf(req.Line)].Submit(req)
}

// InvalidateClean self-invalidates every bank.
func (b *Banked) InvalidateClean() {
	for _, c := range b.banks {
		c.InvalidateClean()
	}
}

// FlushDirty flushes every bank; done runs after all banks finish.
func (b *Banked) FlushDirty(done func()) {
	remaining := len(b.banks)
	for _, c := range b.banks {
		c.FlushDirty(func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
		})
	}
}

// Reset resets every bank (see Cache.Reset).
func (b *Banked) Reset() {
	for _, c := range b.banks {
		c.Reset()
	}
}

// Stats sums the banks' counters.
func (b *Banked) Stats() stats.CacheStats {
	var s stats.CacheStats
	for _, c := range b.banks {
		s.Add(c.Stats)
	}
	return s
}

// Banks exposes the underlying banks (tests and the harness's debugging).
func (b *Banked) Banks() []*Cache { return b.banks }

// BoundaryLatency declares the banked cache's minimum Submit-to-lower
// delay: all banks share one geometry, so any bank's bound is the
// whole cache's (see Cache.BoundaryLatency).
func (b *Banked) BoundaryLatency() event.Cycle { return b.banks[0].BoundaryLatency() }

// DirtyLines sums dirty lines over banks.
func (b *Banked) DirtyLines() int {
	n := 0
	for _, c := range b.banks {
		n += c.DirtyLines()
	}
	return n
}

// ValidLines sums valid lines over banks.
func (b *Banked) ValidLines() int {
	n := 0
	for _, c := range b.banks {
		n += c.ValidLines()
	}
	return n
}
