package cache

import (
	"math/rand"
	"testing"

	"repro/internal/event"
	"repro/internal/mem"
)

// TestRandomTrafficInvariants drives pseudo-random request streams
// through an L1→L2→memory stack under many configurations and checks the
// liveness and conservation invariants the simulator depends on:
// every request completes, accounting identities hold, and no dirty data
// survives a final flush.
func TestRandomTrafficInvariants(t *testing.T) {
	configs := []struct {
		name              string
		l1Sets, l1Ways    int
		l1MSHRs, l1Byp    int
		l2Store, allocByp bool
	}{
		{"tiny-blocking", 2, 2, 2, 2, true, false},
		{"tiny-ab", 2, 2, 2, 2, true, true},
		{"mshr-starved", 8, 4, 1, 1, true, false},
		{"store-through", 4, 4, 4, 4, false, false},
		{"roomy", 16, 16, 32, 64, true, true},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			sim := event.New()
			memPort := &fakeMem{sim: sim, loadLat: 80, storeLat: 40}
			l2 := New(Config{
				Name: "L2", Sets: 16, Ways: 4,
				HitLatency: 20, LookupLatency: 2, FillLatency: 2,
				MSHRs: 8, BypassEntries: 16, PortsPerCycle: 1,
				StoreAllocate: tc.l2Store, AllocBypass: tc.allocByp,
			}, sim, memPort)
			l1 := New(Config{
				Name: "L1", Sets: tc.l1Sets, Ways: tc.l1Ways,
				HitLatency: 5, LookupLatency: 1, FillLatency: 1,
				MSHRs: tc.l1MSHRs, BypassEntries: tc.l1Byp,
				PortsPerCycle: 1, AllocBypass: tc.allocByp,
			}, sim, l2)

			const total = 3000
			done := 0
			issued := 0
			var pump func()
			pump = func() {
				for burst := 0; burst < 8 && issued < total; burst++ {
					kind := mem.Load
					if rng.Intn(3) == 0 {
						kind = mem.Store
					}
					line := mem.Addr(rng.Intn(64) * 64)
					r := &mem.Request{
						ID: uint64(issued), Line: line, Kind: kind,
						Bypass: rng.Intn(8) == 0,
						Done:   func() { done++ },
					}
					issued++
					l1.Submit(r)
				}
				if issued < total {
					sim.Schedule(event.Cycle(rng.Intn(20)+1), pump)
				}
			}
			sim.Schedule(0, pump)
			sim.Run()
			if done != total {
				t.Fatalf("completed %d of %d requests (deadlock)", done, total)
			}
			if l1.PendingMisses() != 0 || l2.PendingMisses() != 0 {
				t.Fatal("MSHRs leaked")
			}
			// L1 accounting covers every submitted request.
			acc := l1.Stats.Accesses()
			if acc < total {
				t.Fatalf("L1 accounted %d of %d requests", acc, total)
			}
			// Stall attribution sums to the total.
			s := l1.Stats
			if s.StallPort+s.StallAlloc+s.StallMSHR+s.StallBypass+s.StallLine != s.Stalls {
				t.Fatalf("stall attribution does not sum: %+v", s)
			}
			// Flush leaves nothing dirty and completes.
			flushed := false
			l2.FlushDirty(func() { flushed = true })
			l1.FlushDirty(nil)
			sim.Run()
			if !flushed {
				t.Fatal("flush did not complete")
			}
			if l2.DirtyLines() != 0 {
				t.Fatal("dirty lines survived flush")
			}
			// Self-invalidation afterwards empties the caches.
			l1.InvalidateClean()
			l2.InvalidateClean()
			if l1.ValidLines() != 0 || l2.ValidLines() != 0 {
				t.Fatal("lines survived flush+invalidate")
			}
		})
	}
}

// TestRandomTrafficDeterminism re-runs an identical random schedule and
// requires identical statistics.
func TestRandomTrafficDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64, event.Cycle) {
		rng := rand.New(rand.NewSource(7))
		sim := event.New()
		memPort := &fakeMem{sim: sim, loadLat: 60, storeLat: 30}
		l2 := New(Config{Name: "L2", Sets: 8, Ways: 4, HitLatency: 20,
			LookupLatency: 2, FillLatency: 2, MSHRs: 4, BypassEntries: 8,
			PortsPerCycle: 1, StoreAllocate: true}, sim, memPort)
		l1 := New(Config{Name: "L1", Sets: 4, Ways: 2, HitLatency: 5,
			LookupLatency: 1, FillLatency: 1, MSHRs: 4, BypassEntries: 8,
			PortsPerCycle: 1}, sim, l2)
		for i := 0; i < 1000; i++ {
			kind := mem.Load
			if rng.Intn(2) == 0 {
				kind = mem.Store
			}
			r := &mem.Request{ID: uint64(i), Line: mem.Addr(rng.Intn(32) * 64), Kind: kind}
			at := event.Cycle(rng.Intn(500))
			sim.At(max(at, sim.Now()), func() { l1.Submit(r) })
		}
		sim.Run()
		return l1.Stats.Hits, l1.Stats.Stalls, l2.Stats.Writebacks, sim.Now()
	}
	h1, s1, w1, c1 := run()
	h2, s2, w2, c2 := run()
	if h1 != h2 || s1 != s2 || w1 != w2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			h1, s1, w1, c1, h2, s2, w2, c2)
	}
}

func max(a, b event.Cycle) event.Cycle {
	if a > b {
		return a
	}
	return b
}
