// Package cache implements the set-associative GPU caches (per-CU L1 and
// the banked, shared L2) used by the caching-policy study.
//
// The model reproduces the mechanisms the paper identifies as the sources
// of caching overhead in MI workloads:
//
//   - Blocking allocation: a missing request needs a victim way; if every
//     way in the target set holds a pending fill the request stalls until
//     a way frees (Section VI.C.1 of the paper). The allocation-bypass
//     optimization converts such requests to bypass requests instead.
//   - MSHR coalescing: misses to a line with a pending fill merge into the
//     existing MSHR; bypass loads to a pending bypass line merge likewise.
//   - Write combining: under CacheRW the L2 allocates store lines without
//     fetching and holds them dirty until a system-scope flush.
//   - Self-invalidation: valid clean data is dropped at kernel boundaries.
//
// Stall cycles are accounted exactly: a request blocked on ports, MSHRs,
// or allocation accumulates the real number of cycles it waited, matching
// the paper's definition ("any cycle in which a ready cache request is
// blocked from querying a cache at any level").
package cache

import (
	"fmt"

	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Port is any component that accepts line-granularity memory requests.
// Caches, the coherence directory, and the DRAM controller implement it.
type Port interface {
	Submit(req *mem.Request)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(req *mem.Request)

// Submit implements Port.
func (f PortFunc) Submit(req *mem.Request) { f(req) }

// Predictor decides, per static instruction (PC), whether a request should
// bypass this cache level. The PC-based L2 bypassing optimization
// (Tian et al. [54], applied at L2 per the paper) implements it in
// internal/policy.
type Predictor interface {
	// ShouldBypass reports whether the request at pc should skip
	// allocation at this level.
	ShouldBypass(pc uint64, kind mem.Kind) bool
	// OnHit notifies the predictor that a line allocated by pc was hit.
	OnHit(pc uint64)
	// OnEvict notifies the predictor that a line allocated by pc left
	// the cache, and whether it had been reused while resident.
	OnEvict(pc uint64, reused bool)
}

// Rinser is the dirty-block index used by row-locality-aware cache rinsing
// (Seshadri et al. [58]). The cache keeps it informed of dirty state and,
// on a dirty eviction, asks for the other dirty lines in the same DRAM row
// so they can be written back together.
type Rinser interface {
	OnDirty(line mem.Addr)
	OnClean(line mem.Addr)
	// RowMates returns the dirty lines sharing a DRAM row with line,
	// excluding line itself.
	RowMates(line mem.Addr) []mem.Addr
}

// Config parameterizes one cache instance.
type Config struct {
	// Name labels the instance in errors and debug output.
	Name string
	// Sets and Ways define the geometry. Lines are mem.LineSize bytes.
	Sets, Ways int
	// HitLatency is accept-to-response latency for a hit, in cycles.
	HitLatency event.Cycle
	// LookupLatency is the tag-access time added before a miss or
	// bypass is forwarded to the lower level.
	LookupLatency event.Cycle
	// FillLatency is added between the lower level's response and this
	// cache's response to waiters.
	FillLatency event.Cycle
	// MSHRs bounds outstanding fetch misses (distinct lines).
	MSHRs int
	// BypassEntries bounds outstanding bypassed loads (distinct lines).
	BypassEntries int
	// PortsPerCycle is how many lookups may start per cycle.
	PortsPerCycle int
	// StoreAllocate enables write-combining allocation for stores
	// (the L2 under CacheRW). When false, cached stores are not
	// expected at this level and are treated as bypasses.
	StoreAllocate bool
	// AllocBypass converts requests that would block on allocation
	// into bypass requests (the CacheRW-AB optimization).
	AllocBypass bool
	// Predictor, if non-nil, is consulted for every cacheable request
	// (the CacheRW-PCby optimization).
	Predictor Predictor
	// PredictorSampleEvery forces every Nth predicted-bypass request to
	// cache anyway so the predictor keeps training. Zero disables
	// sampling.
	PredictorSampleEvery int
	// Rinser, if non-nil, enables dirty-block-index rinsing
	// (the CacheRW-CR optimization).
	Rinser Rinser
}

func (c *Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: Sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: Ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs must be positive, got %d", c.Name, c.MSHRs)
	}
	if c.BypassEntries <= 0 {
		return fmt.Errorf("cache %s: BypassEntries must be positive, got %d", c.Name, c.BypassEntries)
	}
	if c.PortsPerCycle <= 0 {
		return fmt.Errorf("cache %s: PortsPerCycle must be positive, got %d", c.Name, c.PortsPerCycle)
	}
	return nil
}

type line struct {
	tag    mem.Addr // line address
	valid  bool
	dirty  bool
	busy   bool // fill pending
	lru    uint64
	pc     uint64 // PC that allocated the line (predictor training)
	reused bool   // hit at least once since allocation
}

// mshr tracks one outstanding fetch miss. Each carries its lower-level
// fetch request with a permanently attached Done, so the steady-state
// miss path recycles the whole tracking structure without allocating.
type mshr struct {
	line    mem.Addr
	set     int
	way     int
	waiters []*mem.Request
	fetch   mem.Request // the fetch sent below; Done fills and recycles
}

// bypassEntry tracks one outstanding bypassed load, with its forwarded
// request embedded the same way.
type bypassEntry struct {
	line    mem.Addr
	waiters []*mem.Request
	fwd     mem.Request // the forward sent below; Done responds and recycles
}

// storeFwd pairs a forwarded bypass store with the original request it
// must acknowledge; Done is attached once and survives recycling.
type storeFwd struct {
	fwd  mem.Request
	orig *mem.Request
}

// chainKind identifies the wait list a woken transaction carries wake
// responsibility for.
type chainKind uint8

const (
	chainNone chainKind = iota
	chainSet
	chainMSHR
	chainBypass
)

// stallCause labels what a blocked transaction is waiting for.
type stallCause uint8

const (
	causePort stallCause = iota
	causeAlloc
	causeMSHR
	causeBypass
	causeLine
)

// txn wraps a request while it is being (re)tried at this cache.
type txn struct {
	req          *mem.Request
	blockedSince event.Cycle
	blocked      bool
	cause        stallCause
	// chain marks that this txn was woken from a wait list and must
	// pass the wake-up along when it resolves without re-blocking on
	// the same resource. chainSetIdx qualifies chainSet.
	chain       chainKind
	chainSetIdx int
}

// Cache is one set-associative cache instance attached to a lower-level
// Port. It is not safe for concurrent use; the single-threaded event loop
// drives it.
type Cache struct {
	cfg   Config
	sim   *event.Sim
	lower Port

	sets [][]line
	// setShift/setMask are the set-index extraction pair, stored per
	// instance so the lookup geometry is self-contained on the Cache:
	// the hot setOf is one shift plus one and. (setShift mirrors
	// mem.LineShift today; a per-instance line granularity would change
	// only this pair.)
	setShift uint
	setMask  mem.Addr
	lruTick  uint64
	mshrs    map[mem.Addr]*mshr
	bypasses map[mem.Addr]*bypassEntry

	// port accounting: virtual lookup-slot sequencing. Slot s is
	// serviced in cycle s/PortsPerCycle; blocked requests are scheduled
	// directly at their slot's cycle instead of polling.
	nextSlot uint64

	// wait lists
	setWaiters  map[int][]*txn      // blocked on allocation in a set
	lineWaiters map[mem.Addr][]*txn // stores blocked on a pending fill of their line
	mshrWaiters []*txn              // blocked on a free MSHR
	bypWaiters  []*txn              // blocked on a free bypass entry

	// free lists. The event loop is single-threaded, so plain slices
	// recycle txn wrappers and cache-originated requests without locking;
	// the steady-state hit, miss-fetch, and bypass-forward paths allocate
	// nothing.
	txnFree  []*txn
	reqFree  []*mem.Request
	wbFree   []*mem.Request // writeback requests with a pre-built self-release Done
	mshrFree []*mshr
	bypFree  []*bypassEntry
	sfFree   []*storeFwd

	// delivery queues: each replaces a family of per-request closures
	// with pooled entries drained by one pre-armed event.
	fwdQ   *event.Queue[*mem.Request] // lookup-latency forwards to the lower level
	retryQ *event.Queue[*txn]         // wake-up retries re-entering try
	accQ   *event.Queue[*txn]         // port-slot waits re-entering access

	flushLines []mem.Addr // scratch for FlushDirty's tag walk

	predSample int

	// Stats accumulates this instance's counters.
	Stats stats.CacheStats
}

// New builds a cache. It panics on invalid configuration: geometry errors
// are programming mistakes, not runtime conditions.
func New(cfg Config, sim *event.Sim, lower Port) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if sim == nil || lower == nil {
		panic(fmt.Sprintf("cache %s: nil sim or lower level", cfg.Name))
	}
	c := &Cache{
		cfg:         cfg,
		sim:         sim,
		lower:       lower,
		sets:        make([][]line, cfg.Sets),
		setShift:    mem.LineShift,
		setMask:     mem.Addr(cfg.Sets - 1),
		mshrs:       make(map[mem.Addr]*mshr),
		bypasses:    make(map[mem.Addr]*bypassEntry),
		setWaiters:  make(map[int][]*txn),
		lineWaiters: make(map[mem.Addr][]*txn),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	c.fwdQ = event.NewQueue(sim, func(r *mem.Request) { c.lower.Submit(r) })
	c.retryQ = event.NewQueue(sim, func(t *txn) { c.try(t) })
	c.accQ = event.NewQueue(sim, func(t *txn) { c.access(t) })
	return c
}

// setOf maps a line address to its set index: one shift, one and, both
// operands precomputed on the Cache at construction.
func (c *Cache) setOf(lineAddr mem.Addr) int {
	return int((lineAddr >> c.setShift) & c.setMask)
}

// Submit implements Port. The request is processed starting this cycle.
func (c *Cache) Submit(req *mem.Request) {
	c.try(c.getTxn(req))
}

// BoundaryLatency declares the minimum number of cycles between this
// cache accepting a request (Submit) and presenting anything at its
// lower port: every miss path pays at least the tag-lookup latency
// before the forward queue drains downward. Partition builders use it
// as a cut-edge latency bound when deriving a safe execution window
// (see internal/event.SimGroup and the core partition runner).
func (c *Cache) BoundaryLatency() event.Cycle { return c.cfg.LookupLatency }

// getTxn recycles a transaction wrapper from the free list.
func (c *Cache) getTxn(req *mem.Request) *txn {
	if n := len(c.txnFree); n > 0 {
		t := c.txnFree[n-1]
		c.txnFree = c.txnFree[:n-1]
		*t = txn{req: req}
		return t
	}
	return &txn{req: req}
}

// putTxn releases a transaction that has reached a terminal state: its
// request was answered, coalesced into a wait list, or forwarded below.
// Parked transactions stay live and must not be released.
func (c *Cache) putTxn(t *txn) {
	t.req = nil
	c.txnFree = append(c.txnFree, t)
}

// getReq recycles a request object for traffic this cache originates
// (miss fetches, bypass forwards, flush writebacks). The caller must set
// every field it needs; recycled requests come back zeroed.
func (c *Cache) getReq() *mem.Request {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		return r
	}
	return &mem.Request{}
}

// putReq returns a cache-originated request to the free list. Safe only
// after its Done has fired: lower levels drop their references before
// (or by) invoking Done.
func (c *Cache) putReq(r *mem.Request) {
	*r = mem.Request{}
	c.reqFree = append(c.reqFree, r)
}

// getWB recycles a fire-and-forget writeback request. Each carries a
// permanently attached Done that returns it to the free list when the
// lower level completes it, so steady-state writebacks allocate nothing.
func (c *Cache) getWB() *mem.Request {
	if n := len(c.wbFree); n > 0 {
		r := c.wbFree[n-1]
		c.wbFree = c.wbFree[:n-1]
		return r
	}
	r := &mem.Request{}
	r.Done = func() {
		*r = mem.Request{Done: r.Done}
		c.wbFree = append(c.wbFree, r)
	}
	return r
}

// getMSHR recycles a miss-tracking entry. A fresh entry's fetch.Done is
// built once: it fills the miss, then returns the entry to the free
// list (the lower level has dropped its reference by the time Done
// fires).
func (c *Cache) getMSHR() *mshr {
	if n := len(c.mshrFree); n > 0 {
		m := c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
		return m
	}
	m := &mshr{}
	m.fetch.Done = func() {
		c.fill(m)
		m.waiters = m.waiters[:0]
		m.fetch = mem.Request{Done: m.fetch.Done}
		c.mshrFree = append(c.mshrFree, m)
	}
	return m
}

// getBypass recycles a bypassed-load entry; its fwd.Done answers every
// coalesced waiter and recycles the entry.
func (c *Cache) getBypass() *bypassEntry {
	if n := len(c.bypFree); n > 0 {
		e := c.bypFree[n-1]
		c.bypFree = c.bypFree[:n-1]
		return e
	}
	e := &bypassEntry{}
	e.fwd.Done = func() {
		delete(c.bypasses, e.line)
		for _, w := range e.waiters {
			c.respond(w, c.cfg.FillLatency)
		}
		e.waiters = e.waiters[:0]
		e.fwd = mem.Request{Done: e.fwd.Done}
		c.bypFree = append(c.bypFree, e)
		c.wakeBypass()
	}
	return e
}

// getStoreFwd recycles a bypass-store forward pair; its fwd.Done acks
// the original request and recycles the pair.
func (c *Cache) getStoreFwd() *storeFwd {
	if n := len(c.sfFree); n > 0 {
		s := c.sfFree[n-1]
		c.sfFree = c.sfFree[:n-1]
		return s
	}
	s := &storeFwd{}
	s.fwd.Done = func() {
		orig := s.orig
		s.orig = nil
		s.fwd = mem.Request{Done: s.fwd.Done}
		c.sfFree = append(c.sfFree, s)
		c.respond(orig, 0)
	}
	return s
}

// try attempts the access now; on any structural block it records the
// stall start and parks the transaction on the appropriate wait list.
func (c *Cache) try(t *txn) {
	now := c.sim.Now()
	// Port check: PortsPerCycle lookups may start per cycle. Claim the
	// next virtual slot; if it lands in a future cycle, wait for it
	// (an exact, poll-free model of tag-port contention).
	nowSlot := uint64(now) * uint64(c.cfg.PortsPerCycle)
	if c.nextSlot < nowSlot {
		c.nextSlot = nowSlot
	}
	slot := c.nextSlot
	c.nextSlot++
	at := event.Cycle(slot / uint64(c.cfg.PortsPerCycle))
	if at > now {
		c.blockFor(t, causePort)
		c.accQ.PushAt(at, t)
		return
	}
	c.access(t)
}

// access dispatches a transaction that holds a port slot this cycle.
func (c *Cache) access(t *txn) {
	req := t.req
	if req.Bypass || (req.Kind == mem.Store && !c.cfg.StoreAllocate) {
		c.tryBypass(t)
		return
	}
	if c.cfg.Predictor != nil && c.cfg.Predictor.ShouldBypass(req.PC, req.Kind) {
		c.predSample++
		if c.cfg.PredictorSampleEvery == 0 || c.predSample%c.cfg.PredictorSampleEvery != 0 {
			c.Stats.PredBypass++
			c.tryBypass(t)
			return
		}
	}
	c.tryCached(t)
}

// blockFor marks the start (or cause change) of a stall episode for t.
func (c *Cache) blockFor(t *txn, cause stallCause) {
	if t.blocked {
		if t.cause == cause {
			return
		}
		c.accountStall(t)
	}
	t.blocked = true
	t.blockedSince = c.sim.Now()
	t.cause = cause
}

// accountStall closes the current stall segment, attributing it.
func (c *Cache) accountStall(t *txn) {
	d := uint64(c.sim.Now() - t.blockedSince)
	t.blockedSince = c.sim.Now()
	if d == 0 {
		return
	}
	c.Stats.Stalls += d
	switch t.cause {
	case causePort:
		c.Stats.StallPort += d
	case causeAlloc:
		c.Stats.StallAlloc += d
	case causeMSHR:
		c.Stats.StallMSHR += d
	case causeBypass:
		c.Stats.StallBypass += d
	case causeLine:
		c.Stats.StallLine += d
	}
}

// unblock ends a stall episode, accumulating the waited cycles, and
// passes along any wake-up chain the transaction carried: the woken txn
// has resolved, so if its origin resource is still available another
// waiter may proceed.
func (c *Cache) unblock(t *txn) {
	if t.blocked {
		c.accountStall(t)
		t.blocked = false
	}
	c.fireChain(t)
}

// fireChain continues the wake-up chain carried by t, if any.
func (c *Cache) fireChain(t *txn) {
	kind := t.chain
	t.chain = chainNone
	switch kind {
	case chainSet:
		if c.setHasFreeWay(t.chainSetIdx) {
			c.wakeSet(t.chainSetIdx)
		}
	case chainMSHR:
		if len(c.mshrs) < c.cfg.MSHRs {
			c.wakeMSHR()
		}
	case chainBypass:
		if len(c.bypasses) < c.cfg.BypassEntries {
			c.wakeBypass()
		}
	}
}

// park appends t to a wait list identified by (kind, set). If t carries a
// wake chain for a different resource, the chain continues; a chain for
// the same resource is dropped (the resource was consumed by someone
// else, whose completion will generate the next wake-up).
func (c *Cache) park(t *txn, kind chainKind, set int) {
	switch kind {
	case chainSet:
		c.blockFor(t, causeAlloc)
	case chainMSHR:
		c.blockFor(t, causeMSHR)
	case chainBypass:
		c.blockFor(t, causeBypass)
	}
	if t.chain != chainNone && !(t.chain == kind && (kind != chainSet || t.chainSetIdx == set)) {
		c.fireChain(t)
	} else {
		t.chain = chainNone
	}
	switch kind {
	case chainSet:
		c.setWaiters[set] = append(c.setWaiters[set], t)
	case chainMSHR:
		c.mshrWaiters = append(c.mshrWaiters, t)
	case chainBypass:
		c.bypWaiters = append(c.bypWaiters, t)
	}
}

// tryCached handles a request that wants to allocate at this level.
func (c *Cache) tryCached(t *txn) {
	req := t.req
	set := c.setOf(req.Line)
	ways := c.sets[set]

	// Hit?
	for i := range ways {
		l := &ways[i]
		if l.valid && !l.busy && l.tag == req.Line {
			c.unblock(t)
			c.putTxn(t)
			c.Stats.Hits++
			c.lruTick++
			l.lru = c.lruTick
			if !l.reused {
				l.reused = true
				if c.cfg.Predictor != nil {
					c.cfg.Predictor.OnHit(l.pc)
				}
			}
			if req.Kind == mem.Store {
				c.markDirty(l)
			}
			c.respond(req, c.cfg.HitLatency)
			return
		}
	}

	// Pending fill for this line? Coalesce loads; stores wait for the
	// fill to complete (they need the line valid to merge into).
	if m, ok := c.mshrs[req.Line]; ok {
		if req.Kind == mem.Load {
			c.unblock(t)
			c.putTxn(t)
			c.Stats.Coalesced++
			m.waiters = append(m.waiters, req)
			return
		}
		c.blockFor(t, causeLine)
		c.fireChain(t) // waiting on a fill, not on the chained resource
		c.lineWaiters[req.Line] = append(c.lineWaiters[req.Line], t)
		return
	}

	// Miss: stores with StoreAllocate combine without fetching;
	// loads need an MSHR.
	// MSHR exhaustion waits; it is tracking-capacity pressure, not the
	// blocking-allocation pathology, and converting here would discard
	// reuse the allocation-bypass optimization means to preserve.
	if req.Kind == mem.Load && len(c.mshrs) >= c.cfg.MSHRs {
		c.park(t, chainMSHR, 0)
		return
	}

	// Find a victim way: prefer invalid, else least-recently-used
	// non-busy way.
	victim := -1
	var bestLRU uint64
	for i := range ways {
		l := &ways[i]
		if l.busy {
			continue
		}
		if !l.valid {
			victim = i
			break
		}
		if victim == -1 || l.lru < bestLRU {
			victim = i
			bestLRU = l.lru
		}
	}
	if victim == -1 {
		// Every way holds a pending fill: blocking allocation.
		if c.cfg.AllocBypass {
			c.Stats.AllocBypass++
			c.tryBypass(t)
			return
		}
		c.park(t, chainSet, set)
		return
	}

	c.unblock(t)
	c.putTxn(t)
	c.evict(set, victim)
	l := &ways[victim]
	c.lruTick++
	*l = line{tag: req.Line, lru: c.lruTick, pc: req.PC}

	if req.Kind == mem.Store {
		// Write-combining allocation: no fetch. The full line is
		// considered written (the coalescer emits line-granularity
		// stores).
		c.Stats.Misses++
		l.valid = true
		c.markDirty(l)
		c.respond(req, c.cfg.HitLatency)
		c.wakeSet(set)
		return
	}

	// Load miss: reserve the way, grab an MSHR, fetch below. The MSHR's
	// embedded fetch request fills the miss from its pre-built Done.
	c.Stats.Misses++
	l.busy = true
	m := c.getMSHR()
	m.line = req.Line
	m.set = set
	m.way = victim
	m.waiters = append(m.waiters, req)
	c.mshrs[req.Line] = m
	m.fetch.ID = req.ID
	m.fetch.PC = req.PC
	m.fetch.Line = req.Line
	m.fetch.Kind = mem.Load
	m.fetch.CU = req.CU
	m.fetch.Wavefront = req.Wavefront
	c.fwdQ.Push(c.cfg.LookupLatency, &m.fetch)
}

// fill completes an outstanding miss: the line becomes valid and all
// coalesced waiters are answered.
func (c *Cache) fill(m *mshr) {
	delete(c.mshrs, m.line)
	l := &c.sets[m.set][m.way]
	if l.busy && l.tag == m.line {
		l.busy = false
		l.valid = true
	}
	for _, w := range m.waiters {
		c.respond(w, c.cfg.FillLatency)
	}
	// Stores that were waiting for this exact fill can all proceed
	// (they will hit the now-valid line, or re-miss harmlessly if a
	// chained allocator evicts it first).
	if lw := c.lineWaiters[m.line]; len(lw) > 0 {
		delete(c.lineWaiters, m.line)
		for _, t := range lw {
			c.retryQ.Push(1, t)
		}
	}
	c.wakeSet(m.set)
	c.wakeMSHR()
}

// tryBypass handles a request that skips allocation at this level.
// Bypass loads to the same line coalesce while the original is pending.
func (c *Cache) tryBypass(t *txn) {
	req := t.req
	if req.Kind == mem.Load {
		if e, ok := c.bypasses[req.Line]; ok {
			c.unblock(t)
			c.putTxn(t)
			c.Stats.Coalesced++
			e.waiters = append(e.waiters, req)
			return
		}
		if len(c.bypasses) >= c.cfg.BypassEntries {
			c.park(t, chainBypass, 0)
			return
		}
		c.unblock(t)
		c.putTxn(t)
		c.Stats.Bypasses++
		e := c.getBypass()
		e.line = req.Line
		e.waiters = append(e.waiters, req)
		c.bypasses[req.Line] = e
		// The forwarded request inherits the original's Bypass flag:
		// a locally-bypassed request (store at a no-store-allocate
		// level, predictor or allocation bypass) may still cache at
		// the level below; only Uncached-policy traffic carries
		// Bypass=true end to end.
		//
		// Bypassed loads traverse the same response pipeline stage as
		// fills, so the uncontested memory latency is
		// policy-independent (Table 1's ≈225 cycles); the entry's
		// pre-built fwd.Done answers all coalesced waiters.
		e.fwd.ID = req.ID
		e.fwd.PC = req.PC
		e.fwd.Line = req.Line
		e.fwd.Kind = mem.Load
		e.fwd.CU = req.CU
		e.fwd.Wavefront = req.Wavefront
		e.fwd.Bypass = req.Bypass
		c.fwdQ.Push(c.cfg.LookupLatency, &e.fwd)
		return
	}

	// Bypass store: forward downward; the lower level acks through the
	// pair's pre-built Done.
	c.unblock(t)
	c.putTxn(t)
	c.Stats.Bypasses++
	sf := c.getStoreFwd()
	sf.orig = req
	sf.fwd.ID = req.ID
	sf.fwd.PC = req.PC
	sf.fwd.Line = req.Line
	sf.fwd.Kind = mem.Store
	sf.fwd.CU = req.CU
	sf.fwd.Wavefront = req.Wavefront
	sf.fwd.Bypass = req.Bypass
	c.fwdQ.Push(c.cfg.LookupLatency, &sf.fwd)
}

// markDirty sets the dirty bit and informs the rinser's dirty-block index.
func (c *Cache) markDirty(l *line) {
	if !l.dirty {
		l.dirty = true
		if c.cfg.Rinser != nil {
			c.cfg.Rinser.OnDirty(l.tag)
		}
	}
}

// evict clears a victim way, writing back dirty data. With a rinser
// attached, a dirty eviction also rinses every other dirty line in the
// same DRAM row (they are written back but stay valid-clean).
func (c *Cache) evict(set, way int) {
	l := &c.sets[set][way]
	if !l.valid {
		return
	}
	if c.cfg.Predictor != nil {
		c.cfg.Predictor.OnEvict(l.pc, l.reused)
	}
	if l.dirty {
		c.writeback(l.tag)
		if c.cfg.Rinser != nil {
			c.cfg.Rinser.OnClean(l.tag)
			for _, mate := range c.cfg.Rinser.RowMates(l.tag) {
				c.rinse(mate)
			}
		}
	}
	l.valid = false
	l.dirty = false
}

// rinse writes back a still-resident dirty line and marks it clean.
func (c *Cache) rinse(lineAddr mem.Addr) {
	set := c.setOf(lineAddr)
	ways := c.sets[set]
	for i := range ways {
		l := &ways[i]
		if l.valid && l.dirty && l.tag == lineAddr {
			l.dirty = false
			c.Stats.Rinses++
			c.writeback(lineAddr)
			if c.cfg.Rinser != nil {
				c.cfg.Rinser.OnClean(lineAddr)
			}
			return
		}
	}
}

// writeback sends a fire-and-forget store toward memory.
func (c *Cache) writeback(lineAddr mem.Addr) {
	c.Stats.Writebacks++
	wb := c.getWB()
	wb.Line = lineAddr
	wb.Kind = mem.Store
	wb.Bypass = true
	c.fwdQ.Push(c.cfg.LookupLatency, wb)
}

// respond completes a request after the given delay.
func (c *Cache) respond(req *mem.Request, delay event.Cycle) {
	if req.Done == nil {
		return
	}
	if delay == 0 {
		req.Done()
		return
	}
	c.sim.Schedule(delay, req.Done)
}

// Wake-ups are chained rather than broadcast: each resource-freeing
// event retries one waiter, and if that waiter resolves without consuming
// the freed resource (e.g. its line has become valid meanwhile), the next
// waiter is retried. Chaining keeps the event count linear in requests
// where a broadcast would be quadratic under saturation, and the
// post-retry availability check makes it deadlock-free.

// wakeSet retries one transaction blocked on allocation in set. The
// transaction carries the wake-up chain: when it resolves without
// re-blocking on the same set, the next waiter is woken if a way remains
// allocatable.
func (c *Cache) wakeSet(set int) {
	ws := c.setWaiters[set]
	if len(ws) == 0 {
		return
	}
	t := ws[0]
	if len(ws) == 1 {
		delete(c.setWaiters, set)
	} else {
		c.setWaiters[set] = ws[1:]
	}
	t.chain = chainSet
	t.chainSetIdx = set
	c.retryQ.Push(1, t)
}

// setHasFreeWay reports whether any way in set could be allocated now.
func (c *Cache) setHasFreeWay(set int) bool {
	ways := c.sets[set]
	for i := range ways {
		if !ways[i].busy {
			return true
		}
	}
	return false
}

// wakeMSHR retries one transaction blocked on a free MSHR; the chain
// continues when it resolves without consuming one.
func (c *Cache) wakeMSHR() {
	if len(c.mshrWaiters) == 0 {
		return
	}
	t := c.mshrWaiters[0]
	c.mshrWaiters = c.mshrWaiters[1:]
	t.chain = chainMSHR
	c.retryQ.Push(1, t)
}

// wakeBypass retries one transaction blocked on a free bypass entry; the
// chain continues when it resolves without consuming one.
func (c *Cache) wakeBypass() {
	if len(c.bypWaiters) == 0 {
		return
	}
	t := c.bypWaiters[0]
	c.bypWaiters = c.bypWaiters[1:]
	t.chain = chainBypass
	c.retryQ.Push(1, t)
}

// InvalidateClean drops every valid clean line, modelling GPU
// self-invalidation at a kernel boundary. Dirty lines (combined stores
// awaiting a system-scope flush) and pending fills are untouched.
func (c *Cache) InvalidateClean() {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && !l.busy && !l.dirty {
				if c.cfg.Predictor != nil {
					c.cfg.Predictor.OnEvict(l.pc, l.reused)
				}
				l.valid = false
				c.Stats.Invalidates++
			}
		}
	}
}

// FlushDirty writes back and invalidates every dirty line, modelling the
// system-scope synchronization flush. done (if non-nil) runs after the
// last writeback has been accepted by the lower level; the flush issues
// writebacks paced by LookupLatency so they arrive as a burst in address
// order, as a hardware flush walker would generate them.
func (c *Cache) FlushDirty(done func()) {
	lines := c.flushLines[:0]
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && !l.busy && l.dirty {
				lines = append(lines, l.tag)
				if c.cfg.Predictor != nil {
					c.cfg.Predictor.OnEvict(l.pc, l.reused)
				}
				if c.cfg.Rinser != nil {
					c.cfg.Rinser.OnClean(l.tag)
				}
				l.valid = false
				l.dirty = false
				c.Stats.Invalidates++
			}
		}
	}
	c.flushLines = lines // keep the grown scratch for the next flush
	if len(lines) == 0 {
		// Deliberately Schedule(0, ...), not a direct call: done must
		// observe the documented same-cycle ordering (after events
		// already queued this cycle), keeping a no-dirty-lines flush
		// interleaved identically to a one-line flush. Batch dispatch
		// makes the deferred event cheap but not redundant.
		if done != nil {
			c.sim.Schedule(0, done)
		}
		return
	}
	remaining := len(lines)
	for i, la := range lines {
		c.Stats.Writebacks++
		wb := c.getReq()
		wb.Line = la
		wb.Kind = mem.Store
		wb.Bypass = true
		wb.Done = func() {
			remaining--
			if remaining == 0 && done != nil {
				done()
			}
			c.putReq(wb)
		}
		// The flush walker emits one writeback per cycle, in tag-walk
		// (address) order — a row-friendly burst, as in hardware —
		// through the forward queue rather than one timer per line.
		c.fwdQ.Push(event.Cycle(i)+c.cfg.LookupLatency, wb)
	}
}

// DirtyLines returns the number of valid dirty lines (for tests and the
// harness's sanity checks).
func (c *Cache) DirtyLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}

// ValidLines returns the number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// PendingMisses returns the number of outstanding MSHRs (tests).
func (c *Cache) PendingMisses() int { return len(c.mshrs) }

// Reset returns the cache to the observable state of a freshly built
// one: every line invalid, tracking structures and wait lists empty,
// delivery queues drained, statistics zeroed. Free lists, maps, and
// grown scratch buffers keep their capacity, so a reset cache re-runs a
// workload without the cold-start allocations of a fresh one. Call it
// together with the owning Sim's Reset; in-flight requests parked here
// are dropped, their txn wrappers and tracking entries recycled.
func (c *Cache) Reset() {
	for s := range c.sets {
		ways := c.sets[s]
		for w := range ways {
			ways[w] = line{}
		}
	}
	c.lruTick = 0
	c.nextSlot = 0
	c.predSample = 0

	for _, m := range c.mshrs {
		clear(m.waiters) // release dropped waiter requests to the GC
		m.waiters = m.waiters[:0]
		m.fetch = mem.Request{Done: m.fetch.Done}
		c.mshrFree = append(c.mshrFree, m)
	}
	clear(c.mshrs)
	for _, e := range c.bypasses {
		clear(e.waiters)
		e.waiters = e.waiters[:0]
		e.fwd = mem.Request{Done: e.fwd.Done}
		c.bypFree = append(c.bypFree, e)
	}
	clear(c.bypasses)

	for _, ts := range c.setWaiters {
		for _, t := range ts {
			c.putTxn(t)
		}
	}
	clear(c.setWaiters)
	for _, ts := range c.lineWaiters {
		for _, t := range ts {
			c.putTxn(t)
		}
	}
	clear(c.lineWaiters)
	for _, t := range c.mshrWaiters {
		c.putTxn(t)
	}
	c.mshrWaiters = c.mshrWaiters[:0]
	for _, t := range c.bypWaiters {
		c.putTxn(t)
	}
	c.bypWaiters = c.bypWaiters[:0]

	c.fwdQ.Reset()
	c.retryQ.Reset()
	c.accQ.Reset()
	c.Stats = stats.CacheStats{}
}
