package cache

import (
	"testing"

	"repro/internal/event"
	"repro/internal/mem"
)

// quietLower completes every request after a fixed delay without
// recording it, so allocation measurements see only the cache.
type quietLower struct {
	sim *event.Sim
	lat event.Cycle
}

func (p *quietLower) Submit(req *mem.Request) {
	if req.Done != nil {
		p.sim.Schedule(p.lat, req.Done)
	}
}

// allocCache builds a small cache for the steady-state contracts. Ways=1
// makes alternating same-set lines conflict-miss deterministically.
func allocCache(sim *event.Sim, lower Port) *Cache {
	return New(Config{
		Name: "alloc", Sets: 16, Ways: 1,
		HitLatency: 1, LookupLatency: 1, FillLatency: 1,
		MSHRs: 8, BypassEntries: 8, PortsPerCycle: 4,
	}, sim, lower)
}

// TestForwardPathsAllocationFree pins the zero-allocation contract for
// the cache's lower-level forward paths: steady-state miss fetches
// (pooled MSHRs with embedded fetch requests), bypassed loads (pooled
// bypass entries), bypassed stores (pooled forward pairs), and the
// queued hand-off to the lower level must not allocate at all.
func TestForwardPathsAllocationFree(t *testing.T) {
	sim := event.New()
	c := allocCache(sim, &quietLower{sim: sim, lat: 5})
	noop := func() {}
	// Two loads in the same set (Ways=1) that evict each other: every
	// submit is a clean-victim miss with a fetch forward.
	missA := &mem.Request{ID: 1, Line: 0x0000, Kind: mem.Load, Done: noop}
	missB := &mem.Request{ID: 2, Line: 0x4000, Kind: mem.Load, Done: noop}
	// A store at a no-store-allocate level: always a bypass forward.
	store := &mem.Request{ID: 3, Line: 0x8000, Kind: mem.Store, Done: noop}
	// An end-to-end bypass load (Uncached-policy traffic).
	bypass := &mem.Request{ID: 4, Line: 0xc000, Kind: mem.Load, Bypass: true, Done: noop}

	steps := func() {
		c.Submit(missA)
		sim.Run()
		c.Submit(missB)
		sim.Run()
		c.Submit(store)
		sim.Run()
		c.Submit(bypass)
		sim.Run()
	}
	// Warm up the txn, MSHR, bypass-entry, and forward-pair pools.
	for i := 0; i < 16; i++ {
		steps()
	}
	allocs := testing.AllocsPerRun(100, steps)
	if allocs != 0 {
		t.Fatalf("steady-state forward paths allocate %v/op, want 0", allocs)
	}
	if c.Stats.Misses == 0 || c.Stats.Bypasses == 0 {
		t.Fatalf("paths not exercised: %+v", c.Stats)
	}
}

// TestHitPathStillAllocationFree keeps PR 1's hit-path contract pinned
// alongside the forward-path one: the steady-state hit path — including
// the precomputed (setShift, setMask) set-index extraction — performs
// zero allocations per operation.
func TestHitPathStillAllocationFree(t *testing.T) {
	sim := event.New()
	c := allocCache(sim, &quietLower{sim: sim, lat: 5})
	req := &mem.Request{ID: 1, Line: 0x1000, Kind: mem.Load, Done: func() {}}
	c.Submit(req)
	sim.Run()
	allocs := testing.AllocsPerRun(100, func() {
		c.Submit(req)
		sim.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state hit path allocates %v/op, want 0", allocs)
	}
}

// TestMSHRCoalescingReusesPools drives coalesced misses (several loads
// to one pending line) through recycled MSHRs and checks the waiter
// lists are answered and reset across generations.
func TestMSHRCoalescingReusesPools(t *testing.T) {
	sim := event.New()
	c := allocCache(sim, &quietLower{sim: sim, lat: 50})
	const rounds, waiters = 10, 4
	for r := 0; r < rounds; r++ {
		line := mem.Addr(r * 0x4000)
		got := 0
		reqs := make([]*mem.Request, waiters)
		for i := range reqs {
			reqs[i] = &mem.Request{ID: uint64(r*waiters + i), Line: line, Kind: mem.Load,
				Done: func() { got++ }}
			c.Submit(reqs[i])
		}
		sim.Run()
		if got != waiters {
			t.Fatalf("round %d: %d of %d coalesced waiters answered", r, got, waiters)
		}
		if c.PendingMisses() != 0 {
			t.Fatalf("round %d: %d MSHRs leaked", r, c.PendingMisses())
		}
	}
	if c.Stats.Coalesced != (waiters-1)*rounds {
		t.Fatalf("coalesced = %d, want %d", c.Stats.Coalesced, (waiters-1)*rounds)
	}
}
