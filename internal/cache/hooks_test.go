package cache

import (
	"testing"

	"repro/internal/event"
	"repro/internal/mem"
)

// recordingPredictor counts training callbacks and bypasses on demand.
type recordingPredictor struct {
	bypass  bool
	hits    int
	evicts  int
	reused  int
	queries int
}

func (p *recordingPredictor) ShouldBypass(pc uint64, k mem.Kind) bool {
	p.queries++
	return p.bypass
}
func (p *recordingPredictor) OnHit(pc uint64) { p.hits++ }
func (p *recordingPredictor) OnEvict(pc uint64, reused bool) {
	p.evicts++
	if reused {
		p.reused++
	}
}

// rowRinser groups 4 lines (256 B) per row, like a tiny DRAM row.
type testRinser struct {
	dirty map[mem.Addr]bool
}

func newTestRinser() *testRinser { return &testRinser{dirty: map[mem.Addr]bool{}} }

func (r *testRinser) row(a mem.Addr) uint64 { return uint64(a) >> 8 }
func (r *testRinser) OnDirty(line mem.Addr) { r.dirty[line] = true }
func (r *testRinser) OnClean(line mem.Addr) { delete(r.dirty, line) }
func (r *testRinser) RowMates(line mem.Addr) []mem.Addr {
	var out []mem.Addr
	for l := range r.dirty {
		if l != line && r.row(l) == r.row(line) {
			out = append(out, l)
		}
	}
	// Deterministic order for the test.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestPredictorBypassSkipsAllocation(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 50)
	cfg := testConfig()
	pred := &recordingPredictor{bypass: true}
	cfg.Predictor = pred
	c := New(cfg, sim, lower)

	c.Submit(load(1, 0x1000, nil))
	sim.Run()
	if c.ValidLines() != 0 {
		t.Fatal("predicted-bypass load allocated")
	}
	if c.Stats.PredBypass != 1 {
		t.Fatalf("PredBypass = %d", c.Stats.PredBypass)
	}
	if pred.queries != 1 {
		t.Fatalf("queries = %d", pred.queries)
	}
}

func TestPredictorSamplingCachesPeriodically(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 50)
	cfg := testConfig()
	pred := &recordingPredictor{bypass: true}
	cfg.Predictor = pred
	cfg.PredictorSampleEvery = 4
	c := New(cfg, sim, lower)

	for i := 0; i < 8; i++ {
		c.Submit(load(uint64(i), mem.Addr(0x40*i), nil))
		sim.Run()
	}
	// Every 4th predicted-bypass samples into the cache: 2 allocations.
	if c.ValidLines() != 2 {
		t.Fatalf("valid lines = %d, want 2 sampled", c.ValidLines())
	}
	if c.Stats.PredBypass != 6 {
		t.Fatalf("PredBypass = %d, want 6", c.Stats.PredBypass)
	}
}

func TestPredictorTrainingOnHitAndEvict(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 20)
	cfg := testConfig()
	cfg.Sets, cfg.Ways = 1, 1
	pred := &recordingPredictor{}
	cfg.Predictor = pred
	c := New(cfg, sim, lower)

	c.Submit(load(1, 0x0, nil)) // allocate
	sim.Run()
	c.Submit(load(2, 0x0, nil)) // hit → OnHit
	sim.Run()
	c.Submit(load(3, 0x40, nil)) // evict reused line → OnEvict(reused)
	sim.Run()
	c.Submit(load(4, 0x80, nil)) // evict unreused line → OnEvict(!reused)
	sim.Run()
	if pred.hits != 1 {
		t.Fatalf("OnHit calls = %d, want 1", pred.hits)
	}
	if pred.evicts != 2 || pred.reused != 1 {
		t.Fatalf("evicts = %d (reused %d), want 2 (1)", pred.evicts, pred.reused)
	}
}

func TestRinserWritesBackRowMates(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	// 4 sets: lines 0x0, 0x40, 0x80 land in different sets but the
	// same 256B "row". Make ways=1 so a conflicting store evicts.
	cfg.Sets, cfg.Ways = 4, 1
	cfg.StoreAllocate = true
	r := newTestRinser()
	cfg.Rinser = r
	c := New(cfg, sim, lower)

	// Dirty three lines of row 0 (different sets → no eviction yet).
	for _, la := range []mem.Addr{0x0, 0x40, 0x80} {
		c.Submit(store(uint64(la), la, nil))
		sim.Run()
	}
	// Evict the dirty line in set 0 with a store to 0x400 (set 0, row 4).
	c.Submit(store(99, 0x400, nil))
	sim.Run()
	// The eviction writes back 0x0 and rinses 0x40 and 0x80.
	if c.Stats.Rinses != 2 {
		t.Fatalf("rinses = %d, want 2", c.Stats.Rinses)
	}
	if got := lower.count(mem.Store); got != 3 {
		t.Fatalf("memory stores = %d, want 3 (1 eviction + 2 rinses)", got)
	}
	// Rinsed lines stay valid but clean.
	if c.DirtyLines() != 1 { // only the new 0x400
		t.Fatalf("dirty lines = %d, want 1", c.DirtyLines())
	}
	if c.ValidLines() != 3 { // 0x40, 0x80 (clean) + 0x400 (dirty)
		t.Fatalf("valid lines = %d, want 3", c.ValidLines())
	}
}

func TestRinsedLinesStillHit(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	cfg.Sets, cfg.Ways = 4, 1
	cfg.StoreAllocate = true
	cfg.Rinser = newTestRinser()
	c := New(cfg, sim, lower)

	c.Submit(store(1, 0x0, nil))
	c.Submit(store(2, 0x40, nil))
	sim.Run()
	c.Submit(store(3, 0x400, nil)) // evict 0x0, rinse 0x40
	sim.Run()
	hits := c.Stats.Hits
	c.Submit(load(4, 0x40, nil))
	sim.Run()
	if c.Stats.Hits != hits+1 {
		t.Fatal("rinsed line no longer hits")
	}
}

func TestFlushInformsRinser(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	cfg.StoreAllocate = true
	r := newTestRinser()
	cfg.Rinser = r
	c := New(cfg, sim, lower)

	c.Submit(store(1, 0x0, nil))
	c.Submit(store(2, 0x40, nil))
	sim.Run()
	if len(r.dirty) != 2 {
		t.Fatalf("rinser tracks %d lines, want 2", len(r.dirty))
	}
	c.FlushDirty(nil)
	sim.Run()
	if len(r.dirty) != 0 {
		t.Fatalf("rinser still tracks %d lines after flush", len(r.dirty))
	}
}

func TestBankedRouting(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	cfg.Sets = 4
	b := NewBanked(cfg, 4, sim, lower)

	// Lines 0..15 spread: bank = (lineNum/4)%4.
	for i := 0; i < 32; i++ {
		b.Submit(load(uint64(i), mem.Addr(i*64), nil))
	}
	sim.Run()
	total := 0
	for _, bank := range b.Banks() {
		total += int(bank.Stats.Misses)
		if bank.Stats.Misses == 0 {
			t.Fatal("a bank received no traffic")
		}
	}
	if total != 32 {
		t.Fatalf("total misses = %d, want 32", total)
	}
	if b.Stats().Misses != 32 {
		t.Fatalf("aggregated misses = %d", b.Stats().Misses)
	}
}

func TestBankedFlushAndInvalidate(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	cfg := testConfig()
	cfg.Sets = 4
	cfg.StoreAllocate = true
	b := NewBanked(cfg, 2, sim, lower)

	for i := 0; i < 8; i++ {
		b.Submit(store(uint64(i), mem.Addr(i*64), nil))
	}
	b.Submit(load(100, 0x4000, nil))
	sim.Run()
	if b.DirtyLines() != 8 {
		t.Fatalf("dirty = %d", b.DirtyLines())
	}
	b.InvalidateClean()
	if b.DirtyLines() != 8 || b.ValidLines() != 8 {
		t.Fatal("invalidate touched dirty lines or kept clean ones")
	}
	done := false
	b.FlushDirty(func() { done = true })
	sim.Run()
	if !done || b.DirtyLines() != 0 {
		t.Fatal("banked flush incomplete")
	}
	if lower.count(mem.Store) != 8 {
		t.Fatalf("stores at memory = %d, want 8", lower.count(mem.Store))
	}
}

func TestBankedBadCountPanics(t *testing.T) {
	sim := event.New()
	lower := newFakeMem(sim, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("bank count 3 accepted")
		}
	}()
	NewBanked(testConfig(), 3, sim, lower)
}
