package event

// This file implements the deferred-delivery subsystem. Components that
// used to schedule one closure per deferred hand-off
// (`sim.Schedule(delay, func() { port.Submit(req) })`) instead Push the
// value onto a Queue whose single pre-built drain event delivers every
// due entry; the steady-state hand-off path performs no allocation.
//
// Two primitives are provided:
//
//   - Queue[T]: a min-heap of (time, value) entries drained by one
//     pre-armed event. Replaces per-request submit closures in the GPU
//     coalescer, the caches' lower-level forwards and retry wake-ups,
//     and the coherence directory hop.
//   - Ticker: a single re-armable callback. Replaces the per-call tick
//     closures (and generation-counter supersession) in the DRAM
//     controller and the SIMD front end.
//
// Ticker owns the arming discipline, and Queue builds on it: scheduled
// fire times form a strictly decreasing stack (`arms`), because a new
// fire is armed only when it is strictly earlier than every outstanding
// one. The Sim fires a ticker's events in time order, so the stack top
// is always the next fire, and a pop-on-fire keeps the bookkeeping
// exact without event cancellation. Fires left behind by an earlier
// re-arm are harmless: drain and tick callbacks are idempotent (they
// deliver whatever is due and re-arm for whatever remains).

// qentry is one deferred delivery: value v due at time at. seq breaks
// same-cycle ties in push order, preserving FIFO determinism.
type qentry[T any] struct {
	at  Cycle
	seq uint64
	v   T
}

func (a qentry[T]) less(b qentry[T]) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Queue delivers values to a fixed callback at requested cycles, FIFO
// within a cycle, without allocating per delivery. One drain event at a
// time is usually armed; see the package comment on the arming stack.
//
// deliver runs inside the queue's drain event and may push further
// entries onto the same queue (they are delivered in this drain if due,
// later otherwise).
type Queue[T any] struct {
	sim     *Sim
	deliver func(T)
	entries []qentry[T] // min-heap by (at, seq)
	seq     uint64
	ticker  *Ticker // arms the drain for the earliest due entry
}

// NewQueue builds a delivery queue over sim. deliver must be non-nil.
func NewQueue[T any](sim *Sim, deliver func(T)) *Queue[T] {
	if sim == nil || deliver == nil {
		panic("event: queue needs a sim and a deliver func")
	}
	q := &Queue[T]{sim: sim, deliver: deliver}
	q.ticker = NewTicker(sim, q.drain)
	return q
}

// Push arranges for v to be delivered delay cycles from now.
func (q *Queue[T]) Push(delay Cycle, v T) {
	q.PushAt(q.sim.Now()+delay, v)
}

// PushAt arranges for v to be delivered at absolute cycle t (clamped to
// the current cycle; a same-cycle delivery runs after already-queued
// events, like Schedule(0, ...)).
func (q *Queue[T]) PushAt(t Cycle, v T) {
	if now := q.sim.Now(); t < now {
		t = now
	}
	q.seq++
	q.entries = append(q.entries, qentry[T]{at: t, seq: q.seq, v: v})
	q.siftUp(len(q.entries) - 1)
	q.ticker.ArmAt(t)
}

// Len returns the number of undelivered entries.
func (q *Queue[T]) Len() int { return len(q.entries) }

// Armed reports whether a drain fire is scheduled that will deliver.
func (q *Queue[T]) Armed() bool { return q.ticker.Armed() }

// Disarm drops every undelivered entry and silences the outstanding
// drain fires (see Ticker.Disarm), keeping the entry buffer's capacity.
// Unlike Reset it is safe while the owning Sim still holds the drain
// events: they fire as no-ops. Idle components (an empty GPU front-end
// shard) use it to shed pending work without event cancellation; a
// later Push re-arms normally.
func (q *Queue[T]) Disarm() {
	var zero T
	for i := range q.entries {
		q.entries[i].v = zero // release values so they can be collected
	}
	q.entries = q.entries[:0]
	q.ticker.Disarm()
}

// Reset drops every undelivered entry and the ticker's arming state,
// keeping the entry buffer's capacity. Call it together with the owning
// Sim's Reset: the drain events already scheduled there are assumed gone.
func (q *Queue[T]) Reset() {
	var zero T
	for i := range q.entries {
		q.entries[i].v = zero // release values so they can be collected
	}
	q.entries = q.entries[:0]
	q.seq = 0
	q.ticker.Reset()
}

// drain is the ticker callback: it delivers every due entry in
// (time, push-order) and re-arms for the earliest remaining entry.
func (q *Queue[T]) drain() {
	now := q.sim.Now()
	for len(q.entries) > 0 && q.entries[0].at <= now {
		v := q.pop()
		q.deliver(v)
	}
	if len(q.entries) > 0 {
		q.ticker.ArmAt(q.entries[0].at)
	}
}

// siftUp restores the heap property after appending at index i.
func (q *Queue[T]) siftUp(i int) {
	e := q.entries
	it := e[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !it.less(e[parent]) {
			break
		}
		e[i] = e[parent]
		i = parent
	}
	e[i] = it
}

// pop removes and returns the minimum entry's value. Caller checks
// non-empty.
func (q *Queue[T]) pop() T {
	e := q.entries
	top := e[0].v
	n := len(e) - 1
	it := e[n]
	var zero T
	e[n].v = zero // release the value so it can be collected
	q.entries = e[:n]
	if n > 0 {
		i := 0
		for {
			child := 2*i + 1
			if child >= n {
				break
			}
			if right := child + 1; right < n && e[right].less(e[child]) {
				child = right
			}
			if !e[child].less(it) {
				break
			}
			e[i] = e[child]
			i = child
		}
		e[i] = it
	}
	return top
}

// Ticker re-arms a single callback without allocating per arm: ArmAt
// requests a run at (or before) a cycle, and redundant requests for the
// same or later cycles coalesce into the already-scheduled fire. The
// callback must tolerate extra invocations (a later-armed fire that a
// subsequent earlier arm superseded still runs), re-checking its own
// state and re-arming as needed — the natural shape of a component tick.
type Ticker struct {
	sim  *Sim
	fn   Func
	arms []Cycle // strictly decreasing stack of scheduled fire times
	// alive counts the top arms whose fires invoke the callback; the
	// arms below them were cut loose by Disarm and fire as no-ops.
	alive int
	fire  Func // built once; every arm reuses it
}

// NewTicker builds a ticker that runs fn when fired.
func NewTicker(sim *Sim, fn Func) *Ticker {
	if sim == nil || fn == nil {
		panic("event: ticker needs a sim and a callback")
	}
	t := &Ticker{sim: sim, fn: fn}
	t.fire = func() {
		if n := len(t.arms); n > 0 {
			t.arms = t.arms[:n-1]
			if t.alive == 0 {
				return // a fire Disarm orphaned: pop the bookkeeping only
			}
			t.alive--
		}
		t.fn()
	}
	return t
}

// ArmAt schedules the callback to run at cycle at (clamped to now). If a
// fire is already scheduled at an earlier-or-equal cycle, the request
// coalesces into it: that fire's callback is responsible for re-arming
// if its work is not done. On a disarmed ticker the earliest orphaned
// fire is revived instead when it is due at or before the requested
// cycle — the callback may then run earlier than requested, which the
// Ticker contract already allows.
func (t *Ticker) ArmAt(at Cycle) {
	if now := t.sim.Now(); at < now {
		at = now
	}
	if n := len(t.arms); n > 0 && t.arms[n-1] <= at {
		if t.alive == 0 {
			t.alive = 1
		}
		return
	}
	t.arms = append(t.arms, at)
	t.alive++
	t.sim.At(at, t.fire)
}

// Disarm turns every outstanding fire into a no-op: the scheduled
// events still pop their bookkeeping when they come due, but the
// callback is not invoked. Idle components (an empty GPU front-end
// shard) use it to shed stale wake-ups without event cancellation; a
// later ArmAt re-enables the ticker.
func (t *Ticker) Disarm() { t.alive = 0 }

// Reset forgets every outstanding arm, keeping the stack's capacity.
// Call it together with the owning Sim's Reset: the fires already
// scheduled there are assumed dropped. (If a stale fire does survive, it
// pops nothing and invokes the callback, which is idempotent by the
// Ticker contract — but the bookkeeping would no longer be exact.)
func (t *Ticker) Reset() {
	t.arms = t.arms[:0]
	t.alive = 0
}

// Armed reports whether any fire is scheduled that will invoke the
// callback.
func (t *Ticker) Armed() bool { return t.alive > 0 }

// NextFire returns the earliest scheduled fire time; valid only when
// Armed.
func (t *Ticker) NextFire() Cycle { return t.arms[len(t.arms)-1] }
