package event

import (
	"strings"
	"testing"
)

// TestStopBetweenBuckets pins the basic contract: the stop condition is
// polled once per bucket drain, Run returns early with events pending,
// and the engine can resume from exactly where it stopped.
func TestStopBetweenBuckets(t *testing.T) {
	s := New()
	var order []int
	for i := 1; i <= 10; i++ {
		i := i
		s.At(Cycle(i), func() { order = append(order, i) })
	}
	s.SetStop(func() bool { return s.Fired() >= 3 })
	end := s.Run()
	if !s.Stopped() {
		t.Fatal("Run did not report stopped")
	}
	if end != 3 || s.Now() != 3 {
		t.Fatalf("stopped at cycle %d, want 3", end)
	}
	if s.Fired() != 3 {
		t.Fatalf("fired %d events before stopping, want 3", s.Fired())
	}
	if s.Pending() != 7 {
		t.Fatalf("pending %d after stop, want 7", s.Pending())
	}
	se := s.StopError()
	if se == nil {
		t.Fatal("StopError returned nil on a stopped engine")
	}
	if se.Clock != 3 || se.Fired != 3 || se.Pending != 7 {
		t.Fatalf("StopError = %+v, want clock 3, fired 3, pending 7", se)
	}
	for _, part := range []string{"cycle 3", "3 events fired", "7 pending"} {
		if !strings.Contains(se.Error(), part) {
			t.Fatalf("StopError message %q does not mention %q", se.Error(), part)
		}
	}

	// Resume: clearing the stop condition and re-running finishes the
	// remaining events in order.
	s.SetStop(nil)
	if s.Stopped() {
		t.Fatal("SetStop(nil) did not clear the stopped flag")
	}
	s.Run()
	if len(order) != 10 {
		t.Fatalf("resume fired %d total events, want 10", len(order))
	}
	for i, got := range order {
		if got != i+1 {
			t.Fatalf("event order %v not preserved across a stop/resume", order)
		}
	}
	if s.StopError() != nil {
		t.Fatal("StopError non-nil after a completed run")
	}
}

// TestStopInterruptsSameCycleCascade proves an unbounded zero-delay
// cascade — the livelock shape a per-bucket poll alone could never
// interrupt — is stopped within one compaction interval.
func TestStopInterruptsSameCycleCascade(t *testing.T) {
	s := New()
	var again func()
	again = func() { s.Schedule(0, again) }
	s.Schedule(0, again)
	const budget = 5000
	s.SetStop(func() bool { return s.Fired() >= budget })
	s.Run()
	if !s.Stopped() {
		t.Fatal("cascade run did not stop")
	}
	if s.Now() != 0 {
		t.Fatalf("cascade advanced the clock to %d", s.Now())
	}
	// The poll interval inside a cascade is bucketCompactLen events, so
	// the overshoot is bounded by it.
	if s.Fired() < budget || s.Fired() > budget+bucketCompactLen {
		t.Fatalf("cascade stopped after %d events, want within [%d, %d]",
			s.Fired(), budget, budget+bucketCompactLen)
	}
}

// TestStopThenResetIsFresh checks Reset fully clears stop state — the
// condition itself, the stopped flag, and any mid-drain bucket — so a
// pooled engine never inherits a previous run's budget.
func TestStopThenResetIsFresh(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		i := i
		s.At(Cycle(i), func() { s.Schedule(0, func() {}) })
	}
	s.SetStop(func() bool { return s.Fired() >= 7 })
	s.Run()
	if !s.Stopped() {
		t.Fatal("run did not stop")
	}
	s.Reset()
	if s.Stopped() || s.StopError() != nil {
		t.Fatal("Reset did not clear stopped state")
	}
	if s.Now() != 0 || s.Fired() != 0 || s.Pending() != 0 {
		t.Fatalf("Reset left state: now=%d fired=%d pending=%d", s.Now(), s.Fired(), s.Pending())
	}
	// The old stop condition must be gone: a full run fires everything.
	fired := 0
	for i := 0; i < 20; i++ {
		s.At(Cycle(i), func() { fired++ })
	}
	s.Run()
	if fired != 20 || s.Stopped() {
		t.Fatalf("reset engine stopped again: fired %d/20, stopped=%v", fired, s.Stopped())
	}
}

// TestRunUntilStop checks RunUntil honors the stop condition and does
// not advance the clock to the limit when interrupted.
func TestRunUntilStop(t *testing.T) {
	s := New()
	for i := 1; i <= 10; i++ {
		s.At(Cycle(i), func() {})
	}
	s.SetStop(func() bool { return s.Fired() >= 4 })
	if s.RunUntil(100) {
		t.Fatal("stopped RunUntil reported drained")
	}
	if !s.Stopped() {
		t.Fatal("RunUntil did not report stopped")
	}
	if s.Now() != 4 {
		t.Fatalf("stopped RunUntil advanced the clock to %d, want 4", s.Now())
	}
	// Resuming past the stop drains the rest (a drained RunUntil leaves
	// the clock at the last event, as always).
	s.SetStop(nil)
	if !s.RunUntil(100) {
		t.Fatal("resumed RunUntil did not drain")
	}
	if s.Now() != 10 {
		t.Fatalf("RunUntil left clock at %d, want 10", s.Now())
	}
}

// TestStopConditionNeverFiringIsInert pins that an installed-but-false
// stop condition changes nothing observable about a run.
func TestStopConditionNeverFiringIsInert(t *testing.T) {
	run := func(install bool) (Cycle, uint64) {
		s := New()
		for i := 0; i < 200; i++ {
			d := Cycle(i % 17)
			s.Schedule(d, func() {})
		}
		// A couple of past-horizon spills so the overflow path is
		// exercised under the stop poll too.
		s.At(WheelSpan+13, func() {})
		s.At(2*WheelSpan+1, func() {})
		if install {
			s.SetStop(func() bool { return false })
		}
		return s.Run(), s.Fired()
	}
	plainEnd, plainFired := run(false)
	stopEnd, stopFired := run(true)
	if plainEnd != stopEnd || plainFired != stopFired {
		t.Fatalf("inert stop condition changed the run: (%d,%d) vs (%d,%d)",
			plainEnd, plainFired, stopEnd, stopFired)
	}
}
