package event

import "testing"

// Tests in this file pin wheel-structure edge cases directly (the
// randomized differential test covers them statistically; these make the
// boundary conditions explicit and debuggable).

// TestRunUntilOnBucketBoundary runs with a limit exactly on a wheel-ring
// boundary: events at limit fire, events one cycle later do not.
func TestRunUntilOnBucketBoundary(t *testing.T) {
	s := New()
	limit := WheelSpan // cycle 0 of the second revolution
	var fired []Cycle
	for _, d := range []Cycle{limit - 1, limit, limit + 1} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	if s.RunUntil(limit) {
		t.Fatal("RunUntil reported drained with an event beyond the limit pending")
	}
	if len(fired) != 2 || fired[0] != limit-1 || fired[1] != limit {
		t.Fatalf("fired = %v, want [%d %d]", fired, limit-1, limit)
	}
	if s.Now() != limit {
		t.Fatalf("Now = %d, want %d", s.Now(), limit)
	}
	if !s.RunUntil(limit + 1) {
		t.Fatal("RunUntil(limit+1) should drain")
	}
}

// TestRunUntilInsideDrainedBucket re-runs with a limit at a cycle whose
// bucket has already been drained: nothing refires, the clock holds.
func TestRunUntilInsideDrainedBucket(t *testing.T) {
	s := New()
	n := 0
	s.At(2, func() { n++ })
	s.At(600, func() { n += 100 })
	if s.RunUntil(2) {
		t.Fatal("RunUntil(2) reported drained with the cycle-600 event pending")
	}
	if n != 1 || s.Now() != 2 {
		t.Fatalf("n=%d now=%d, want n=1 now=2", n, s.Now())
	}
	// Limit inside the already-drained cycle: no refire, clock untouched.
	if s.RunUntil(2) {
		t.Fatal("second RunUntil(2) reported drained")
	}
	if n != 1 || s.Now() != 2 || s.Pending() != 1 {
		t.Fatalf("after re-run: n=%d now=%d pending=%d, want 1/2/1", n, s.Now(), s.Pending())
	}
	if !s.RunUntil(600) {
		t.Fatal("RunUntil(600) should drain")
	}
	if n != 101 {
		t.Fatalf("n = %d, want 101", n)
	}
}

// TestRunUntilPastHorizonWithOverflow stops the clock past the wheel
// horizon while overflow events are still pending: the limit bump must
// refill the wheel so later scheduling and draining see those events.
func TestRunUntilPastHorizonWithOverflow(t *testing.T) {
	s := New()
	var fired []Cycle
	rec := func(at Cycle) Func { return func() { fired = append(fired, at) } }
	s.At(10, rec(10))
	far := WheelSpan + 100  // beyond the initial horizon: overflow
	deep := 3 * WheelSpan   // stays in overflow across the first bump
	limit := WheelSpan + 50 // past the initial horizon, before both
	s.At(far, rec(far))
	s.At(deep, rec(deep))
	if s.RunUntil(limit) {
		t.Fatal("RunUntil reported drained with overflow pending")
	}
	if s.Now() != limit {
		t.Fatalf("Now = %d, want %d", s.Now(), limit)
	}
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	// The far event is now within the horizon; a same-cycle competitor
	// scheduled after the bump must fire behind it (FIFO by schedule
	// order across the spill).
	s.At(far, rec(far+1000000))
	if !s.RunUntil(4 * WheelSpan) {
		t.Fatal("RunUntil(4*WheelSpan) should drain")
	}
	want := []Cycle{10, far, far + 1000000, deep}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestWheelWrapSameBucket schedules two events one full revolution apart:
// same bucket index, different cycles. The near one fires first; the far
// one spills to overflow and fires exactly one revolution later.
func TestWheelWrapSameBucket(t *testing.T) {
	s := New()
	var fired []Cycle
	s.At(7, func() { fired = append(fired, 7) })
	s.At(7+WheelSpan, func() { fired = append(fired, 7+WheelSpan) })
	end := s.Run()
	if end != 7+WheelSpan {
		t.Fatalf("end = %d, want %d", end, 7+WheelSpan)
	}
	if len(fired) != 2 || fired[0] != 7 || fired[1] != 7+WheelSpan {
		t.Fatalf("fired = %v, want [7 %d]", fired, 7+WheelSpan)
	}
}

// TestResetMidRevolution resets with the clock deep inside a revolution,
// a bucket partially drained, and overflow pending; the wheel must
// rewind to cycle 0 and behave exactly like a fresh engine.
func TestResetMidRevolution(t *testing.T) {
	s := New()
	mid := WheelSpan + WheelSpan/3 // second revolution, mid-ring
	dropped := 0
	s.At(mid, func() { dropped++ })
	s.At(mid, func() { dropped++ }) // second event: bucket drains partially
	s.At(5*WheelSpan, func() { dropped++ })
	// Fire the first of the two same-cycle events, then reset mid-bucket.
	if !s.Step() {
		t.Fatal("Step fired nothing")
	}
	if s.Now() != mid || s.Pending() != 2 {
		t.Fatalf("pre-reset now=%d pending=%d, want %d/2", s.Now(), s.Pending(), mid)
	}
	s.Reset()
	if s.Now() != 0 || s.Fired() != 0 || s.Pending() != 0 || s.MaxQueueLen() != 0 {
		t.Fatalf("after Reset: now=%d fired=%d pending=%d maxlen=%d, want all 0",
			s.Now(), s.Fired(), s.Pending(), s.MaxQueueLen())
	}
	before := dropped
	// The ring indices must have rewound with the clock: cycle-0
	// scheduling lands in bucket 0, same-cycle FIFO restarts, and the
	// dropped events never fire.
	var order []int
	s.At(0, func() { order = append(order, 1) })
	s.At(0, func() { order = append(order, 2) })
	s.Schedule(WheelSpan/3, func() { order = append(order, 3) })
	if end := s.Run(); end != WheelSpan/3 {
		t.Fatalf("post-reset end = %d, want %d", end, WheelSpan/3)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("post-reset order = %v, want [1 2 3]", order)
	}
	if dropped != before {
		t.Fatal("Reset fired a dropped event")
	}
}

// TestResetAfterStepClearsOccupancy is the regression test for a stale
// occupancy bit: Step fires the last pending event but leaves the
// bucket unfinalized (occ bit set, head == len). A Reset at that point
// must clear the bit; a leaked one would later steer nextWheelTime into
// an empty bucket and crash the dispatcher.
func TestResetAfterStepClearsOccupancy(t *testing.T) {
	s := New()
	s.At(70, func() {})
	if !s.Step() { // bucket 70: fired, occ still set, not finalized
		t.Fatal("Step fired nothing")
	}
	s.Reset()
	fired := 0
	s.At(5, func() { fired++ })
	s.RunUntil(60)
	s.At(100, func() { fired++ })
	if !s.Step() { // must advance to 100, not the phantom bucket 70
		t.Fatal("Step fired nothing after Reset")
	}
	if fired != 2 || s.Now() != 100 {
		t.Fatalf("fired=%d now=%d, want 2/100", fired, s.Now())
	}
}

// TestScheduleSteadyStateNoAllocs pins the 0 allocs/op contract for the
// schedule/dispatch hot path once the bucket ring and overflow heap have
// warmed: near-horizon scheduling, batch dispatch, and overflow spills
// must all recycle their storage.
func TestScheduleSteadyStateNoAllocs(t *testing.T) {
	s := New()
	n := 0
	fn := func() { n++ }
	warm := func(rounds int) {
		for i := 0; i < rounds; i++ {
			s.Schedule(Cycle(i%17), fn)
			s.Schedule(WheelSpan+Cycle(i%11), fn) // overflow spill
			if i%4 == 3 {
				s.Run()
			}
		}
		s.Run()
	}
	warm(256)
	allocs := testing.AllocsPerRun(100, func() { warm(32) })
	if allocs != 0 {
		t.Fatalf("steady-state schedule/dispatch allocates %v/op, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("events did not fire")
	}
}
