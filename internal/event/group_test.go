package event

import (
	"math/rand"
	"testing"
)

// cascadeDriver replays one deterministic randomized event cascade on an
// arbitrary set of engines. Each logical node, when fired, logs its id
// and schedules a hash-derived set of children across the partitions —
// same-cycle fan-out, short in-horizon delays, and past-horizon spills
// are all exercised. Node ids are handed out in fire order, so the log
// diverges at the first out-of-order event and the comparison below is
// exact, not just aggregate.
type cascadeDriver struct {
	// sched schedules fn on partition p's engine.
	sched  func(p int, delay Cycle, fn Func)
	parts  int
	nextID uint64
	log    []uint64
	live   int // cascade nodes not yet fired; bounds the run
	limit  int
}

// mix is a splitmix64 step: a cheap deterministic hash so node behavior
// depends only on the node id, never on engine internals.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

var cascadeDelays = []Cycle{0, 0, 1, 2, 3, 15, 50, 225, 511, 512, 600, 2048}

func (d *cascadeDriver) spawn(p int, delay Cycle) {
	id := d.nextID
	d.nextID++
	d.live++
	d.sched(p, delay, func() { d.fire(id) })
}

func (d *cascadeDriver) fire(id uint64) {
	d.live--
	d.log = append(d.log, id)
	if len(d.log) >= d.limit {
		return // stop expanding; the scheduled remainder drains
	}
	h := mix(id)
	children := int(h % 3) // 0..2 keeps the cascade near steady state
	if d.live < 4 {
		children = 2 // re-seed a thinning cascade
	}
	for k := 0; k < children; k++ {
		hk := mix(h + uint64(k))
		d.spawn(int(hk%uint64(d.parts)), cascadeDelays[hk>>8%uint64(len(cascadeDelays))])
	}
}

// runCascadeSeq runs the cascade on one plain Sim (the oracle).
func runCascadeSeq(parts, roots, limit int, rng *rand.Rand) (*cascadeDriver, Cycle, uint64) {
	sim := New()
	d := &cascadeDriver{parts: parts, limit: limit}
	d.sched = func(_ int, delay Cycle, fn Func) { sim.Schedule(delay, fn) }
	for i := 0; i < roots; i++ {
		d.spawn(rng.Intn(parts), Cycle(rng.Intn(700)))
	}
	return d, sim.Run(), sim.Fired()
}

// runCascadeGroup runs the same cascade on a SimGroup with one member
// per partition. window <= 0 drives via Run; otherwise via RunWindow
// slices of that size (the partition runner's shape).
func runCascadeGroup(parts, roots, limit int, rng *rand.Rand, window Cycle) (*cascadeDriver, *SimGroup) {
	g := NewGroup(parts)
	d := &cascadeDriver{parts: parts, limit: limit}
	d.sched = func(p int, delay Cycle, fn Func) { g.Sims()[p].Schedule(delay, fn) }
	for i := 0; i < roots; i++ {
		d.spawn(rng.Intn(parts), Cycle(rng.Intn(700)))
	}
	if window <= 0 {
		g.Run()
	} else {
		for g.RunWindow(g.Now() + window) {
		}
	}
	return d, g
}

// TestGroupVsSingleRandomizedDifferential pins the keyed-mode contract:
// a SimGroup over P partitions fires the exact event order a single
// shared wheel produces, for random cascades and several window sizes.
func TestGroupVsSingleRandomizedDifferential(t *testing.T) {
	iters := 20
	if testing.Short() {
		iters = 5
	}
	rng := rand.New(rand.NewSource(0x9A57ED))
	for it := 0; it < iters; it++ {
		parts := 2 + rng.Intn(4)
		roots := 1 + rng.Intn(8)
		limit := 2000 + rng.Intn(4000)
		seed := rng.Int63()

		ref, refNow, refFired := runCascadeSeq(parts, roots, limit, rand.New(rand.NewSource(seed)))
		for _, window := range []Cycle{0, 1, 15, 512, 5000} {
			got, g := runCascadeGroup(parts, roots, limit, rand.New(rand.NewSource(seed)), window)
			if len(got.log) != len(ref.log) {
				t.Fatalf("iter %d window %d: fired %d events, sequential fired %d",
					it, window, len(got.log), len(ref.log))
			}
			for i := range ref.log {
				if got.log[i] != ref.log[i] {
					t.Fatalf("iter %d window %d: order diverges at event %d: got node %d, want %d",
						it, window, i, got.log[i], ref.log[i])
				}
			}
			if g.Now() != refNow {
				t.Fatalf("iter %d window %d: final clock %d, sequential %d", it, window, g.Now(), refNow)
			}
			if g.Fired() != refFired {
				t.Fatalf("iter %d window %d: fired %d, sequential %d", it, window, g.Fired(), refFired)
			}
			if g.Pending() != 0 {
				t.Fatalf("iter %d window %d: %d events still pending after drain", it, window, g.Pending())
			}
		}
	}
}

// TestGroupResetEquivalence pins reset ≡ fresh for keyed engines: the
// same cascade after a Reset replays the identical order, clock, and
// sequence numbering.
func TestGroupResetEquivalence(t *testing.T) {
	const parts, roots, limit = 3, 4, 3000
	const seed = 42
	g := NewGroup(parts)
	run := func() ([]uint64, Cycle) {
		d := &cascadeDriver{parts: parts, limit: limit}
		d.sched = func(p int, delay Cycle, fn Func) { g.Sims()[p].Schedule(delay, fn) }
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < roots; i++ {
			d.spawn(rng.Intn(parts), Cycle(rng.Intn(700)))
		}
		return d.log, g.Run()
	}
	log1, now1 := run()
	g.Reset()
	if g.Now() != 0 || g.Fired() != 0 || g.Pending() != 0 {
		t.Fatalf("reset group not pristine: now=%d fired=%d pending=%d", g.Now(), g.Fired(), g.Pending())
	}
	log2, now2 := run()
	if now1 != now2 || len(log1) != len(log2) {
		t.Fatalf("reset run differs: now %d vs %d, %d vs %d events", now1, now2, len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("reset run order diverges at %d", i)
		}
	}
}

// TestGroupStopCondition pins the cooperative-stop contract on groups:
// the poll interrupts a run between events, StopError reports aggregate
// fired/pending, and a subsequent Run resumes to completion.
func TestGroupStopCondition(t *testing.T) {
	const parts = 2
	g := NewGroup(parts)
	fired := 0
	var reschedule func()
	n := 0
	reschedule = func() {
		fired++
		if n++; n < 5000 {
			g.Sims()[n%parts].Schedule(1, reschedule)
		}
	}
	g.Sims()[0].Schedule(0, reschedule)

	const cut = 100
	g.SetStop(func() bool { return g.Fired() >= cut })
	g.Run()
	if !g.Stopped() {
		t.Fatal("stop condition did not interrupt the run")
	}
	se := g.StopError()
	if se == nil || se.Fired < cut || se.Pending == 0 {
		t.Fatalf("bad StopError: %+v", se)
	}
	if g.Fired() != uint64(fired) {
		t.Fatalf("Fired()=%d, callbacks ran %d times", g.Fired(), fired)
	}
	g.SetStop(nil)
	g.Run()
	if g.Stopped() || g.Pending() != 0 || fired != 5000 {
		t.Fatalf("resume incomplete: stopped=%v pending=%d fired=%d", g.Stopped(), g.Pending(), fired)
	}
}

// TestGroupSteadyStateAllocationFree pins 0 allocs/op on the keyed
// scheduling and dispatch path: a warm group ping-ponging events across
// partitions (including same-cycle hand-offs) allocates nothing.
func TestGroupSteadyStateAllocationFree(t *testing.T) {
	const parts = 3
	g := NewGroup(parts)
	n := 0
	var ping func()
	ping = func() {
		n++
		delay := Cycle(n & 1) // alternate same-cycle and next-cycle
		g.Sims()[n%parts].Schedule(delay, ping)
	}
	g.Sims()[0].Schedule(1, ping)
	// Warm: one full wheel revolution plus overflow machinery.
	for g.Now() < 2*WheelSpan {
		if !g.RunWindow(g.Now() + 64) {
			t.Fatal("cascade drained unexpectedly")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if !g.RunWindow(g.Now() + 16) {
			t.Fatal("cascade drained unexpectedly")
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state group dispatch allocates %.1f allocs/op, want 0", avg)
	}
}

// TestKeyedSimDirectDrivePanics pins the guard: a keyed member must not
// be driven around its group.
func TestKeyedSimDirectDrivePanics(t *testing.T) {
	g := NewGroup(2)
	g.Sims()[0].Schedule(1, func() {})
	for name, drive := range map[string]func(){
		"Run":      func() { g.Sims()[0].Run() },
		"RunUntil": func() { g.Sims()[0].RunUntil(10) },
		"Step":     func() { g.Sims()[0].Step() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on a keyed Sim did not panic", name)
				}
			}()
			drive()
		}()
	}
}
