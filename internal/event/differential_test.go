package event

import (
	"math/rand"
	"testing"
)

// engine is the Sim surface the differential test exercises; Sim and the
// test-only heapSim reference both satisfy it.
type engine interface {
	Now() Cycle
	Fired() uint64
	Pending() int
	Schedule(delay Cycle, fn Func)
	At(t Cycle, fn Func)
	Step() bool
	Run() Cycle
	RunUntil(limit Cycle) bool
	MaxQueueLen() int
	Reset()
}

// fireRec is one observed firing: which event, at what cycle.
type fireRec struct {
	id int
	at Cycle
}

// driver drives one engine through the shared op sequence, recording
// every firing. Nested scheduling decisions come from the driver's own
// rng; as long as the engines fire in identical order the two rng
// streams stay aligned, and the first divergence is caught by the
// comparison after the op that caused it.
type driver struct {
	e      engine
	rng    *rand.Rand
	log    []fireRec
	nextID int
}

// advDelay draws from an adversarial delay distribution: zero-delay
// storms, near-horizon delays, exact wheel-horizon boundaries, multiples
// of the horizon (wrap collisions: same bucket index, different
// revolutions), and far-past-horizon spills into the overflow heap.
func advDelay(r *rand.Rand) Cycle {
	switch r.Intn(10) {
	case 0:
		return 0
	case 1, 2, 3:
		return Cycle(r.Intn(8))
	case 4:
		return Cycle(r.Intn(64))
	case 5:
		return WheelSpan - 2 + Cycle(r.Intn(5)) // straddle the horizon
	case 6:
		return WheelSpan*Cycle(1+r.Intn(3)) - 1 + Cycle(r.Intn(3)) // wrap boundary
	case 7, 8:
		return Cycle(r.Intn(int(4 * WheelSpan))) // deep overflow
	default:
		return Cycle(r.Intn(40))
	}
}

// add schedules one event (with possible nested scheduling when it
// fires) on the driver's engine.
func (d *driver) add(depth int, useAt bool) {
	delay := advDelay(d.rng)
	id := d.nextID
	d.nextID++
	fn := func() {
		d.log = append(d.log, fireRec{id: id, at: d.e.Now()})
		if depth < 3 && d.rng.Intn(3) == 0 {
			d.add(depth+1, d.rng.Intn(2) == 0)
		}
	}
	if useAt {
		d.e.At(d.e.Now()+delay, fn)
	} else {
		d.e.Schedule(delay, fn)
	}
}

// TestWheelVsHeapRandomizedDifferential pins the time-wheel engine
// against the pre-wheel heap reference on seeded adversarial schedules:
// any interleaving of scheduling bursts, single steps, bounded runs,
// full drains, and mid-revolution Resets must produce identical firing
// sequences and identical observable bookkeeping (Now, Fired, Pending,
// MaxQueueLen) on both engines.
func TestWheelVsHeapRandomizedDifferential(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		opRng := rand.New(rand.NewSource(seed))
		wheel := &driver{e: New(), rng: rand.New(rand.NewSource(seed * 7919))}
		heap := &driver{e: &heapSim{}, rng: rand.New(rand.NewSource(seed * 7919))}
		both := [2]*driver{wheel, heap}

		check := func(op int, what string) {
			t.Helper()
			w, h := wheel.e, heap.e
			if w.Now() != h.Now() || w.Fired() != h.Fired() ||
				w.Pending() != h.Pending() || w.MaxQueueLen() != h.MaxQueueLen() {
				t.Fatalf("seed %d op %d (%s): wheel now=%d fired=%d pending=%d max=%d; heap now=%d fired=%d pending=%d max=%d",
					seed, op, what,
					w.Now(), w.Fired(), w.Pending(), w.MaxQueueLen(),
					h.Now(), h.Fired(), h.Pending(), h.MaxQueueLen())
			}
			if len(wheel.log) != len(heap.log) {
				t.Fatalf("seed %d op %d (%s): wheel fired %d events, heap %d",
					seed, op, what, len(wheel.log), len(heap.log))
			}
			for i := range wheel.log {
				if wheel.log[i] != heap.log[i] {
					t.Fatalf("seed %d op %d (%s): firing %d diverges: wheel %+v, heap %+v",
						seed, op, what, i, wheel.log[i], heap.log[i])
				}
			}
		}

		for op := 0; op < 200; op++ {
			switch opRng.Intn(10) {
			case 0, 1, 2: // scheduling burst
				k := 1 + opRng.Intn(6)
				useAt := opRng.Intn(2) == 0
				for i := 0; i < k; i++ {
					for _, d := range both {
						d.add(0, useAt)
					}
				}
				check(op, "burst")
			case 3, 4: // single step
				sw, sh := wheel.e.Step(), heap.e.Step()
				if sw != sh {
					t.Fatalf("seed %d op %d: Step: wheel %v, heap %v", seed, op, sw, sh)
				}
				check(op, "step")
			case 5, 6, 7: // bounded run, limits aligned to wheel boundaries
				var delta Cycle
				switch opRng.Intn(5) {
				case 0:
					delta = 0
				case 1:
					delta = Cycle(opRng.Intn(16))
				case 2:
					delta = WheelSpan - 1 + Cycle(opRng.Intn(3)) // horizon boundary
				case 3:
					delta = Cycle(opRng.Intn(int(3 * WheelSpan)))
				default:
					now := wheel.e.Now()
					// Limit exactly on the next bucket-ring boundary.
					delta = (now/WheelSpan+1)*WheelSpan - now
				}
				rw := wheel.e.RunUntil(wheel.e.Now() + delta)
				rh := heap.e.RunUntil(heap.e.Now() + delta)
				if rw != rh {
					t.Fatalf("seed %d op %d: RunUntil(+%d): wheel %v, heap %v", seed, op, delta, rw, rh)
				}
				check(op, "rununtil")
			case 8: // full drain
				ew, eh := wheel.e.Run(), heap.e.Run()
				if ew != eh {
					t.Fatalf("seed %d op %d: Run: wheel end %d, heap end %d", seed, op, ew, eh)
				}
				check(op, "run")
			case 9: // reset mid-whatever, then keep using the engines
				if opRng.Intn(3) == 0 {
					for _, d := range both {
						d.e.Reset()
						d.log = d.log[:0]
						d.nextID = 0
					}
					check(op, "reset")
				}
			}
		}
		wheel.e.Run()
		heap.e.Run()
		check(200, "final drain")
	}
}

// TestZeroDelayStormDifferential pins the batch-dispatch contract under
// sustained same-cycle pressure: every fired event schedules more
// zero-delay events into the live bucket mid-drain, on both engines.
func TestZeroDelayStormDifferential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		wheel := &driver{e: New(), rng: rand.New(rand.NewSource(seed))}
		heap := &driver{e: &heapSim{}, rng: rand.New(rand.NewSource(seed))}
		for _, d := range both2(wheel, heap) {
			d := d
			budget := 2000
			var storm func()
			storm = func() {
				d.log = append(d.log, fireRec{id: d.nextID, at: d.e.Now()})
				d.nextID++
				if budget > 0 {
					budget--
					n := 1 + d.rng.Intn(2)
					for i := 0; i < n; i++ {
						d.e.Schedule(0, storm)
					}
				}
			}
			d.e.Schedule(3, storm)
			d.e.Run()
		}
		if len(wheel.log) != len(heap.log) {
			t.Fatalf("seed %d: wheel fired %d, heap fired %d", seed, len(wheel.log), len(heap.log))
		}
		for i := range wheel.log {
			if wheel.log[i] != heap.log[i] {
				t.Fatalf("seed %d: firing %d diverges: wheel %+v, heap %+v",
					seed, i, wheel.log[i], heap.log[i])
			}
		}
		if wheel.e.Now() != heap.e.Now() || wheel.e.Fired() != heap.e.Fired() {
			t.Fatalf("seed %d: end state diverges", seed)
		}
	}
}

func both2(a, b *driver) [2]*driver { return [2]*driver{a, b} }
