package event

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueReady(t *testing.T) {
	var s Sim
	ran := false
	s.Schedule(5, func() { ran = true })
	if got := s.Run(); got != 5 {
		t.Fatalf("Run returned %d, want 5", got)
	}
	if !ran {
		t.Fatal("event did not run")
	}
}

func TestOrderingByTime(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(10, func() { order = append(order, 2) })
	s.Schedule(3, func() { order = append(order, 1) })
	s.Schedule(20, func() { order = append(order, 3) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(7, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 100; i++ {
		if order[i] != i {
			t.Fatalf("same-cycle events fired out of order at %d: %v", i, order[i])
		}
	}
}

func TestZeroDelayRunsSameCycle(t *testing.T) {
	s := New()
	var at Cycle
	s.Schedule(4, func() {
		s.Schedule(0, func() { at = s.Now() })
	})
	s.Run()
	if at != 4 {
		t.Fatalf("zero-delay event ran at %d, want 4", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.Schedule(2, tick)
		}
	}
	s.Schedule(0, tick)
	end := s.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if end != 18 {
		t.Fatalf("end = %d, want 18", end)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Cycle
	for _, d := range []Cycle{1, 5, 9, 15} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	drained := s.RunUntil(9)
	if drained {
		t.Fatal("RunUntil(9) reported drained with an event at 15 pending")
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 9 {
		t.Fatalf("Now = %d, want 9", s.Now())
	}
	if !s.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain")
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events, want 4", len(fired))
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past did not panic")
		}
	}()
	s.At(3, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil func did not panic")
		}
	}()
	s.Schedule(1, nil)
}

func TestFiredAndPending(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Schedule(Cycle(i), func() {})
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the final clock equals the max delay.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var times []Cycle
		var max Cycle
		for _, d := range delays {
			d := Cycle(d)
			if d > max {
				max = d
			}
			s.Schedule(d, func() { times = append(times, s.Now()) })
		}
		end := s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		if len(delays) > 0 && end != max {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySameCycleFIFOUnderInterleaving exercises the determinism
// contract the inlined heap must preserve: under any interleaving of
// Schedule, At, RunUntil and nested mid-run scheduling, events fire at
// their scheduled cycle, cycles never go backwards, and events scheduled
// for the same cycle fire in scheduling order.
func TestPropertySameCycleFIFOUnderInterleaving(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 100; trial++ {
		s := New()
		type rec struct {
			plannedAt Cycle // cycle the event was scheduled for
			firedAt   Cycle // s.Now() when it fired
			id        int   // global scheduling order
		}
		var fired []rec
		nextID := 0
		scheduled := 0

		var add func(depth int)
		add = func(depth int) {
			at := s.Now() + Cycle(rng.Intn(8))
			id := nextID
			nextID++
			scheduled++
			fn := func() {
				fired = append(fired, rec{plannedAt: at, firedAt: s.Now(), id: id})
				if depth < 3 && rng.Intn(4) == 0 {
					add(depth + 1) // events scheduling events mid-run
				}
			}
			if rng.Intn(2) == 0 {
				s.At(at, fn)
			} else {
				s.Schedule(at-s.Now(), fn)
			}
		}

		// Random interleaving of scheduling bursts and partial runs.
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				for k := rng.Intn(5); k > 0; k-- {
					add(0)
				}
			case 2:
				s.RunUntil(s.Now() + Cycle(rng.Intn(6)))
			case 3:
				s.Step()
			}
		}
		s.Run()

		if len(fired) != scheduled {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(fired), scheduled)
		}
		for i, r := range fired {
			if r.firedAt != r.plannedAt {
				t.Fatalf("trial %d: event %d fired at %d, scheduled for %d",
					trial, r.id, r.firedAt, r.plannedAt)
			}
			if i == 0 {
				continue
			}
			prev := fired[i-1]
			if r.firedAt < prev.firedAt {
				t.Fatalf("trial %d: time went backwards (%d after %d)",
					trial, r.firedAt, prev.firedAt)
			}
			if r.firedAt == prev.firedAt && r.id < prev.id {
				t.Fatalf("trial %d: same-cycle FIFO violated at cycle %d: event %d fired after %d",
					trial, r.firedAt, prev.id, r.id)
			}
		}
	}
}

func TestMaxQueueLen(t *testing.T) {
	s := New()
	for i := 0; i < 17; i++ {
		s.Schedule(Cycle(i), func() {})
	}
	s.Run()
	if s.MaxQueueLen() != 17 {
		t.Fatalf("MaxQueueLen = %d, want 17", s.MaxQueueLen())
	}
}

// TestSimReset checks a reset simulator is observably identical to a
// fresh one: clock at 0, nothing fired, pending events dropped, and the
// same-cycle FIFO sequence restarted (fire order after a reset matches a
// fresh sim's, which the reset-equivalence contract depends on).
func TestSimReset(t *testing.T) {
	s := New()
	dropped := false
	s.Schedule(5, func() {})
	s.Schedule(9, func() { dropped = true })
	s.Step()

	s.Reset()
	if s.Now() != 0 || s.Fired() != 0 || s.Pending() != 0 || s.MaxQueueLen() != 0 {
		t.Fatalf("after Reset: now=%d fired=%d pending=%d maxlen=%d, want all 0",
			s.Now(), s.Fired(), s.Pending(), s.MaxQueueLen())
	}
	s.Run()
	if dropped {
		t.Fatal("Reset fired a dropped event")
	}

	// Same-cycle FIFO order restarts identically to a fresh sim.
	var order []int
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(1, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("post-reset same-cycle order = %v, want [1 2]", order)
	}
	if s.Now() != 1 {
		t.Fatalf("post-reset Now = %d, want 1", s.Now())
	}
}
