package event

// heapSim is the pre-wheel event engine — a single binary min-heap over
// (time, scheduling order) — kept verbatim as a test-only reference
// implementation. Its behaviour defines the engine contract: the
// randomized differential test (differential_test.go) pins the time-wheel
// Sim against it on adversarial schedules, so any divergence in firing
// order, clock advance, or bookkeeping is caught without golden files.

type heapItem struct {
	at  Cycle
	seq uint64
	fn  Func
}

func (a heapItem) less(b heapItem) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

type heapSim struct {
	now    Cycle
	seq    uint64
	queue  []heapItem
	fired  uint64
	maxLen int
}

func (s *heapSim) Now() Cycle    { return s.now }
func (s *heapSim) Fired() uint64 { return s.fired }
func (s *heapSim) Pending() int  { return len(s.queue) }

func (s *heapSim) Schedule(delay Cycle, fn Func) {
	s.At(s.now+delay, fn)
}

func (s *heapSim) At(t Cycle, fn Func) {
	if t < s.now {
		panic("event: scheduling in the past")
	}
	if fn == nil {
		panic("event: nil event func")
	}
	s.seq++
	s.queue = append(s.queue, heapItem{at: t, seq: s.seq, fn: fn})
	s.siftUp(len(s.queue) - 1)
	if len(s.queue) > s.maxLen {
		s.maxLen = len(s.queue)
	}
}

func (s *heapSim) siftUp(i int) {
	q := s.queue
	it := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !it.less(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = it
}

func (s *heapSim) pop() heapItem {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	it := q[n]
	q[n].fn = nil
	s.queue = q[:n]
	if n > 0 {
		i := 0
		for {
			child := 2*i + 1
			if child >= n {
				break
			}
			if right := child + 1; right < n && q[right].less(q[child]) {
				child = right
			}
			if !q[child].less(it) {
				break
			}
			q[i] = q[child]
			i = child
		}
		q[i] = it
	}
	return top
}

func (s *heapSim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := s.pop()
	s.now = it.at
	s.fired++
	it.fn()
	return true
}

func (s *heapSim) Run() Cycle {
	for s.Step() {
	}
	return s.now
}

func (s *heapSim) RunUntil(limit Cycle) bool {
	for len(s.queue) > 0 && s.queue[0].at <= limit {
		s.Step()
	}
	if len(s.queue) == 0 {
		return true
	}
	if limit > s.now {
		s.now = limit
	}
	return false
}

func (s *heapSim) MaxQueueLen() int { return s.maxLen }

func (s *heapSim) Reset() {
	for i := range s.queue {
		s.queue[i].fn = nil
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.maxLen = 0
}
