package event

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQueueDeliversInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	q := NewQueue(s, func(v int) { got = append(got, v) })
	q.Push(10, 2)
	q.Push(3, 1)
	q.Push(20, 3)
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order = %v, want %v", got, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", q.Len())
	}
}

func TestQueueSameCycleFIFO(t *testing.T) {
	s := New()
	var got []int
	q := NewQueue(s, func(v int) { got = append(got, v) })
	for i := 0; i < 100; i++ {
		q.Push(7, i)
	}
	s.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle deliveries out of order at %d: %v", i, got[i])
		}
	}
}

func TestQueueEarlierPushSupersedesArmedDrain(t *testing.T) {
	// Arm a drain at a late time, then push an earlier entry: it must be
	// delivered at its own time, and the stale late fire must not
	// re-deliver or crash.
	s := New()
	var at []Cycle
	var q *Queue[int]
	q = NewQueue(s, func(v int) { at = append(at, s.Now()) })
	q.Push(50, 1)
	s.Schedule(5, func() { q.Push(2, 2) }) // due at 7, earlier than 50
	s.Run()
	if len(at) != 2 || at[0] != 7 || at[1] != 50 {
		t.Fatalf("delivery times = %v, want [7 50]", at)
	}
}

func TestQueueDeliverTimes(t *testing.T) {
	s := New()
	var times []Cycle
	q := NewQueue(s, func(v int) { times = append(times, s.Now()) })
	q.Push(0, 0) // zero delay delivers later this cycle
	q.Push(4, 1)
	s.Run()
	if len(times) != 2 || times[0] != 0 || times[1] != 4 {
		t.Fatalf("delivery times = %v, want [0 4]", times)
	}
}

func TestQueueReentrantPush(t *testing.T) {
	// deliver pushes back into the same queue: same-cycle pushes are
	// delivered within the same drain, future ones re-arm.
	s := New()
	var got []int
	var q *Queue[int]
	q = NewQueue(s, func(v int) {
		got = append(got, v)
		if v < 4 {
			q.Push(0, v+10) // due now: same drain
			q.Push(2, v+1)  // future: re-armed drain
		}
	})
	q.Push(1, 1)
	s.Run()
	want := []int{1, 11, 2, 12, 3, 13, 4}
	if len(got) != len(want) {
		t.Fatalf("deliveries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deliveries = %v, want %v", got, want)
		}
	}
}

func TestQueueSteadyStateNoAllocs(t *testing.T) {
	s := New()
	n := 0
	q := NewQueue(s, func(v int) { n += v })
	// Warm up the entry heap and arm stack.
	for i := 0; i < 64; i++ {
		q.Push(Cycle(i%7), 1)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			q.Push(Cycle(i%5), 1)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state queue push/drain allocates %v/op, want 0", allocs)
	}
}

// TestQueueRandomizedMatchesSchedule cross-checks the queue against
// plain per-entry scheduling under random pushes, including pushes from
// inside deliveries.
func TestQueueRandomizedMatchesSchedule(t *testing.T) {
	type rec struct {
		at Cycle
		v  int
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := New()
		var got []rec
		var q *Queue[int]
		depth := 0
		q = NewQueue(s, func(v int) {
			got = append(got, rec{at: s.Now(), v: v})
			if depth < 200 && rng.Intn(3) == 0 {
				depth++
				q.Push(Cycle(rng.Intn(6)), depth+1000)
			}
		})
		var want []rec
		base := 0
		for i := 0; i < 30; i++ {
			d := Cycle(rng.Intn(10))
			q.Push(d, base+i)
			want = append(want, rec{at: s.Now() + d, v: base + i})
		}
		s.Run()
		// Every pushed entry must have been delivered at its due time;
		// nested pushes are checked for time-monotonicity only.
		delivered := make(map[int]Cycle)
		for i, r := range got {
			delivered[r.v] = r.at
			if i > 0 && got[i].at < got[i-1].at {
				t.Fatalf("trial %d: deliveries went back in time: %v", trial, got)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i].at < want[j].at })
		for _, w := range want {
			at, ok := delivered[w.v]
			if !ok {
				t.Fatalf("trial %d: entry %d never delivered", trial, w.v)
			}
			if at != w.at {
				t.Fatalf("trial %d: entry %d delivered at %d, want %d", trial, w.v, at, w.at)
			}
		}
	}
}

func TestTickerCoalescesArms(t *testing.T) {
	s := New()
	fired := 0
	var tk *Ticker
	tk = NewTicker(s, func() { fired++ })
	tk.ArmAt(5)
	tk.ArmAt(5) // coalesces
	tk.ArmAt(9) // later: covered by the 5 fire's re-arm responsibility
	s.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1 (arms coalesce)", fired)
	}
	if tk.Armed() {
		t.Fatal("ticker still armed after drain")
	}
}

func TestTickerDisarmSilencesOutstandingFires(t *testing.T) {
	s := New()
	fired := 0
	tk := NewTicker(s, func() { fired++ })
	tk.ArmAt(5)
	tk.ArmAt(3) // stack [5, 3]; two events scheduled
	tk.Disarm()
	if tk.Armed() {
		t.Fatal("disarmed ticker reports Armed")
	}
	s.Run()
	if fired != 0 {
		t.Fatalf("disarmed ticker fired %d times, want 0", fired)
	}
}

func TestTickerRearmAfterDisarmRevivesEarliestFire(t *testing.T) {
	s := New()
	var at []Cycle
	var tk *Ticker
	tk = NewTicker(s, func() { at = append(at, s.Now()) })
	tk.ArmAt(10)
	tk.Disarm()
	// Re-arming for a later cycle revives the orphaned earlier fire:
	// the callback runs early (contractually fine — it re-checks) and
	// exactly once, not twice.
	tk.ArmAt(15)
	if !tk.Armed() {
		t.Fatal("re-armed ticker reports disarmed")
	}
	s.Run()
	if len(at) != 1 || at[0] != 10 {
		t.Fatalf("fire times = %v, want [10] (revived early fire)", at)
	}
}

func TestTickerRearmAfterDisarmAtEarlierCycle(t *testing.T) {
	s := New()
	var at []Cycle
	var tk *Ticker
	tk = NewTicker(s, func() { at = append(at, s.Now()) })
	tk.ArmAt(10)
	tk.Disarm()
	tk.ArmAt(4) // earlier than the orphaned fire: a fresh event
	s.Run()
	// The fresh arm fires at 4; the orphaned fire at 10 stays silent.
	if len(at) != 1 || at[0] != 4 {
		t.Fatalf("fire times = %v, want [4]", at)
	}
}

func TestTickerEarlierArmFires(t *testing.T) {
	s := New()
	var at []Cycle
	var tk *Ticker
	tk = NewTicker(s, func() { at = append(at, s.Now()) })
	tk.ArmAt(20)
	s.Schedule(3, func() { tk.ArmAt(6) })
	s.Run()
	// The earlier arm fires at 6; the superseded arm still fires at 20
	// (tickers cannot cancel), and the callback must tolerate it.
	if len(at) != 2 || at[0] != 6 || at[1] != 20 {
		t.Fatalf("fire times = %v, want [6 20]", at)
	}
}

func TestTickerRearmFromCallback(t *testing.T) {
	s := New()
	n := 0
	var tk *Ticker
	tk = NewTicker(s, func() {
		n++
		if n < 5 {
			tk.ArmAt(s.Now() + 3)
		}
	})
	tk.ArmAt(1)
	end := s.Run()
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	if end != 13 {
		t.Fatalf("end = %d, want 13", end)
	}
}

func TestTickerSteadyStateNoAllocs(t *testing.T) {
	s := New()
	var tk *Ticker
	tk = NewTicker(s, func() {})
	tk.ArmAt(1)
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		tk.ArmAt(s.Now() + 1)
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state ticker arm/fire allocates %v/op, want 0", allocs)
	}
}

// TestRunUntilNeverRewinds is the regression test for the clock-rewind
// bug: RunUntil with a limit below the current cycle used to set
// s.now = limit, silently moving time backwards.
func TestRunUntilNeverRewinds(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Schedule(20, func() {})
	if s.RunUntil(10) {
		t.Fatal("RunUntil(10) reported drained with an event at 20 pending")
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %d, want 10", s.Now())
	}
	if s.RunUntil(5) {
		t.Fatal("RunUntil(5) reported drained")
	}
	if s.Now() != 10 {
		t.Fatalf("RunUntil(5) rewound the clock to %d, want 10", s.Now())
	}
	// A drained queue must not rewind either.
	s.RunUntil(100)
	if s.Now() != 20 {
		t.Fatalf("Now = %d after drain, want 20", s.Now())
	}
	s.RunUntil(3)
	if s.Now() != 20 {
		t.Fatalf("RunUntil(3) on a drained sim rewound the clock to %d, want 20", s.Now())
	}
}

// TestQueueReset checks reset drops undelivered entries and the queue
// keeps working on a reset sim.
func TestQueueReset(t *testing.T) {
	s := New()
	var got []int
	q := NewQueue(s, func(v int) { got = append(got, v) })
	q.Push(3, 1)
	q.Push(7, 2)

	q.Reset()
	s.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len = %d after Reset, want 0", q.Len())
	}
	s.Run()
	if len(got) != 0 {
		t.Fatalf("reset queue delivered %v", got)
	}

	q.Push(2, 42)
	s.Run()
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("post-reset delivery = %v, want [42]", got)
	}
	if s.Now() != 2 {
		t.Fatalf("post-reset delivery at %d, want 2", s.Now())
	}
}

// TestTickerReset checks reset clears the arming stack so a reset ticker
// re-arms from scratch.
func TestTickerReset(t *testing.T) {
	s := New()
	fires := 0
	tk := NewTicker(s, func() { fires++ })
	tk.ArmAt(4)

	tk.Reset()
	s.Reset()
	if tk.Armed() {
		t.Fatal("ticker still armed after Reset")
	}
	s.Run()
	if fires != 0 {
		t.Fatalf("reset ticker fired %d times", fires)
	}

	tk.ArmAt(2)
	if !tk.Armed() || tk.NextFire() != 2 {
		t.Fatal("ticker did not re-arm after Reset")
	}
	s.Run()
	if fires != 1 {
		t.Fatalf("post-reset fires = %d, want 1", fires)
	}
}
