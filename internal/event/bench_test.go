package event

import "testing"

// BenchmarkScheduleFire pins the schedule→fire round-trip cost of the
// wheel engine per scheduling regime, with the pre-wheel heap reference
// (heapref_test.go) as the comparison baseline. All steady-state wheel
// variants must report 0 allocs/op; CI's bench-smoke job runs every
// sub-benchmark once so the wheel-vs-heap comparison cannot rot.
func BenchmarkScheduleFire(b *testing.B) {
	// near-horizon: delays well inside WheelSpan — the bucket fast path
	// every cache/DRAM/issue latency takes.
	b.Run("near-horizon", func(b *testing.B) {
		s := New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				s.Schedule(Cycle(n%7+1), tick)
			}
		}
		b.ReportAllocs()
		s.Schedule(1, tick)
		s.Run()
	})
	// past-horizon: every delay spills to the overflow heap and refills
	// the wheel as the clock advances — the worst case for the wheel.
	b.Run("past-horizon", func(b *testing.B) {
		s := New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				s.Schedule(WheelSpan+Cycle(n%7), tick)
			}
		}
		b.ReportAllocs()
		s.Schedule(WheelSpan, tick)
		s.Run()
	})
	// zero-delay: a same-cycle storm appended to the live bucket
	// mid-drain — pure batch-dispatch throughput.
	b.Run("zero-delay", func(b *testing.B) {
		s := New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				s.Schedule(0, tick)
			}
		}
		b.ReportAllocs()
		s.Schedule(1, tick)
		s.Run()
	})
	// noc-latency: the delay profile of a multi-tile NoC run — per-link
	// latencies in the tens of cycles plus the occasional multi-hop
	// return path that lands near or past the horizon. Guards the wheel
	// horizon: if accumulated path latencies push the hot delays past
	// WheelSpan, this sub-benchmark's allocs and ns/op degrade toward
	// past-horizon and wheelBits should be raised (see "# Tuning" in
	// event.go).
	b.Run("noc-latency", func(b *testing.B) {
		s := New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				switch n & 7 {
				case 0:
					// A worst-case mesh round trip: several 24-cycle
					// hops each way stacked on queueing, spilling just
					// past the horizon.
					s.Schedule(WheelSpan+Cycle(n&31), tick)
				case 1, 2:
					// Multi-hop forward paths: a few links deep.
					s.Schedule(Cycle(3*24+n%24), tick)
				default:
					// Single-link hops at the default 24-cycle latency.
					s.Schedule(Cycle(24+n%8), tick)
				}
			}
		}
		b.ReportAllocs()
		s.Schedule(24, tick)
		s.Run()
	})
	// mixed: a fan of pending events across near, boundary, and
	// past-horizon delays — the realistic regime, and the shape that
	// made the old heap pay O(log n) per event.
	b.Run("mixed", func(b *testing.B) {
		s := New()
		benchMixed(s, b.N, b)
	})
	// heap-reference: the identical mixed workload on the pre-wheel
	// binary heap, so the wheel-vs-heap ratio is visible in every bench
	// run without checking out an old commit.
	b.Run("heap-reference", func(b *testing.B) {
		s := &heapSim{}
		benchMixed(s, b.N, b)
	})
}

// benchMixed drives n events through eng with a 256-event fan across a
// mixed delay distribution (near-horizon, horizon boundary, overflow).
func benchMixed(eng engine, n int, b *testing.B) {
	const fan = 256
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			switch fired & 15 {
			case 0:
				eng.Schedule(0, tick)
			case 1:
				eng.Schedule(WheelSpan-1+Cycle(fired&3), tick)
			case 2:
				eng.Schedule(2*WheelSpan, tick)
			default:
				eng.Schedule(Cycle(fired%13+1), tick)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < fan && i < n; i++ {
		fired++
		eng.Schedule(Cycle(i%13+1), tick)
	}
	eng.Run()
}
