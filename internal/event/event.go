// Package event provides a deterministic discrete-event simulation engine.
//
// All simulator components share a single Sim. Time is measured in integer
// cycles (GPU clock domain). Events scheduled for the same cycle fire in
// the order they were scheduled, which keeps runs bit-for-bit reproducible.
package event

import "container/heap"

// Cycle is a point in simulated time, in GPU clock cycles.
type Cycle uint64

// Func is the callback invoked when an event fires.
type Func func()

type item struct {
	at  Cycle
	seq uint64
	fn  Func
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h eventHeap) peek() item    { return h[0] }

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    Cycle
	seq    uint64
	queue  eventHeap
	fired  uint64
	maxLen int
}

// New returns a fresh simulator at cycle 0.
func New() *Sim { return &Sim{} }

// Now returns the current simulated cycle.
func (s *Sim) Now() Cycle { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events waiting in the queue.
func (s *Sim) Pending() int { return len(s.queue) }

// Schedule arranges for fn to run delay cycles from now. A delay of zero
// runs fn later in the current cycle, after already-queued same-cycle
// events.
func (s *Sim) Schedule(delay Cycle, fn Func) {
	s.At(s.now+delay, fn)
}

// At arranges for fn to run at absolute cycle t. Scheduling in the past
// panics: it would silently corrupt causality.
func (s *Sim) At(t Cycle, fn Func) {
	if t < s.now {
		panic("event: scheduling in the past")
	}
	if fn == nil {
		panic("event: nil event func")
	}
	s.seq++
	heap.Push(&s.queue, item{at: t, seq: s.seq, fn: fn})
	if len(s.queue) > s.maxLen {
		s.maxLen = len(s.queue)
	}
}

// Step executes the next event, if any, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := heap.Pop(&s.queue).(item)
	s.now = it.at
	s.fired++
	it.fn()
	return true
}

// Run executes events until the queue drains and returns the final cycle.
func (s *Sim) Run() Cycle {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ limit. It returns true if the queue
// drained, false if events at cycles beyond limit remain.
func (s *Sim) RunUntil(limit Cycle) bool {
	for len(s.queue) > 0 && s.queue.peek().at <= limit {
		s.Step()
	}
	if len(s.queue) == 0 {
		return true
	}
	s.now = limit
	return false
}

// MaxQueueLen reports the high-water mark of the event queue, useful for
// harness diagnostics.
func (s *Sim) MaxQueueLen() int { return s.maxLen }
