// Package event provides a deterministic discrete-event simulation engine.
//
// All simulator components share a single Sim. Time is measured in integer
// cycles (GPU clock domain). Events scheduled for the same cycle fire in
// the order they were scheduled, which keeps runs bit-for-bit reproducible.
package event

// Cycle is a point in simulated time, in GPU clock cycles.
type Cycle uint64

// Func is the callback invoked when an event fires.
type Func func()

type item struct {
	at  Cycle
	seq uint64
	fn  Func
}

// less orders items by time, breaking ties by scheduling order (the
// same-cycle FIFO determinism contract).
func (a item) less(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is a discrete-event simulator. The zero value is ready to use.
//
// The event queue is a binary min-heap maintained inline over a concrete
// []item slice: unlike container/heap, nothing is boxed into an interface,
// so scheduling an event performs no per-event allocation (slice growth is
// amortized).
type Sim struct {
	now    Cycle
	seq    uint64
	queue  []item
	fired  uint64
	maxLen int
}

// New returns a fresh simulator at cycle 0.
func New() *Sim { return &Sim{} }

// Now returns the current simulated cycle.
func (s *Sim) Now() Cycle { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events waiting in the queue.
func (s *Sim) Pending() int { return len(s.queue) }

// Schedule arranges for fn to run delay cycles from now. A delay of zero
// runs fn later in the current cycle, after already-queued same-cycle
// events.
func (s *Sim) Schedule(delay Cycle, fn Func) {
	s.At(s.now+delay, fn)
}

// At arranges for fn to run at absolute cycle t. Scheduling in the past
// panics: it would silently corrupt causality.
func (s *Sim) At(t Cycle, fn Func) {
	if t < s.now {
		panic("event: scheduling in the past")
	}
	if fn == nil {
		panic("event: nil event func")
	}
	s.seq++
	s.queue = append(s.queue, item{at: t, seq: s.seq, fn: fn})
	s.siftUp(len(s.queue) - 1)
	if len(s.queue) > s.maxLen {
		s.maxLen = len(s.queue)
	}
}

// siftUp restores the heap property after appending at index i.
func (s *Sim) siftUp(i int) {
	q := s.queue
	it := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !it.less(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = it
}

// pop removes and returns the minimum item. The caller checks non-empty.
func (s *Sim) pop() item {
	q := s.queue
	top := q[0]
	n := len(q) - 1
	it := q[n]
	q[n].fn = nil // release the callback so it can be collected
	s.queue = q[:n]
	if n > 0 {
		// Sift the former last element down from the root.
		i := 0
		for {
			child := 2*i + 1
			if child >= n {
				break
			}
			if right := child + 1; right < n && q[right].less(q[child]) {
				child = right
			}
			if !q[child].less(it) {
				break
			}
			q[i] = q[child]
			i = child
		}
		q[i] = it
	}
	return top
}

// Step executes the next event, if any, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := s.pop()
	s.now = it.at
	s.fired++
	it.fn()
	return true
}

// Run executes events until the queue drains and returns the final cycle.
func (s *Sim) Run() Cycle {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ limit. It returns true if the queue
// drained, false if events at cycles beyond limit remain. A limit in the
// past leaves the clock untouched: time never rewinds.
func (s *Sim) RunUntil(limit Cycle) bool {
	for len(s.queue) > 0 && s.queue[0].at <= limit {
		s.Step()
	}
	if len(s.queue) == 0 {
		return true
	}
	if limit > s.now {
		s.now = limit
	}
	return false
}

// MaxQueueLen reports the high-water mark of the event queue, useful for
// harness diagnostics.
func (s *Sim) MaxQueueLen() int { return s.maxLen }

// Reset returns the simulator to the state of a freshly built one — cycle
// 0, nothing fired, empty queue — while keeping the queue's grown
// capacity, so a reset simulator re-runs without cold-start allocations.
// Pending events are dropped, not fired. Components that track their own
// arming state on top of the Sim (Ticker, Queue) must be Reset alongside,
// or their bookkeeping would reference events that no longer exist.
func (s *Sim) Reset() {
	for i := range s.queue {
		s.queue[i].fn = nil // release callbacks so they can be collected
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.maxLen = 0
}
