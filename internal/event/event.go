// Package event provides a deterministic discrete-event simulation engine.
//
// All simulator components share a single Sim. Time is measured in integer
// cycles (GPU clock domain). Events scheduled for the same cycle fire in
// the order they were scheduled, which keeps runs bit-for-bit reproducible.
//
// # Scheduler structure
//
// The engine is a two-level time wheel. The first level is a power-of-two
// ring of per-cycle buckets covering the near horizon — the next WheelSpan
// cycles. Each bucket is an append-only []Func reused across wheel
// revolutions, so scheduling within the horizon is one append plus one
// occupancy-bitmap OR, and same-cycle FIFO order falls out of append order
// with no sequence-number comparisons. Events beyond the horizon spill
// into a small overflow min-heap (ordered by time, then scheduling order)
// that refills the wheel as the clock advances; in a cycle-accurate
// simulator almost everything is scheduled within a short, known horizon
// (next-cycle issue, cache latencies, DRAM timing windows), so the heap
// sees only coarse timers such as kernel-launch latency and flush-walker
// tails.
//
// Dispatch is batched: Run and RunUntil drain an entire bucket per clock
// advance instead of performing one ordered pop per event. Events
// scheduled for the current cycle mid-drain are appended to the live
// bucket and fire in the same drain, preserving the documented
// "delay 0 runs after already-queued same-cycle events" contract.
//
// # Tuning
//
// WheelSpan (2^wheelBits cycles) is the one tunable. It should comfortably
// cover the common scheduling delays of the modelled hardware (here: the
// ≈225-cycle uncontested memory latency, all cache/DRAM/fabric latencies);
// raising wheelBits trades bucket-array memory (one slice header per
// cycle of horizon) for fewer overflow spills. Spills are correct but pay
// the old O(log n) heap cost, so a horizon that captures the hot paths is
// all that matters — coarse one-off timers can spill freely.
//
// Multi-tile topologies stack internal/noc link latencies on top of the
// cache and DRAM delays: a request crossing an H-hop path schedules one
// event per hop (each well under WheelSpan at the default 24-cycle link
// latency) plus one return event at the whole path's one-way latency.
// With the built-in topologies (≤ 8×8 mesh, worst path ≈ 16 hops ≈ 384
// cycles) every hot delay still fits the 512-cycle horizon. If you
// raise link latency or build deeper custom graphs so that H × latency
// approaches WheelSpan, the return events start spilling to the
// overflow heap on every request — BenchmarkScheduleFire/noc-latency
// tracks exactly this regime, and a drift of its ns/op toward the
// past-horizon sub-benchmark is the signal to raise wheelBits.
package event

import (
	"fmt"
	"math/bits"
)

// Cycle is a point in simulated time, in GPU clock cycles.
type Cycle uint64

// Func is the callback invoked when an event fires.
type Func func()

// ErrStopped describes a Run or RunUntil that returned early because the
// cooperative stop condition (SetStop) fired: the clock and fired-event
// count at the stop point, and how many events were left pending. The
// harness layers above (budgets, cancellation, watchdogs) wrap it into
// their own diagnostics.
type ErrStopped struct {
	// Clock is the simulated cycle at which the run stopped.
	Clock Cycle
	// Fired is the number of events executed when the stop triggered.
	Fired uint64
	// Pending is the number of events still waiting to fire.
	Pending int
}

// Error implements error.
func (e *ErrStopped) Error() string {
	return fmt.Sprintf("event: run stopped at cycle %d (%d events fired, %d pending)",
		e.Clock, e.Fired, e.Pending)
}

const (
	// wheelBits sizes the near-horizon bucket ring. It must be at least
	// 6: the occupancy bitmap packs 64 buckets per word, and the ring
	// scan requires a whole (power-of-two) number of words.
	wheelBits = 9
	// WheelSpan is the scheduling horizon of the wheel level: an event
	// with delay < WheelSpan goes into a per-cycle bucket (O(1));
	// farther events spill into the overflow heap until the clock
	// advances to within WheelSpan of them.
	WheelSpan Cycle = 1 << wheelBits
	wheelMask       = int(WheelSpan - 1)
	occWords        = int(WheelSpan) / 64
)

// Compile-time guard: wheelBits >= 6 (see the wheelBits comment); a
// smaller ring would make occWords zero and every At panic.
const _ = uint(wheelBits - 6)

// item is one overflow-heap entry. seq breaks same-cycle ties in
// scheduling order; wheel buckets need no seq, append order is FIFO.
type item struct {
	at  Cycle
	seq uint64
	fn  Func
}

// less orders items by time, breaking ties by scheduling order (the
// same-cycle FIFO determinism contract).
func (a item) less(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Sim is a discrete-event simulator. The zero value is ready to use.
//
// Nothing on the scheduling or dispatch path boxes into an interface or
// allocates per event: wheel buckets and the overflow heap are concrete
// slices whose growth is amortized, and bucket storage is reused across
// wheel revolutions.
type Sim struct {
	now   Cycle
	fired uint64

	// wheel is the near-horizon level: bucket (t & wheelMask) holds the
	// events of cycle t for now <= t < now+WheelSpan. head indexes the
	// next unfired event of the current cycle's bucket; mid-drain
	// schedules for the current cycle append behind it.
	wheel      [int(WheelSpan)][]Func
	occ        [occWords]uint64 // occupancy bitmap over wheel buckets
	wheelLive  int              // unfired events across all buckets
	head       int
	wheelReady bool // buckets carved from the seed arena

	// overflow is the far-future level: a binary min-heap (maintained
	// inline over a concrete slice) of events at now+WheelSpan or later,
	// drained into the wheel as the clock advances.
	overflow []item
	seq      uint64

	maxLen int

	// Keyed (group) mode — see SimGroup. shared, when non-nil, links
	// this wheel into a partition group sharing one global sequence
	// counter: every scheduled event is stamped with the group-wide
	// sequence number, wheelSeq mirrors the wheel buckets with those
	// numbers, and the group scheduler merges the member wheels in
	// exact global (cycle, sequence) order. A plain Sim leaves all of
	// this nil and pays only a nil check in At and finalizeBucket.
	shared   *SimGroup
	wheelSeq *[int(WheelSpan)][]uint64
	// fcycle/fseq cache the key of the next pending event (the sim's
	// frontier) so the group's per-event merge does not rescan the
	// occupancy bitmap. fvalid false means "recompute on next query".
	fcycle Cycle
	fseq   uint64
	fvalid bool

	// stop, when non-nil, is the cooperative stop condition: polled once
	// per bucket drain (and at cascade-compaction points, so unbounded
	// same-cycle cascades stay interruptible). When it returns true the
	// current Run/RunUntil returns early with stopped set. Unset, it
	// costs one nil check per clock advance — nothing per event.
	stop    func() bool
	stopped bool
}

// New returns a fresh simulator at cycle 0.
func New() *Sim { return &Sim{} }

// Now returns the current simulated cycle.
func (s *Sim) Now() Cycle { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events waiting to fire, across the wheel
// buckets and the overflow heap.
func (s *Sim) Pending() int { return s.wheelLive + len(s.overflow) }

// SetStop installs (or, with nil, removes) the cooperative stop
// condition. The engine polls it once per bucket drain — i.e. once per
// clock advance that had events — and additionally every
// bucketCompactLen events inside a sustained same-cycle cascade, so
// every livelock shape is polled at a bounded event interval. When the
// poll returns true, the running Run/RunUntil returns immediately with
// events still pending; Stopped reports the interruption and StopError
// describes it. SetStop clears any previous stop state.
//
// The stop function runs on the simulation goroutine between event
// callbacks; it must not schedule events or re-enter the Sim. Polls are
// bounded but not per-event: a stop request is honored within one
// bucket (or one compaction interval), so budget enforcement built on
// top overshoots by at most that much.
func (s *Sim) SetStop(stop func() bool) {
	s.stop = stop
	s.stopped = false
}

// Stopped reports whether the most recent Run or RunUntil returned early
// because the stop condition fired. Starting a new Run/RunUntil or
// calling SetStop or Reset clears it.
func (s *Sim) Stopped() bool { return s.stopped }

// StopError returns an *ErrStopped describing the interrupted run, or
// nil when the engine is not stopped.
func (s *Sim) StopError() *ErrStopped {
	if !s.stopped {
		return nil
	}
	return &ErrStopped{Clock: s.now, Fired: s.fired, Pending: s.Pending()}
}

// checkStop polls the stop condition, latching stopped. It reports
// whether the current drain loop should bail out.
func (s *Sim) checkStop() bool {
	if s.stop != nil && s.stop() {
		s.stopped = true
	}
	return s.stopped
}

// Schedule arranges for fn to run delay cycles from now. A delay of zero
// runs fn later in the current cycle, after already-queued same-cycle
// events.
func (s *Sim) Schedule(delay Cycle, fn Func) {
	s.At(s.now+delay, fn)
}

// At arranges for fn to run at absolute cycle t. Scheduling in the past
// panics: it would silently corrupt causality.
func (s *Sim) At(t Cycle, fn Func) {
	if t < s.now {
		panic("event: scheduling in the past")
	}
	if fn == nil {
		panic("event: nil event func")
	}
	if s.shared != nil {
		s.atKeyed(t, fn)
		return
	}
	if !s.wheelReady {
		s.initWheel()
	}
	if t-s.now < WheelSpan {
		b := int(t) & wheelMask
		s.wheel[b] = append(s.wheel[b], fn)
		s.occ[b>>6] |= 1 << (uint(b) & 63)
		s.wheelLive++
	} else {
		s.seq++
		s.overflow = append(s.overflow, item{at: t, seq: s.seq, fn: fn})
		s.siftUp(len(s.overflow) - 1)
	}
	if n := s.wheelLive + len(s.overflow); n > s.maxLen {
		s.maxLen = n
	}
}

// bucketSeedCap is the initial capacity every wheel bucket is carved
// with. Buckets whose per-cycle load exceeds it grow normally (and keep
// the grown capacity for their ring slot); the seed only ensures that
// warming the engine for one scheduling pattern warms every bucket at
// once, so steady-state scheduling is allocation-free after the first
// few events rather than after a full wheel revolution.
const bucketSeedCap = 16

// initWheel carves all bucket slices from one arena allocation. Called
// on the first schedule; Reset keeps the carved (or grown) capacity.
func (s *Sim) initWheel() {
	s.wheelReady = true
	arena := make([]Func, 0, int(WheelSpan)*bucketSeedCap)
	for i := range s.wheel {
		lo := i * bucketSeedCap
		s.wheel[i] = arena[lo : lo : lo+bucketSeedCap]
	}
}

// siftUp restores the overflow heap property after appending at index i.
func (s *Sim) siftUp(i int) {
	q := s.overflow
	it := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !it.less(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = it
}

// popOverflow removes and returns the minimum overflow item. The caller
// checks non-empty.
func (s *Sim) popOverflow() item {
	q := s.overflow
	top := q[0]
	n := len(q) - 1
	it := q[n]
	q[n].fn = nil // release the callback so it can be collected
	s.overflow = q[:n]
	if n > 0 {
		// Sift the former last element down from the root.
		i := 0
		for {
			child := 2*i + 1
			if child >= n {
				break
			}
			if right := child + 1; right < n && q[right].less(q[child]) {
				child = right
			}
			if !q[child].less(it) {
				break
			}
			q[i] = q[child]
			i = child
		}
		q[i] = it
	}
	return top
}

// refill drains every overflow event now inside the wheel horizon into
// its bucket. Called after every clock advance; heap pops come out in
// (time, scheduling order), and any later direct schedule for the same
// cycle appends behind them, so cross-level FIFO order is preserved.
func (s *Sim) refill() {
	horizon := s.now + WheelSpan
	for len(s.overflow) > 0 && s.overflow[0].at < horizon {
		it := s.popOverflow()
		b := int(it.at) & wheelMask
		s.wheel[b] = append(s.wheel[b], it.fn)
		if s.wheelSeq != nil {
			s.wheelSeq[b] = append(s.wheelSeq[b], it.seq)
		}
		s.occ[b>>6] |= 1 << (uint(b) & 63)
		s.wheelLive++
	}
}

// finalizeBucket resets the fully fired current-cycle bucket for its next
// revolution: length truncated (capacity kept), occupancy bit cleared,
// drain cursor rewound. Fired slots were already nil'd during dispatch.
func (s *Sim) finalizeBucket(b int) {
	if len(s.wheel[b]) > 0 {
		s.wheel[b] = s.wheel[b][:0]
	}
	if s.wheelSeq != nil && len(s.wheelSeq[b]) > 0 {
		s.wheelSeq[b] = s.wheelSeq[b][:0]
	}
	s.head = 0
	s.occ[b>>6] &^= 1 << (uint(b) & 63)
}

// nextWheelTime returns the cycle of the earliest occupied wheel bucket
// strictly after now. Precondition: the current cycle's bucket has been
// finalized (its occupancy bit is clear) and wheelLive > 0.
func (s *Sim) nextWheelTime() Cycle {
	start := (int(s.now) + 1) & wheelMask
	w := start >> 6
	if v := s.occ[w] & (^uint64(0) << (uint(start) & 63)); v != 0 {
		b := w<<6 | bits.TrailingZeros64(v)
		return s.now + Cycle((uint(b)-uint(s.now))&uint(wheelMask))
	}
	for i := 1; i <= occWords; i++ {
		w2 := (w + i) & (occWords - 1)
		if v := s.occ[w2]; v != 0 {
			b := w2<<6 | bits.TrailingZeros64(v)
			return s.now + Cycle((uint(b)-uint(s.now))&uint(wheelMask))
		}
	}
	panic("event: wheel accounting corrupt (live events but no occupied bucket)")
}

// nextTime returns the earliest pending event time. All wheel events lie
// within [now, now+WheelSpan) and all overflow events at or beyond the
// horizon, so the wheel always wins when it is non-empty. Precondition:
// the current cycle's bucket has been finalized.
func (s *Sim) nextTime() (Cycle, bool) {
	if s.wheelLive > 0 {
		return s.nextWheelTime(), true
	}
	if len(s.overflow) > 0 {
		return s.overflow[0].at, true
	}
	return 0, false
}

// bucketCompactLen is the drain progress beyond which the live bucket is
// compacted mid-cycle. Only sustained same-cycle cascades (every fired
// event scheduling another zero-delay event) reach it; compaction keeps
// bucket memory bounded by the undrained tail instead of growing with
// the cascade length.
const bucketCompactLen = 1024

// compactBucket shifts the undrained tail of the live bucket to the
// front once a long same-cycle cascade has consumed most of it.
func (s *Sim) compactBucket(b int) {
	bucket := s.wheel[b]
	rem := copy(bucket, bucket[s.head:])
	for i := rem; i < len(bucket); i++ {
		bucket[i] = nil // release moved slots so callbacks can be collected
	}
	s.wheel[b] = bucket[:rem]
	s.head = 0
}

// drainCurrent fires every event of the current cycle — batch dispatch:
// one bucket walk per clock advance instead of one ordered pop per event.
// Events the callbacks schedule for this same cycle land behind head in
// the live bucket and fire in this drain. The bucket is finalized for its
// next revolution afterwards.
func (s *Sim) drainCurrent() {
	for {
		b := int(s.now) & wheelMask
		if s.head >= len(s.wheel[b]) {
			s.finalizeBucket(b)
			s.checkStop() // once per bucket drain; Run/RunUntil observe stopped
			return
		}
		if s.head >= bucketCompactLen {
			s.compactBucket(b)
			if s.checkStop() {
				// Mid-cascade stop: leave the undrained tail in place
				// (Reset handles a mid-drain bucket) and bail out.
				return
			}
		}
		fn := s.wheel[b][s.head]
		s.wheel[b][s.head] = nil // release the callback so it can be collected
		s.head++
		s.wheelLive--
		s.fired++
		fn()
	}
}

// Step executes the next event, if any, advancing the clock to its time.
// It reports whether an event was executed.
func (s *Sim) Step() bool {
	s.checkKeyed()
	b := int(s.now) & wheelMask
	if s.head >= len(s.wheel[b]) {
		s.finalizeBucket(b)
		t, ok := s.nextTime()
		if !ok {
			return false
		}
		s.now = t
		s.refill()
		b = int(s.now) & wheelMask
	} else if s.head >= bucketCompactLen {
		s.compactBucket(b)
	}
	fn := s.wheel[b][s.head]
	s.wheel[b][s.head] = nil
	s.head++
	s.wheelLive--
	s.fired++
	fn()
	return true
}

// Run executes events until the queue drains and returns the final cycle.
// If a stop condition is installed (SetStop) and fires, Run returns early
// at the stop cycle with events still pending; Stopped/StopError report
// it. A stopped engine may be Run again (resuming where it stopped) or
// Reset.
func (s *Sim) Run() Cycle {
	s.checkKeyed()
	s.stopped = false
	for {
		s.drainCurrent()
		if s.stopped {
			return s.now
		}
		t, ok := s.nextTime()
		if !ok {
			return s.now
		}
		s.now = t
		s.refill()
	}
}

// RunUntil executes events with time ≤ limit. It returns true if the queue
// drained, false if events at cycles beyond limit remain. A limit in the
// past leaves the clock untouched: time never rewinds. A stop condition
// (SetStop) interrupts RunUntil exactly as it does Run; a stopped
// RunUntil reports false without advancing the clock to limit.
func (s *Sim) RunUntil(limit Cycle) bool {
	s.checkKeyed()
	s.stopped = false
	if s.now <= limit {
		for {
			s.drainCurrent()
			if s.stopped {
				return false
			}
			t, ok := s.nextTime()
			if !ok || t > limit {
				break
			}
			s.now = t
			s.refill()
		}
	}
	if s.Pending() == 0 {
		return true
	}
	if limit > s.now {
		s.now = limit
		s.refill() // the horizon moved; pull due overflow into the wheel
	}
	return false
}

// MaxQueueLen reports the high-water mark of pending events — the peak of
// Pending() across the run, summed over the wheel buckets and the
// overflow heap — useful for harness diagnostics.
func (s *Sim) MaxQueueLen() int { return s.maxLen }

// Reset returns the simulator to the state of a freshly built one — cycle
// 0, nothing fired, nothing pending — while keeping the grown capacity of
// every wheel bucket and of the overflow heap, so a reset simulator
// re-runs without cold-start allocations. The wheel rewinds to cycle 0
// mid-revolution: bucket indices are derived from the absolute cycle, so
// clearing the buckets and the clock together is sufficient. Pending
// events are dropped, not fired. Components that track their own arming
// state on top of the Sim (Ticker, Queue) must be Reset alongside, or
// their bookkeeping would reference events that no longer exist.
func (s *Sim) Reset() {
	if s.wheelLive > 0 {
		for w, v := range s.occ {
			for v != 0 {
				b := w<<6 | bits.TrailingZeros64(v)
				v &= v - 1
				bucket := s.wheel[b]
				for i := range bucket {
					bucket[i] = nil // release callbacks so they can be collected
				}
				s.wheel[b] = bucket[:0]
			}
		}
	}
	// The current cycle's bucket may hold fired-but-not-finalized slots
	// even when no live events remain — and its occupancy bit may still
	// be set, so the bitmap is cleared unconditionally below (a stale
	// bit would later steer nextWheelTime into an empty bucket).
	b := int(s.now) & wheelMask
	if len(s.wheel[b]) > 0 {
		s.wheel[b] = s.wheel[b][:0]
	}
	s.occ = [occWords]uint64{}
	s.wheelLive = 0
	s.head = 0
	for i := range s.overflow {
		s.overflow[i].fn = nil // release callbacks so they can be collected
	}
	s.overflow = s.overflow[:0]
	s.now = 0
	s.seq = 0
	s.fired = 0
	s.maxLen = 0
	// A fresh engine has no stop condition: budgets are installed per
	// run by the harness, never inherited across a Reset.
	s.stop = nil
	s.stopped = false
	// Keyed mode: drop the pending sequence numbers alongside their
	// callbacks (capacity kept) and invalidate the frontier cache. The
	// shared group counter is reset by SimGroup.Reset, which resets all
	// member sims together.
	if s.wheelSeq != nil {
		for i := range s.wheelSeq {
			if len(s.wheelSeq[i]) > 0 {
				s.wheelSeq[i] = s.wheelSeq[i][:0]
			}
		}
	}
	s.fvalid = false
}
