package event

// This file implements keyed (group) mode: several Sims — one per
// simulation partition — coupled under a single global sequence counter
// and driven by a SimGroup that fires their events in exact global
// (cycle, sequence) order.
//
// # Why a global merge instead of free-running partitions
//
// The simulator's statistics are sensitive to the order in which
// same-cycle events fire (DRAM FR-FCFS row-hit decisions, MSHR
// coalescing, LRU touch order, port slot sequencing), and two of the
// partition cut edges are zero-latency at the crossing point: a cache
// forwards to its lower level only after spending its LookupLatency
// internally, and a response's Done callback runs synchronously inside
// the responder's event. Classic conservative PDES — every partition
// free-running up to min(peer frontier)+lookahead — therefore cannot
// reproduce the sequential wheel's byte-exact output: concurrent windows
// would have to agree on a global same-cycle order they never observe.
//
// Keyed mode sidesteps this by construction. All member Sims draw event
// sequence numbers from one shared counter, so as long as execution is
// serialized (the SimGroup fires one event at a time, and the partition
// runner rotates lookahead-sized windows across workers instead of
// overlapping them), the numbering reproduces the exact order in which a
// single shared wheel would have appended the same events — and firing
// in (cycle, sequence) order replays the sequential schedule exactly.
// Synchronous cross-partition calls (port submits, Done callbacks,
// coherence hops) need no channels or stamping: the caller holds the
// only execution token, and every member clock is advanced to the global
// cycle before any event of that cycle fires, so Now() and Schedule()
// behave identically to the single-Sim build.
//
// # The bucket order invariant the merge relies on
//
// Within one member wheel, every bucket's pending entries are always in
// ascending sequence order: direct At appends strictly increase the
// shared counter, and overflow spills cascade into a bucket (refill) at
// the clock advance that brings their cycle inside the horizon — before
// any direct append for that cycle can happen, and in (cycle, sequence)
// heap order. The head entry of the earliest occupied bucket is thus the
// member's minimum key, which Frontier caches; the group min over member
// frontiers is the exact global next event.

// atKeyed is At for a Sim in keyed mode: the event is stamped with the
// group's next global sequence number and the number is stored alongside
// the callback (wheelSeq mirrors wheel; overflow items carry seq
// already). The frontier cache is tightened when the new event precedes
// it; an invalid cache stays invalid and is recomputed by Frontier.
func (s *Sim) atKeyed(t Cycle, fn Func) {
	if !s.wheelReady {
		s.initWheel()
		s.initWheelSeq()
	}
	seq := s.shared.nextSeq()
	if t-s.now < WheelSpan {
		b := int(t) & wheelMask
		s.wheel[b] = append(s.wheel[b], fn)
		s.wheelSeq[b] = append(s.wheelSeq[b], seq)
		s.occ[b>>6] |= 1 << (uint(b) & 63)
		s.wheelLive++
	} else {
		s.overflow = append(s.overflow, item{at: t, seq: seq, fn: fn})
		s.siftUp(len(s.overflow) - 1)
	}
	if s.fvalid && t < s.fcycle {
		s.fcycle, s.fseq = t, seq
	}
	if n := s.wheelLive + len(s.overflow); n > s.maxLen {
		s.maxLen = n
	}
}

// initWheelSeq carves the per-bucket sequence-number slices from one
// arena, exactly as initWheel does for the callback slices.
func (s *Sim) initWheelSeq() {
	arena := make([]uint64, 0, int(WheelSpan)*bucketSeedCap)
	for i := range s.wheelSeq {
		lo := i * bucketSeedCap
		s.wheelSeq[i] = arena[lo : lo : lo+bucketSeedCap]
	}
}

// checkKeyed guards the single-Sim drive entry points: a keyed Sim's
// wheel is consumed through its SimGroup (Frontier/stepHead/advanceTo),
// and driving it directly would desynchronize the sequence mirror.
func (s *Sim) checkKeyed() {
	if s.shared != nil {
		panic("event: a keyed Sim is driven through its SimGroup, not Run/RunUntil/Step")
	}
}

// Frontier returns the (cycle, sequence) key of this member's earliest
// pending event, or ok=false when nothing is pending. Keyed mode only.
// It may finalize the drained current-cycle bucket as a side effect; the
// result is cached until the pending set changes.
func (s *Sim) Frontier() (c Cycle, seq uint64, ok bool) {
	if s.fvalid {
		return s.fcycle, s.fseq, true
	}
	if s.wheelLive == 0 && len(s.overflow) == 0 {
		return 0, 0, false
	}
	b := int(s.now) & wheelMask
	if s.head < len(s.wheel[b]) {
		s.fcycle, s.fseq, s.fvalid = s.now, s.wheelSeq[b][s.head], true
		return s.fcycle, s.fseq, true
	}
	s.finalizeBucket(b)
	t, ok := s.nextTime()
	if !ok {
		panic("event: frontier accounting corrupt (pending events but no next time)")
	}
	if s.wheelLive > 0 {
		// The earliest occupied bucket's first entry is its minimum key
		// (see the bucket order invariant above).
		s.fcycle, s.fseq = t, s.wheelSeq[int(t)&wheelMask][0]
	} else {
		s.fcycle, s.fseq = t, s.overflow[0].seq
	}
	s.fvalid = true
	return s.fcycle, s.fseq, true
}

// stepHead fires the single event at this member's frontier.
// Preconditions, maintained by the SimGroup: the member clock sits at
// the frontier cycle and the frontier event is the current bucket's head
// entry (advanceTo has refilled any overflow spill due at this cycle).
func (s *Sim) stepHead() {
	b := int(s.now) & wheelMask
	fn := s.wheel[b][s.head]
	s.wheel[b][s.head] = nil // release the callback so it can be collected
	s.head++
	s.wheelLive--
	s.fired++
	if s.head < len(s.wheel[b]) {
		s.fcycle, s.fseq, s.fvalid = s.now, s.wheelSeq[b][s.head], true
	} else {
		s.fvalid = false
	}
	fn()
}

// advanceTo moves a keyed member's clock to t, finalizing the drained
// current-cycle bucket and pulling newly due overflow spills into the
// wheel — the per-member half of a group clock advance. The SimGroup
// guarantees no member has a pending event before t.
func (s *Sim) advanceTo(t Cycle) {
	if t <= s.now {
		return
	}
	b := int(s.now) & wheelMask
	if s.head < len(s.wheel[b]) {
		panic("event: SimGroup advancing past pending events")
	}
	s.finalizeBucket(b)
	s.now = t
	s.refill()
}

// SimGroup couples the per-partition Sims of one partitioned simulation.
// Members share one global sequence counter, and the group fires their
// events one at a time in exact global (cycle, sequence) order, so a
// partitioned run replays the event order — and therefore the statistics
// — of the equivalent single-Sim run byte for byte. See the package
// comment at the top of this file for why the merge is exact.
//
// A SimGroup is not safe for concurrent use; the partition runner in
// internal/core serializes access by rotating an execution token across
// its workers (channel hand-offs establish the happens-before edges the
// race detector checks).
type SimGroup struct {
	sims []*Sim
	seq  uint64
	now  Cycle

	// stop/stopped mirror Sim.SetStop: polled once per group clock
	// advance and every stopPollInterval events inside a same-cycle
	// cascade, so budget enforcement reaches a partitioned run with the
	// same bounded overshoot as a sequential one.
	stop      func() bool
	stopped   bool
	sinceStop int
}

// stopPollInterval bounds how many same-cycle events fire between stop
// polls, mirroring the sequential engine's bucketCompactLen cadence.
const stopPollInterval = bucketCompactLen

// NewGroup returns a group of n fresh keyed Sims, all at cycle 0.
func NewGroup(n int) *SimGroup {
	if n < 1 {
		panic("event: NewGroup needs at least one member")
	}
	g := &SimGroup{sims: make([]*Sim, n)}
	for i := range g.sims {
		g.sims[i] = &Sim{shared: g, wheelSeq: new([int(WheelSpan)][]uint64)}
	}
	return g
}

// nextSeq hands out the next global sequence number. Serialized
// execution means member At calls happen in the same global order as on
// a single shared wheel, so these numbers reproduce its append order.
func (g *SimGroup) nextSeq() uint64 {
	g.seq++
	return g.seq
}

// Sims returns the member engines, in partition index order. Components
// of partition i schedule on member i; the slice is owned by the group.
func (g *SimGroup) Sims() []*Sim { return g.sims }

// Now returns the group clock: the cycle of the last fired event.
func (g *SimGroup) Now() Cycle { return g.now }

// Fired returns the number of events executed across all members.
func (g *SimGroup) Fired() uint64 {
	var n uint64
	for _, s := range g.sims {
		n += s.fired
	}
	return n
}

// Pending returns the number of events waiting across all members.
func (g *SimGroup) Pending() int {
	n := 0
	for _, s := range g.sims {
		n += s.Pending()
	}
	return n
}

// SetStop installs (or, with nil, removes) the cooperative stop
// condition, exactly as Sim.SetStop does for a sequential engine. The
// condition is polled between events only, on whichever goroutine holds
// the execution token.
func (g *SimGroup) SetStop(stop func() bool) {
	g.stop = stop
	g.stopped = false
	g.sinceStop = 0
}

// Stopped reports whether the most recent run returned early because the
// stop condition fired.
func (g *SimGroup) Stopped() bool { return g.stopped }

// StopError returns an *ErrStopped describing the interrupted run (with
// group-wide fired/pending totals), or nil when the group is not
// stopped.
func (g *SimGroup) StopError() *ErrStopped {
	if !g.stopped {
		return nil
	}
	return &ErrStopped{Clock: g.now, Fired: g.Fired(), Pending: g.Pending()}
}

func (g *SimGroup) checkStop() bool {
	if g.stop != nil && g.stop() {
		g.stopped = true
	}
	return g.stopped
}

// minFrontier returns the member holding the globally next event and
// that event's cycle, or ok=false when every member is drained.
func (g *SimGroup) minFrontier() (best int, bc Cycle, ok bool) {
	best = -1
	var bq uint64
	for i, s := range g.sims {
		c, q, sok := s.Frontier()
		if !sok {
			continue
		}
		if best < 0 || c < bc || (c == bc && q < bq) {
			best, bc, bq = i, c, q
		}
	}
	return best, bc, best >= 0
}

// RunWindow fires events in global order until the next event lies at or
// beyond limit, the group drains, or the stop condition fires. It
// reports whether events remain pending — true when stopping at the
// window limit or on a stop, false when drained. When the next event
// lies beyond the limit, the group clock jumps to that event's cycle
// without firing it, so a RunWindow(Now()+window) rotation always makes
// progress across event gaps wider than the window. Unlike Sim.Run it
// does not clear a previous stop latch; SetStop (or Reset) does.
func (g *SimGroup) RunWindow(limit Cycle) bool {
	for {
		i, c, ok := g.minFrontier()
		if !ok {
			return false
		}
		if c >= limit {
			if c > g.now {
				// Jump to the next event without firing it, keeping the
				// member clocks synced to the group clock.
				g.now = c
				for _, s := range g.sims {
					s.advanceTo(c)
				}
			}
			return true
		}
		if c > g.now {
			if g.checkStop() {
				return true
			}
			g.sinceStop = 0
			g.now = c
			// Every member clock reaches the global cycle before any
			// event of that cycle fires, so synchronous cross-partition
			// calls observe the same Now() as a single shared wheel.
			for _, s := range g.sims {
				s.advanceTo(c)
			}
		} else if g.sinceStop++; g.sinceStop >= stopPollInterval {
			g.sinceStop = 0
			if g.checkStop() {
				return true
			}
		}
		g.sims[i].stepHead()
	}
}

// Run executes events until every member drains and returns the final
// group cycle. A stop condition (SetStop) interrupts it exactly as it
// does Sim.Run; Stopped/StopError report the interruption.
func (g *SimGroup) Run() Cycle {
	g.stopped = false
	g.RunWindow(^Cycle(0))
	return g.now
}

// Reset returns the group and every member to the state of a freshly
// built one, keeping grown capacities (see Sim.Reset). The shared
// sequence counter rewinds with it, so a reset group renumbers an
// identical run identically.
func (g *SimGroup) Reset() {
	for _, s := range g.sims {
		s.Reset()
	}
	g.seq = 0
	g.now = 0
	g.stop = nil
	g.stopped = false
	g.sinceStop = 0
}
