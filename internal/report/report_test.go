package report

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TestRenderTotals checks the matrix aggregate table reflects the
// Snapshot.Add merge of every cell.
func TestRenderTotals(t *testing.T) {
	rs := fakeResults()
	var sb strings.Builder
	RenderTotals(&sb, rs)
	out := sb.String()
	tot := core.Totals(rs)
	for _, want := range []*regexp.Regexp{
		regexp.MustCompile(`Matrix totals`),
		regexp.MustCompile(fmt.Sprintf(`Cells simulated\s+%d\b`, len(rs))),
		regexp.MustCompile(fmt.Sprintf(`cycles \(sum\)\s+%d\b`, tot.Cycles)),
		regexp.MustCompile(fmt.Sprintf(`GPU memory requests\s+%d\b`, tot.GPUMemRequests)),
	} {
		if !want.MatchString(out) {
			t.Fatalf("totals output missing %v:\n%s", want, out)
		}
	}
}

func fakeResults() []core.Result {
	mk := func(wl, v string, cycles, dram uint64, stalls uint64, rowHits, rowTotal uint64) core.Result {
		return core.Result{
			Workload: wl, Variant: v,
			Snap: stats.Snapshot{
				Cycles:         cycles,
				VectorOps:      cycles * 10,
				GPUMemRequests: 1000,
				L1:             stats.CacheStats{Stalls: stalls},
				DRAM: stats.DRAMStats{
					Reads:     dram,
					RowHits:   rowHits,
					RowMisses: rowTotal - rowHits,
				},
			},
		}
	}
	var rs []core.Result
	for _, wl := range []string{"WL1", "WL2"} {
		rs = append(rs,
			mk(wl, "Uncached", 1000, 500, 10, 400, 500),
			mk(wl, "CacheR", 800, 250, 200, 150, 250),
			mk(wl, "CacheRW", 900, 200, 300, 100, 200),
			mk(wl, "CacheRW-AB", 820, 210, 50, 120, 210),
			mk(wl, "CacheRW-CR", 790, 205, 40, 180, 205),
			mk(wl, "CacheRW-PCby", 780, 207, 20, 185, 207),
		)
	}
	return rs
}

func TestTableFormatting(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "Title", []string{"A", "BBB"}, [][]string{{"x", "1"}, {"yy", "22"}})
	out := sb.String()
	for _, want := range []string{"Title", "A", "BBB", "---", "yy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCSVFormatting(t *testing.T) {
	var sb strings.Builder
	CSV(&sb, []string{"a", "b"}, [][]string{{"1", "2"}})
	if sb.String() != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", sb.String())
	}
}

func TestFiguresCoverAllTen(t *testing.T) {
	figs := Figures(1600)
	for n := 4; n <= 13; n++ {
		f, ok := figs[n]
		if !ok {
			t.Fatalf("figure %d missing", n)
		}
		if f.Number != n || f.Caption == "" || len(f.Columns) == 0 {
			t.Fatalf("figure %d malformed: %+v", n, f)
		}
	}
}

func TestRenderAllFiguresOnFakeData(t *testing.T) {
	m := core.NewMatrix(fakeResults())
	figs := Figures(1600)
	for n := 4; n <= 13; n++ {
		var sb strings.Builder
		RenderFigure(&sb, figs[n], m, false)
		out := sb.String()
		if !strings.Contains(out, "WL1") || !strings.Contains(out, "WL2") {
			t.Fatalf("figure %d missing workloads:\n%s", n, out)
		}
		sb.Reset()
		RenderFigure(&sb, figs[n], m, true)
		if !strings.Contains(sb.String(), "Workload,") {
			t.Fatalf("figure %d CSV header missing", n)
		}
	}
}

func TestFigure6Normalization(t *testing.T) {
	m := core.NewMatrix(fakeResults())
	fig := Figures(1600)[6]
	if v := fig.Value(m, "WL1", "Uncached"); v != 1.0 {
		t.Fatalf("Uncached column must be 1.0, got %v", v)
	}
	if v := fig.Value(m, "WL1", "CacheR"); v != 0.8 {
		t.Fatalf("CacheR = %v, want 0.8", v)
	}
}

func TestFigure10UsesStaticBest(t *testing.T) {
	m := core.NewMatrix(fakeResults())
	fig := Figures(1600)[10]
	// StaticBest is CacheR (800 cycles): its column must be 1.0.
	if v := fig.Value(m, "WL1", "StaticBest"); v != 1.0 {
		t.Fatalf("StaticBest = %v, want 1.0", v)
	}
	if v := fig.Value(m, "WL1", "StaticWorst"); v != 1000.0/800.0 {
		t.Fatalf("StaticWorst = %v", v)
	}
	if v := fig.Value(m, "WL1", "CacheRW-PCby"); v != 780.0/800.0 {
		t.Fatalf("PCby = %v", v)
	}
}

func TestFigure9RowHitRate(t *testing.T) {
	m := core.NewMatrix(fakeResults())
	fig := Figures(1600)[9]
	if v := fig.Value(m, "WL1", "Uncached"); v != 0.8 {
		t.Fatalf("row hit = %v, want 0.8", v)
	}
}

func TestRenderTables(t *testing.T) {
	var sb strings.Builder
	RenderTable1(&sb, core.DefaultConfig())
	out := sb.String()
	for _, want := range []string{"Table 1", "1600 MHz", "64", "HBM2", "50/125/225"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	RenderTable2(&sb, workloads.Scale(0.05))
	out = sb.String()
	for _, want := range []string{"Table 2", "FwAct", "DGEMM", "4/130", "6/363"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 missing %q", want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		100:     "100 B",
		2 << 10: "2.00 KB",
		3 << 20: "3.00 MB",
	}
	for in, want := range cases {
		if got := formatBytes(in); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
