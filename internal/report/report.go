// Package report renders the paper's tables and figures from simulation
// results: aligned text tables, CSV, and the per-figure extraction logic
// (normalizations, StaticBest/StaticWorst selection) of Sections VI–VII.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// Table writes an aligned text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// CSV writes rows as comma-separated values (cells must not contain
// commas; the harness emits only identifiers and numbers).
func CSV(w io.Writer, headers []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// FigureSpec describes one reproducible figure: its identifying number,
// caption, the variants (columns) it reports, and the metric extractor.
type FigureSpec struct {
	Number  int
	Caption string
	// Columns are variant labels, or pseudo-labels StaticBest /
	// StaticWorst for Figures 10–13.
	Columns []string
	// Value extracts the cell for (workload, column).
	Value func(m *core.Matrix, workload, column string) float64
	// Format renders a cell value.
	Format func(v float64) string
}

// resolve maps pseudo-columns to concrete variants for a workload.
func resolve(m *core.Matrix, workload, column string) core.Result {
	switch column {
	case "StaticBest":
		_, r := m.StaticBest(workload)
		return r
	case "StaticWorst":
		_, r := m.StaticWorst(workload)
		return r
	default:
		return m.MustGet(workload, column)
	}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }

// staticCols are the Section VI columns.
var staticCols = []string{"Uncached", "CacheR", "CacheRW"}

// optCols are the Section VII columns.
var optCols = []string{"StaticBest", "StaticWorst", "CacheRW-AB", "CacheRW-CR", "CacheRW-PCby"}

// Figures returns the specification of every reproduced figure, keyed by
// figure number (4–13). clockMHz converts cycles to bandwidth figures.
func Figures(clockMHz float64) map[int]FigureSpec {
	return map[int]FigureSpec{
		4: {
			Number:  4,
			Caption: "Giga vector ops per second with CacheR policy",
			Columns: []string{"CacheR"},
			Value: func(m *core.Matrix, wl, col string) float64 {
				return resolve(m, wl, col).Snap.GVOPS(clockMHz)
			},
			Format: f0,
		},
		5: {
			Number:  5,
			Caption: "Giga memory requests per second with CacheR policy",
			Columns: []string{"CacheR"},
			Value: func(m *core.Matrix, wl, col string) float64 {
				return resolve(m, wl, col).Snap.GMRs(clockMHz)
			},
			Format: f2,
		},
		6: {
			Number:  6,
			Caption: "Execution time per cache policy, normalized to Uncached",
			Columns: staticCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				base := m.MustGet(wl, "Uncached").Snap.Cycles
				return float64(resolve(m, wl, col).Snap.Cycles) / float64(base)
			},
			Format: f3,
		},
		7: {
			Number:  7,
			Caption: "GPU memory requests reaching DRAM, normalized to Uncached",
			Columns: staticCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				base := m.MustGet(wl, "Uncached").Snap.DRAM.Accesses()
				return float64(resolve(m, wl, col).Snap.DRAM.Accesses()) / float64(base)
			},
			Format: pct,
		},
		8: {
			Number:  8,
			Caption: "Cache stalls per GPU memory request (log scale in the paper)",
			Columns: staticCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				return resolve(m, wl, col).Snap.StallsPerRequest()
			},
			Format: f3,
		},
		9: {
			Number:  9,
			Caption: "DRAM row buffer hit ratio",
			Columns: staticCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				return resolve(m, wl, col).Snap.DRAM.RowHitRate()
			},
			Format: pct,
		},
		10: {
			Number:  10,
			Caption: "Execution time with optimizations, normalized to StaticBest",
			Columns: optCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				_, best := m.StaticBest(wl)
				return float64(resolve(m, wl, col).Snap.Cycles) / float64(best.Snap.Cycles)
			},
			Format: f3,
		},
		11: {
			Number:  11,
			Caption: "DRAM requests with optimizations, normalized to Uncached",
			Columns: optCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				base := m.MustGet(wl, "Uncached").Snap.DRAM.Accesses()
				return float64(resolve(m, wl, col).Snap.DRAM.Accesses()) / float64(base)
			},
			Format: pct,
		},
		12: {
			Number:  12,
			Caption: "Cache stalls per memory request with optimizations (log scale in the paper)",
			Columns: optCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				return resolve(m, wl, col).Snap.StallsPerRequest()
			},
			Format: f3,
		},
		13: {
			Number:  13,
			Caption: "DRAM row hit ratio with optimizations",
			Columns: optCols,
			Value: func(m *core.Matrix, wl, col string) float64 {
				return resolve(m, wl, col).Snap.DRAM.RowHitRate()
			},
			Format: pct,
		},
	}
}

// RenderFigure writes one figure as a table (or CSV).
func RenderFigure(w io.Writer, fig FigureSpec, m *core.Matrix, asCSV bool) {
	headers := append([]string{"Workload"}, fig.Columns...)
	var rows [][]string
	for _, wl := range m.Workloads() {
		row := []string{wl}
		for _, col := range fig.Columns {
			row = append(row, fig.Format(fig.Value(m, wl, col)))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Figure %d: %s", fig.Number, fig.Caption)
	if asCSV {
		fmt.Fprintf(w, "# %s\n", title)
		CSV(w, headers, rows)
		return
	}
	Table(w, title, headers, rows)
	fmt.Fprintln(w)
}
