package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RenderTable1 writes the simulated system parameters (paper Table 1).
func RenderTable1(w io.Writer, cfg core.Config) {
	rows := [][]string{
		{"GPU Clock", fmt.Sprintf("%.0f MHz", cfg.GPUClockMHz)},
		{"# of CUs", fmt.Sprint(cfg.GPU.CUs)},
		{"# SIMD units per CU", fmt.Sprint(cfg.GPU.SIMDsPerCU)},
		{"Max # Wavefronts per SIMD unit", fmt.Sprint(cfg.GPU.MaxWavesPerSIMD)},
		{"Wavefront width", fmt.Sprint(cfg.GPU.WavefrontWidth)},
		{"GPU L1 D-cache per CU", fmt.Sprintf("%d KB, 64B line, %d-way write-through",
			cfg.L1.SizeBytes>>10, cfg.L1.Ways)},
		{"GPU L2 cache (shared)", fmt.Sprintf("%d MB, 64B line, %d-way, %d banks",
			cfg.L2.SizeBytes>>20, cfg.L2.Ways, cfg.L2Banks)},
		{"Main memory", fmt.Sprintf("HBM2, %d channels, %d banks/channel",
			cfg.DRAM.Channels, cfg.DRAM.BanksPerChannel)},
		{"DRAM row buffer", fmt.Sprintf("%d B per bank", cfg.DRAM.RowBytes)},
		{"Approx. uncontested L1/L2/Memory latency",
			fmt.Sprintf("%d/%d/%d cycles", l1Lat(cfg), l2Lat(cfg), memLat(cfg))},
	}
	Table(w, "Table 1: Key simulated system parameters", []string{"Parameter", "Value"}, rows)
	fmt.Fprintln(w)
}

// l1Lat, l2Lat and memLat compute the uncontested load-to-use latencies
// the configuration implies, for comparison with Table 1's 50/125/225.
func l1Lat(cfg core.Config) int {
	return int(cfg.L1.HitLatency)
}

func l2Lat(cfg core.Config) int {
	return int(cfg.L1.LookupLatency + cfg.L2.HitLatency + cfg.L1.FillLatency)
}

func memLat(cfg core.Config) int {
	d := cfg.DRAM
	return int(cfg.L1.LookupLatency + cfg.L2.LookupLatency + cfg.DirectoryLatency +
		d.TRCD + d.TCL + d.TBurst + d.FixedLatency +
		cfg.L2.FillLatency + cfg.L1.FillLatency)
}

// RenderTable2 writes the studied workloads (paper Table 2), including
// the model's scaled footprint next to the paper's.
func RenderTable2(w io.Writer, scale workloads.Scale) {
	headers := []string{"Application", "Suite", "Input", "Kernels (uniq/total)",
		"Paper footprint", "Model footprint", "Class"}
	var rows [][]string
	for _, s := range workloads.All() {
		built := s.Build(scale)
		rows = append(rows, []string{
			s.Name, s.Suite, s.PaperInput,
			fmt.Sprintf("%d/%d", s.UniqueKernels, s.TotalKernels),
			s.PaperFootprint,
			formatBytes(built.FootprintBytes),
			s.Class.String(),
		})
	}
	Table(w, "Table 2: Studied MI workloads", headers, rows)
	fmt.Fprintln(w)
}

// RenderTotals writes a one-table aggregate of a whole result matrix:
// the stats.Snapshot.Add merge of every cell, the same primitive the
// per-worker aggregation slabs in core.RunMatrixWith use. Sweeps print
// it as a quick sanity line — total simulated work, DRAM pressure, and
// overall hit and row-buffer behavior across all cells.
func RenderTotals(w io.Writer, rs []core.Result) {
	tot := core.Totals(rs)
	rows := [][]string{
		{"Cells simulated", fmt.Sprint(len(rs))},
		{"Simulated cycles (sum)", fmt.Sprint(tot.Cycles)},
		{"Vector ops", fmt.Sprint(tot.VectorOps)},
		{"GPU memory requests", fmt.Sprint(tot.GPUMemRequests)},
		{"DRAM accesses", fmt.Sprintf("%d (reads %d, writes %d)",
			tot.DRAM.Accesses(), tot.DRAM.Reads, tot.DRAM.Writes)},
		{"DRAM row hit rate", fmt.Sprintf("%.1f%%", 100*tot.DRAM.RowHitRate())},
		{"L1 / L2 hit rate", fmt.Sprintf("%.1f%% / %.1f%%",
			100*tot.L1.HitRate(), 100*tot.L2.HitRate())},
		{"Cache stalls per request", fmt.Sprintf("%.3f", tot.StallsPerRequest())},
		{"Kernels launched", fmt.Sprint(tot.Kernels)},
	}
	Table(w, "Matrix totals (all cells)", []string{"Metric", "Value"}, rows)
	fmt.Fprintln(w)
	// Multi-tile sweeps carry aggregated per-tile and per-link sections;
	// single-tile totals have none and this prints nothing.
	RenderTopology(w, tot)
}

// RenderTopology writes the per-tile and per-link breakdown of a
// multi-tile snapshot: one row per tile (its L1/L2 hit rates and local
// HBM traffic) and one row per NoC link (traffic carried, cycles flits
// waited for bandwidth or queue space, and the deepest in-flight queue).
// Single-tile snapshots carry no topology sections and print nothing.
func RenderTopology(w io.Writer, s stats.Snapshot) {
	if len(s.Tiles) == 0 {
		return
	}
	tileRows := make([][]string, len(s.Tiles))
	for i, t := range s.Tiles {
		tileRows[i] = []string{
			fmt.Sprint(i),
			fmt.Sprintf("%.1f%%", 100*t.L1.HitRate()),
			fmt.Sprintf("%.1f%%", 100*t.L2.HitRate()),
			fmt.Sprintf("%d (reads %d, writes %d)",
				t.DRAM.Accesses(), t.DRAM.Reads, t.DRAM.Writes),
			fmt.Sprintf("%.1f%%", 100*t.DRAM.RowHitRate()),
		}
	}
	Table(w, "Per-tile breakdown",
		[]string{"Tile", "L1 hit", "L2 hit", "Local HBM accesses", "Row hit"}, tileRows)
	fmt.Fprintln(w)

	if len(s.Links) == 0 {
		return
	}
	// Node indices 0..tiles-1 are tiles; the directory hub is the one
	// extra node every built-in topology appends.
	node := func(n int) string {
		if n == len(s.Tiles) {
			return "hub"
		}
		return fmt.Sprint(n)
	}
	linkRows := make([][]string, len(s.Links))
	for i, l := range s.Links {
		linkRows[i] = []string{
			fmt.Sprintf("%s → %s", node(l.Src), node(l.Dst)),
			fmt.Sprint(l.Forwarded),
			fmt.Sprint(l.StallCycles),
			fmt.Sprint(l.QueuePeak),
		}
	}
	Table(w, "NoC links",
		[]string{"Link", "Flits", "Stall cycles", "Queue peak"}, linkRows)
	fmt.Fprintln(w)
}

// formatBytes renders a byte count in the unit Table 2 uses.
func formatBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
