package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/workloads"
)

// RenderTable1 writes the simulated system parameters (paper Table 1).
func RenderTable1(w io.Writer, cfg core.Config) {
	rows := [][]string{
		{"GPU Clock", fmt.Sprintf("%.0f MHz", cfg.GPUClockMHz)},
		{"# of CUs", fmt.Sprint(cfg.GPU.CUs)},
		{"# SIMD units per CU", fmt.Sprint(cfg.GPU.SIMDsPerCU)},
		{"Max # Wavefronts per SIMD unit", fmt.Sprint(cfg.GPU.MaxWavesPerSIMD)},
		{"Wavefront width", fmt.Sprint(cfg.GPU.WavefrontWidth)},
		{"GPU L1 D-cache per CU", fmt.Sprintf("%d KB, 64B line, %d-way write-through",
			cfg.L1.SizeBytes>>10, cfg.L1.Ways)},
		{"GPU L2 cache (shared)", fmt.Sprintf("%d MB, 64B line, %d-way, %d banks",
			cfg.L2.SizeBytes>>20, cfg.L2.Ways, cfg.L2Banks)},
		{"Main memory", fmt.Sprintf("HBM2, %d channels, %d banks/channel",
			cfg.DRAM.Channels, cfg.DRAM.BanksPerChannel)},
		{"DRAM row buffer", fmt.Sprintf("%d B per bank", cfg.DRAM.RowBytes)},
		{"Approx. uncontested L1/L2/Memory latency",
			fmt.Sprintf("%d/%d/%d cycles", l1Lat(cfg), l2Lat(cfg), memLat(cfg))},
	}
	Table(w, "Table 1: Key simulated system parameters", []string{"Parameter", "Value"}, rows)
	fmt.Fprintln(w)
}

// l1Lat, l2Lat and memLat compute the uncontested load-to-use latencies
// the configuration implies, for comparison with Table 1's 50/125/225.
func l1Lat(cfg core.Config) int {
	return int(cfg.L1.HitLatency)
}

func l2Lat(cfg core.Config) int {
	return int(cfg.L1.LookupLatency + cfg.L2.HitLatency + cfg.L1.FillLatency)
}

func memLat(cfg core.Config) int {
	d := cfg.DRAM
	return int(cfg.L1.LookupLatency + cfg.L2.LookupLatency + cfg.DirectoryLatency +
		d.TRCD + d.TCL + d.TBurst + d.FixedLatency +
		cfg.L2.FillLatency + cfg.L1.FillLatency)
}

// RenderTable2 writes the studied workloads (paper Table 2), including
// the model's scaled footprint next to the paper's.
func RenderTable2(w io.Writer, scale workloads.Scale) {
	headers := []string{"Application", "Suite", "Input", "Kernels (uniq/total)",
		"Paper footprint", "Model footprint", "Class"}
	var rows [][]string
	for _, s := range workloads.All() {
		built := s.Build(scale)
		rows = append(rows, []string{
			s.Name, s.Suite, s.PaperInput,
			fmt.Sprintf("%d/%d", s.UniqueKernels, s.TotalKernels),
			s.PaperFootprint,
			formatBytes(built.FootprintBytes),
			s.Class.String(),
		})
	}
	Table(w, "Table 2: Studied MI workloads", headers, rows)
	fmt.Fprintln(w)
}

// RenderTotals writes a one-table aggregate of a whole result matrix:
// the stats.Snapshot.Add merge of every cell, the same primitive the
// per-worker aggregation slabs in core.RunMatrixWith use. Sweeps print
// it as a quick sanity line — total simulated work, DRAM pressure, and
// overall hit and row-buffer behavior across all cells.
func RenderTotals(w io.Writer, rs []core.Result) {
	tot := core.Totals(rs)
	rows := [][]string{
		{"Cells simulated", fmt.Sprint(len(rs))},
		{"Simulated cycles (sum)", fmt.Sprint(tot.Cycles)},
		{"Vector ops", fmt.Sprint(tot.VectorOps)},
		{"GPU memory requests", fmt.Sprint(tot.GPUMemRequests)},
		{"DRAM accesses", fmt.Sprintf("%d (reads %d, writes %d)",
			tot.DRAM.Accesses(), tot.DRAM.Reads, tot.DRAM.Writes)},
		{"DRAM row hit rate", fmt.Sprintf("%.1f%%", 100*tot.DRAM.RowHitRate())},
		{"L1 / L2 hit rate", fmt.Sprintf("%.1f%% / %.1f%%",
			100*tot.L1.HitRate(), 100*tot.L2.HitRate())},
		{"Cache stalls per request", fmt.Sprintf("%.3f", tot.StallsPerRequest())},
		{"Kernels launched", fmt.Sprint(tot.Kernels)},
	}
	Table(w, "Matrix totals (all cells)", []string{"Metric", "Value"}, rows)
	fmt.Fprintln(w)
}

// formatBytes renders a byte count in the unit Table 2 uses.
func formatBytes(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
