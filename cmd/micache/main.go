// Command micache reproduces the evaluation of "Optimizing GPU Cache
// Policies for MI Workloads" (Alsop et al., IISWC 2019): it runs the 17
// Table 2 MI workloads on the simulated APU under the paper's cache
// policies and optimizations, and regenerates every table and figure.
//
// Usage:
//
//	micache -table 2                 # print a table (1 or 2)
//	micache -figure 6                # regenerate one figure (4..13)
//	micache -all                     # regenerate everything
//	micache -workload FwAct -policy CacheRW   # one cell, verbose stats
//	micache -scale 0.25              # smaller/faster inputs
//	micache -csv                     # machine-readable output
//	micache -cache-dir ~/.micache    # persist results; shared with micached
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "micache:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("micache", flag.ContinueOnError)
	var (
		table    = fs.Int("table", 0, "print paper table N (1 or 2)")
		figure   = fs.Int("figure", 0, "regenerate paper figure N (4..13)")
		all      = fs.Bool("all", false, "regenerate every table and figure")
		workload = fs.String("workload", "", "run a single workload (e.g. FwAct)")
		variant  = fs.String("policy", "CacheRW", "variant for -workload (Uncached, CacheR, CacheRW, CacheRW-AB, CacheRW-CR, CacheRW-PCby)")
		scale    = fs.Float64("scale", 1.0, "workload size multiplier")
		csv      = fs.Bool("csv", false, "emit CSV instead of tables")
		cus      = fs.Int("cus", 0, "override compute-unit count (default: Table 1's 64)")
		tiles    = fs.Int("tiles", 0, "split the system into N GPU tiles over a NoC (power of two; 0/1 = monolithic)")
		topology = fs.String("topology", "", "interconnect between tiles (direct, crossbar, mesh; default crossbar)")
		mesh     = fs.Bool("mesh", false, "shorthand for -topology mesh")
		record   = fs.String("record", "", "with -workload: write the memory trace to FILE")
		replay   = fs.String("replay", "", "replay a recorded trace under -policy (trace-driven mode)")
		window   = fs.Int("window", 64, "outstanding-request window for -replay (0 = timed replay)")
		workers  = fs.Int("workers", 0, "concurrent simulations for matrix runs (0 = GOMAXPROCS, 1 = sequential)")
		cellW    = fs.Int("cell-workers", 1, "intra-cell partitioned-execution workers per simulation (1 = sequential engine)")
		quiet    = fs.Bool("quiet", false, "suppress progress output on stderr")
		timeout  = fs.Duration("timeout", 0, "wall-clock budget per simulation (0 = unlimited)")
		maxEv    = fs.Uint64("max-events", 0, "event budget per simulation (0 = unlimited)")
		cacheDir = fs.String("cache-dir", "", "persistent result cache directory, shared with micached's MICACHED_CACHE_DIR (\"\" = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A non-positive, NaN, or infinite scale silently degenerates every
	// workload to empty kernels; reject it before anything runs.
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		return fmt.Errorf("-scale must be positive and finite, got %g", *scale)
	}
	if *cellW < 1 || *cellW > core.MaxCellWorkers {
		return fmt.Errorf("-cell-workers must be in 1..%d, got %d", core.MaxCellWorkers, *cellW)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *window < 0 {
		return fmt.Errorf("-window must be >= 0 (0 = timed replay), got %d", *window)
	}

	cfg := core.DefaultConfig()
	if *cus > 0 {
		cfg.GPU.CUs = *cus
	}
	if *tiles > 0 {
		cfg.Topology.Tiles = *tiles
	}
	if *topology != "" {
		k, err := noc.ParseKind(*topology)
		if err != nil {
			return err
		}
		// -mesh is shorthand for -topology mesh; naming two different
		// interconnects in one command is a contradiction, not a
		// precedence question, so refuse it instead of silently letting
		// one flag win.
		if *mesh && k != noc.Mesh {
			return fmt.Errorf("-mesh conflicts with -topology %s: pick one interconnect", k)
		}
		cfg.Topology.Kind = k
	} else if *mesh {
		cfg.Topology.Kind = noc.Mesh
	}
	sc := workloads.Scale(*scale)
	out := os.Stdout
	// Budgets bound each simulation; a tripped budget surfaces as a
	// structured error and a clean non-zero exit, never a stack trace.
	budgets := core.Budgets{Timeout: *timeout, MaxEvents: *maxEv}

	// -cache-dir opens the same crash-safe snapshot store micached
	// persists to (same directory layout, same core.CellKey schema), so
	// CLI runs and server runs share results both ways. A store that
	// fails to open degrades to running everything — this is a cache,
	// not an input.
	var store *persist.Store
	if *cacheDir != "" {
		var err error
		store, err = persist.Open(*cacheDir, persist.Options{Fsync: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "micache: cache-dir unavailable, running uncached: %v\n", err)
		} else {
			defer store.Close()
			if c := store.Counters(); c.Corrupt > 0 && !*quiet {
				fmt.Fprintf(os.Stderr, "micache: quarantined %d corrupt cache entries in %s\n", c.Corrupt, *cacheDir)
			}
		}
	}

	switch {
	case *table == 1:
		report.RenderTable1(out, cfg)
		return nil
	case *table == 2:
		report.RenderTable2(out, sc)
		return nil
	case *table != 0:
		return fmt.Errorf("unknown table %d (the paper has tables 1 and 2)", *table)
	case *replay != "":
		return runReplay(cfg, *replay, *variant, *window)
	case *workload != "":
		return runSingle(cfg, *workload, *variant, sc, *record, budgets, *cellW, store)
	case *figure != 0:
		return runFigures(cfg, []int{*figure}, sc, *csv, *workers, *cellW, *quiet, budgets, store)
	case *all:
		report.RenderTable1(out, cfg)
		report.RenderTable2(out, sc)
		return runFigures(cfg, []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, sc, *csv, *workers, *cellW, *quiet, budgets, store)
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table, -figure or -workload")
	}
}

// workloadNames lists the Table 2 workload names for error messages.
func workloadNames() string {
	specs := workloads.All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, ", ")
}

// lookupVariant resolves a -policy label, listing the valid labels when
// it does not match.
func lookupVariant(label string) (core.Variant, error) {
	v, err := core.VariantByLabel(label)
	if err != nil {
		vs := core.AllVariants()
		labels := make([]string, len(vs))
		for i, v := range vs {
			labels[i] = v.Label
		}
		return core.Variant{}, fmt.Errorf("unknown policy %q (valid: %s)", label, strings.Join(labels, ", "))
	}
	return v, nil
}

// runSingle runs one workload under one variant and prints full stats;
// with recordPath it also captures and writes the memory trace (the
// recording path ignores budgets, cell workers, and the cache — a
// trace must be complete or absent, and recording hooks the sequential
// engine).
func runSingle(cfg core.Config, name, label string, sc workloads.Scale, recordPath string, b core.Budgets, cellWorkers int, store *persist.Store) error {
	spec, err := workloads.ByName(name)
	if err != nil {
		return fmt.Errorf("unknown workload %q (valid: %s)", name, workloadNames())
	}
	v, err := lookupVariant(label)
	if err != nil {
		return err
	}
	start := time.Now()
	var r core.Result
	if store != nil && recordPath == "" {
		key := core.CellKey(cfg, spec.Name, v.Label, float64(sc))
		if snap, ok, err := store.Get(key); err == nil && ok {
			fmt.Fprintf(os.Stderr, "served from cache %s\n", store.Dir())
			printSingle(cfg, core.Result{Workload: spec.Name, Class: spec.Class, Variant: v.Label, Snap: snap}, start)
			return nil
		}
	}
	if recordPath != "" {
		var tr *trace.Trace
		r, tr, err = core.RunRecorded(cfg, v, spec, sc)
		if err != nil {
			return err
		}
		f, err := os.Create(recordPath)
		if err != nil {
			return err
		}
		if _, err := tr.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recorded %d events to %s\n", len(tr.Events), recordPath)
	} else {
		r, err = core.RunOneWorkers(cfg, v, spec, sc, b, cellWorkers)
		if err != nil {
			return err
		}
		if store != nil {
			if err := store.Put(core.CellKey(cfg, spec.Name, v.Label, float64(sc)), r.Snap); err != nil {
				fmt.Fprintf(os.Stderr, "micache: cache write failed: %v\n", err)
			}
		}
	}
	printSingle(cfg, r, start)
	return nil
}

// printSingle renders one cell's full statistics block.
func printSingle(cfg core.Config, r core.Result, start time.Time) {
	s := r.Snap
	fmt.Printf("%s under %s (%s class, simulated in %v)\n",
		r.Workload, r.Variant, r.Class, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  cycles             %d\n", s.Cycles)
	fmt.Printf("  GVOPS              %.1f\n", s.GVOPS(cfg.GPUClockMHz))
	fmt.Printf("  GMR/s              %.2f\n", s.GMRs(cfg.GPUClockMHz))
	fmt.Printf("  GPU mem requests   %d\n", s.GPUMemRequests)
	fmt.Printf("  DRAM accesses      %d (reads %d, writes %d)\n",
		s.DRAM.Accesses(), s.DRAM.Reads, s.DRAM.Writes)
	fmt.Printf("  DRAM row hit rate  %.1f%%\n", 100*s.DRAM.RowHitRate())
	fmt.Printf("  stalls per request %.3f (L1 %d, L2 %d)\n",
		s.StallsPerRequest(), s.L1.Stalls, s.L2.Stalls)
	l1, l2 := s.L1, s.L2
	fmt.Printf("  stall causes (L1)  port %d, alloc %d, mshr %d, bypass %d, line %d\n",
		l1.StallPort, l1.StallAlloc, l1.StallMSHR, l1.StallBypass, l1.StallLine)
	fmt.Printf("  stall causes (L2)  port %d, alloc %d, mshr %d, bypass %d, line %d\n",
		l2.StallPort, l2.StallAlloc, l2.StallMSHR, l2.StallBypass, l2.StallLine)
	fmt.Printf("  L1 hit rate        %.1f%%  L2 hit rate %.1f%%\n",
		100*s.L1.HitRate(), 100*s.L2.HitRate())
	fmt.Printf("  L2 writebacks      %d (rinses %d)\n", s.L2.Writebacks, s.L2.Rinses)
	fmt.Printf("  bypasses           L1 %d, L2 %d (predictor %d, alloc %d)\n",
		s.L1.Bypasses, s.L2.Bypasses, s.L2.PredBypass, s.L1.AllocBypass+s.L2.AllocBypass)
	fmt.Printf("  kernels            %d\n", s.Kernels)
	if len(s.Tiles) > 0 {
		fmt.Println()
		report.RenderTopology(os.Stdout, s)
	}
}

// runReplay drives a recorded trace through the memory system under the
// given policy variant (trace-driven what-if mode).
func runReplay(cfg core.Config, path, label string, window int) error {
	v, err := lookupVariant(label)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var tr trace.Trace
	if _, err := tr.ReadFrom(f); err != nil {
		return err
	}
	mode := trace.Windowed
	if window <= 0 {
		mode = trace.Timed
	}
	start := time.Now()
	snap, err := core.ReplayTrace(cfg, v, &tr, mode, window)
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d events under %s (in %v)\n",
		len(tr.Events), v.Label, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  cycles             %d\n", snap.Cycles)
	fmt.Printf("  DRAM accesses      %d (reads %d, writes %d)\n",
		snap.DRAM.Accesses(), snap.DRAM.Reads, snap.DRAM.Writes)
	fmt.Printf("  DRAM row hit rate  %.1f%%\n", 100*snap.DRAM.RowHitRate())
	fmt.Printf("  L1 hit rate        %.1f%%  L2 hit rate %.1f%%\n",
		100*snap.L1.HitRate(), 100*snap.L2.HitRate())
	fmt.Printf("  stalls per request %.3f\n", snap.StallsPerRequest())
	return nil
}

// runFigures computes the result matrix once — cells spread over the
// requested worker count — and renders the requested figures. With a
// store, cells already on disk are served without simulating and fresh
// cells are persisted, so re-rendering figures after an interrupted
// sweep only pays for the missing cells.
func runFigures(cfg core.Config, figs []int, sc workloads.Scale, csv bool, workers, cellWorkers int, quiet bool, b core.Budgets, store *persist.Store) error {
	specs := workloads.All()
	figMap := report.Figures(cfg.GPUClockMHz)
	sort.Ints(figs)
	for _, f := range figs {
		if _, ok := figMap[f]; !ok {
			return fmt.Errorf("unknown figure %d (the evaluation has figures 4..13)", f)
		}
	}

	// Figures 4/5 need only CacheR; others need the full variant set.
	needOpt := false
	needStatic := false
	for _, f := range figs {
		if f >= 6 {
			needStatic = true
		}
		if f >= 10 {
			needOpt = true
		}
	}
	var variants []core.Variant
	switch {
	case needOpt:
		variants = core.AllVariants()
	case needStatic:
		variants = core.StaticVariants()
	default:
		v, _ := core.VariantByLabel("CacheR")
		variants = []core.Variant{v}
	}

	start := time.Now()
	opts := core.RunMatrixOpts{
		Workers:          workers,
		CellWorkers:      cellWorkers,
		CellTimeout:      b.Timeout,
		MaxEventsPerCell: b.MaxEvents,
	}
	cached := 0
	if store != nil {
		opts.Lookup = func(spec workloads.Spec, v core.Variant) (stats.Snapshot, bool) {
			snap, ok, err := store.Get(core.CellKey(cfg, spec.Name, v.Label, float64(sc)))
			return snap, err == nil && ok
		}
		opts.OnCell = func(r core.Result, wasCached bool, done, total int) {
			if wasCached {
				cached++
				return
			}
			if err := store.Put(core.CellKey(cfg, r.Workload, r.Variant, float64(sc)), r.Snap); err != nil && !quiet {
				fmt.Fprintf(os.Stderr, "micache: cache write failed: %v\n", err)
			}
		}
	}
	if !quiet {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d simulations", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	results, err := core.RunMatrixWith(cfg, variants, specs, sc, opts)
	if err != nil {
		if !quiet {
			// The progress line only self-terminates on completion;
			// keep the error off the half-drawn line.
			fmt.Fprintln(os.Stderr)
		}
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "ran %d simulations in %v (workers=%d)\n",
			len(results), time.Since(start).Round(time.Millisecond), opts.EffectiveWorkers())
		if cached > 0 {
			fmt.Fprintf(os.Stderr, "%d of %d cells served from cache\n", cached, len(results))
		}
	}

	m := core.NewMatrix(results)
	for _, f := range figs {
		report.RenderFigure(os.Stdout, figMap[f], m, csv)
	}
	if !csv {
		report.RenderTotals(os.Stdout, results)
	}
	return nil
}
