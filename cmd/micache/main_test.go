package main

import (
	"strings"
	"testing"
)

// TestFlagValidation covers the CLI's argument rejections, in
// particular the -mesh/-topology conflict that used to be silently
// resolved by flag-processing order instead of reported.
func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"mesh vs crossbar conflict", []string{"-tiles", "2", "-mesh", "-topology", "crossbar", "-table", "1"},
			"-mesh conflicts with -topology"},
		{"mesh vs direct conflict", []string{"-tiles", "2", "-mesh", "-topology", "direct", "-table", "1"},
			"-mesh conflicts with -topology"},
		{"negative workers", []string{"-workers", "-1", "-table", "1"},
			"-workers must be >= 0"},
		{"negative window", []string{"-window", "-1", "-table", "1"},
			"-window must be >= 0"},
		{"negative scale", []string{"-scale", "-0.5", "-table", "1"},
			"-scale must be positive"},
	} {
		err := run(tc.args)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}

	// Redundant but consistent spellings stay accepted: -mesh alongside
	// -topology mesh names the same interconnect.
	if err := run([]string{"-tiles", "2", "-mesh", "-topology", "mesh", "-table", "1"}); err != nil {
		t.Errorf("-mesh -topology mesh: unexpected error %v", err)
	}
	// -window 0 keeps its timed-replay meaning (validation rejects only
	// negatives); no replay file is involved when just printing a table.
	if err := run([]string{"-window", "0", "-table", "1"}); err != nil {
		t.Errorf("-window 0: unexpected error %v", err)
	}
}
