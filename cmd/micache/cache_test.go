package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/workloads"
)

// cacheArgs is one small cell with the persistent cache on.
func cacheArgs(dir string) []string {
	return []string{"-workload", "FwSoft", "-policy", "CacheRW",
		"-scale", "0.05", "-cus", "8", "-quiet", "-cache-dir", dir}
}

// captureStderr runs fn with os.Stderr redirected to a pipe and
// returns what was written (run prints cache provenance there).
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := fn()
	w.Close()
	os.Stderr = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	r.Close()
	return sb.String(), runErr
}

// TestCacheDirCrossBinarySchema pins the cross-binary contract: a cell
// micache persists through -cache-dir is stored under core.CellKey —
// the exact key micached computes for the same request — with a
// snapshot byte-identical to a direct run. (micached's matrix test
// pins the same key from the server side, so the two binaries meet in
// the middle.)
func TestCacheDirCrossBinarySchema(t *testing.T) {
	dir := t.TempDir()
	if err := run(cacheArgs(dir)); err != nil {
		t.Fatalf("micache run: %v", err)
	}

	cfg := core.DefaultConfig()
	cfg.GPU.CUs = 8
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap, ok, err := st.Get(core.CellKey(cfg, "FwSoft", "CacheRW", 0.05))
	if err != nil || !ok {
		t.Fatalf("persisted cell not found under the shared key: ok=%v err=%v (keys: %v)", ok, err, st.Keys())
	}

	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.RunOne(cfg, v, spec, workloads.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(direct.Snap) {
		t.Fatalf("persisted snapshot differs from a direct run:\nstore:  %+v\ndirect: %+v", snap, direct.Snap)
	}
}

// TestCacheDirSecondRunHits: the repeat invocation is served from the
// store (announced on stderr) and does not change the entry count.
func TestCacheDirSecondRunHits(t *testing.T) {
	dir := t.TempDir()
	if err := run(cacheArgs(dir)); err != nil {
		t.Fatalf("first run: %v", err)
	}
	stderr, err := captureStderr(t, func() error { return run(cacheArgs(dir)) })
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !strings.Contains(stderr, "served from cache") {
		t.Fatalf("second run did not hit the cache; stderr:\n%s", stderr)
	}
}

// TestCacheDirUnavailableRunsAnyway: a cache path that cannot be a
// directory degrades to an uncached run, not a failure.
func TestCacheDirUnavailableRunsAnyway(t *testing.T) {
	file := t.TempDir() + "/flat"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr, err := captureStderr(t, func() error {
		return run([]string{"-workload", "FwSoft", "-policy", "CacheRW",
			"-scale", "0.05", "-cus", "8", "-quiet", "-cache-dir", file})
	})
	if err != nil {
		t.Fatalf("run with broken cache dir failed: %v", err)
	}
	if !strings.Contains(stderr, "running uncached") {
		t.Fatalf("degradation not announced; stderr:\n%s", stderr)
	}
}

// TestFiguresShareCacheDir: a figure sweep persists its cells, and a
// re-render serves them all from the store without simulating.
func TestFiguresShareCacheDir(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-figure", "4", "-scale", "0.02", "-cus", "8", "-csv", "-cache-dir", dir}
	if err := run(args); err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	st, err := persist.Open(dir, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries := st.Len()
	st.Close()
	if entries == 0 {
		t.Fatal("figure sweep persisted no cells")
	}

	stderr, err := captureStderr(t, func() error {
		noisy := []string{"-figure", "4", "-scale", "0.02", "-cus", "8", "-csv", "-cache-dir", dir}
		return run(noisy)
	})
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if !strings.Contains(stderr, "served from cache") {
		t.Fatalf("re-render did not report cached cells; stderr:\n%s", stderr)
	}
}
