package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// testServerConfig shrinks the machine the same way the core tests do,
// so end-to-end requests finish in milliseconds.
func testServerConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.GPU.CUs = 8
	cfg.L2.SizeBytes = 256 << 10
	return cfg
}

func testServer(opts serverOpts) *server {
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.MaxScale == 0 {
		opts.MaxScale = 1.0
	}
	return newServer(testServerConfig(), opts)
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestRunEndpoint runs a real cell end-to-end through HTTP and checks
// the snapshot matches a direct in-process run exactly.
func TestRunEndpoint(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, body := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}

	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.RunOne(testServerConfig(), v, spec, workloads.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Snapshot.Equal(r.Snap) {
		t.Fatalf("served snapshot differs from direct run:\nserved: %+v\ndirect: %+v", rr.Snapshot, r.Snap)
	}
	if rr.Snapshot.Cycles == 0 || rr.Snapshot.GPUMemRequests == 0 {
		t.Fatalf("empty snapshot served: %+v", rr.Snapshot)
	}
	if rr.GVOPS <= 0 {
		t.Fatalf("GVOPS = %g, want > 0", rr.GVOPS)
	}

	// The same cell again must be served from the pool, not a rebuild.
	resp2, _ := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run status = %d", resp2.StatusCode)
	}
	built, reused := srv.pool.Counts()
	if built != 1 || reused != 1 {
		t.Fatalf("pool built=%d reused=%d, want 1/1", built, reused)
	}
}

func TestRequestValidation(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4, MaxScale: 0.5})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	cases := []struct {
		name, body string
		want       int
	}{
		{"unknown workload", `{"workload":"Nope","variant":"CacheRW","scale":0.05}`, http.StatusBadRequest},
		{"unknown variant", `{"workload":"FwSoft","variant":"Nope","scale":0.05}`, http.StatusBadRequest},
		{"negative scale", `{"workload":"FwSoft","variant":"CacheRW","scale":-1}`, http.StatusBadRequest},
		{"scale above cap", `{"workload":"FwSoft","variant":"CacheRW","scale":0.75}`, http.StatusBadRequest},
		{"unknown field", `{"workload":"FwSoft","variant":"CacheRW","bogus":1}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postRun(t, ts, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.want, body)
		}
	}

	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run status = %d, want 405", resp.StatusCode)
	}
}

// TestRunEndpointTopology runs a 2-tile request end-to-end and checks
// the snapshot matches a direct multi-tile run, reports per-tile and
// per-link sections, and never touches the shared single-tile pool.
func TestRunEndpointTopology(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, body := postRun(t, ts,
		`{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"tiles":2,"topology":"mesh"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if rr.Tiles != 2 || rr.Topology != "mesh" {
		t.Fatalf("response echoes tiles=%d topology=%q, want 2/mesh", rr.Tiles, rr.Topology)
	}
	if len(rr.Snapshot.Tiles) != 2 || len(rr.Snapshot.Links) == 0 {
		t.Fatalf("snapshot missing topology sections: %+v", rr.Snapshot)
	}

	cfg := testServerConfig()
	cfg.Topology.Tiles = 2
	cfg.Topology.Kind = noc.Mesh
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.RunOne(cfg, v, spec, workloads.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Snapshot.Equal(r.Snap) {
		t.Fatalf("served 2-tile snapshot differs from direct run:\nserved: %+v\ndirect: %+v",
			rr.Snapshot, r.Snap)
	}

	// Off-default topologies must not consume or seed the warm pool.
	if built, reused := srv.pool.Counts(); built != 0 || reused != 0 {
		t.Fatalf("topology request touched the pool: built=%d reused=%d", built, reused)
	}
}

// TestRunEndpointCellWorkers runs a partitioned request end-to-end: the
// snapshot must be byte-identical to a direct sequential run (the
// partitioned engine's core contract), the response must echo the
// resolved worker count, and — since the warm pool holds sequential
// systems — the request must never touch the pool.
func TestRunEndpointCellWorkers(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, body := postRun(t, ts,
		`{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"cell_workers":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	if rr.CellWorkers != 3 {
		t.Fatalf("response echoes cell_workers=%d, want 3", rr.CellWorkers)
	}

	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.RunOne(testServerConfig(), v, spec, workloads.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Snapshot.Equal(r.Snap) {
		t.Fatalf("served partitioned snapshot differs from direct sequential run:\nserved: %+v\ndirect: %+v",
			rr.Snapshot, r.Snap)
	}
	if built, reused := srv.pool.Counts(); built != 0 || reused != 0 {
		t.Fatalf("cell_workers request touched the pool: built=%d reused=%d", built, reused)
	}

	// An omitted or zero cell_workers resolves to 1 and stays pooled.
	resp2, body2 := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"cell_workers":0}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cell_workers=0 status = %d, body = %s", resp2.StatusCode, body2)
	}
	var rr2 runResponse
	if err := json.Unmarshal(body2, &rr2); err != nil {
		t.Fatal(err)
	}
	if rr2.CellWorkers != 1 {
		t.Fatalf("cell_workers=0 resolved to %d, want 1", rr2.CellWorkers)
	}
	if built, _ := srv.pool.Counts(); built != 1 {
		t.Fatalf("default cell_workers bypassed the pool: built=%d, want 1", built)
	}

	// Out-of-range values are client errors, and the 400 body states the
	// valid bounds.
	for _, bad := range []string{
		`{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"cell_workers":-1}`,
		fmt.Sprintf(`{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"cell_workers":%d}`, core.MaxCellWorkers+1),
	} {
		resp, body := postRun(t, ts, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (body %s)", bad, resp.StatusCode, body)
		}
		var er errResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("bad error JSON: %v\n%s", err, body)
		}
		if !strings.Contains(er.Error, fmt.Sprintf("1..%d", core.MaxCellWorkers)) {
			t.Fatalf("400 body %q does not state the valid cell_workers range", er.Error)
		}
	}
}

// TestTopologyRequestValidation pins the 400 contract for topology
// parameters: unknown names answer with the valid list, and structurally
// impossible tilings are refused before any system is built.
func TestTopologyRequestValidation(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, body := postRun(t, ts,
		`{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"topology":"torus"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown topology status = %d, want 400 (body %s)", resp.StatusCode, body)
	}
	var er errResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, body)
	}
	for _, name := range noc.Kinds() {
		if !strings.Contains(er.Error, name) {
			t.Fatalf("400 body %q does not list valid topology %q", er.Error, name)
		}
	}

	// tiles=3 (not a power of two) and tiles=16 (does not divide the
	// test config's 8 CUs) are config errors, also 400.
	for _, bad := range []string{
		`{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"tiles":3}`,
		`{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"tiles":16}`,
	} {
		resp, body := postRun(t, ts, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (body %s)", bad, resp.StatusCode, body)
		}
	}
}

// TestBackpressure429 saturates one worker and one queue slot with a
// stubbed blocking run, then checks the next request is refused with
// 429 immediately, and that the admitted ones still complete once
// unblocked. Also a goroutine-leak check: after the storm, the
// goroutine count returns to its baseline.
func TestBackpressure429(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := testServer(serverOpts{Workers: 1, Queue: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	srv.runFn = func(sys *core.System, w workloads.Workload, b core.Budgets) (stats.Snapshot, error) {
		started <- struct{}{}
		<-release
		return stats.Snapshot{Cycles: 1}, nil
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`
	codes := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postRun(t, ts, body)
		codes <- resp.StatusCode
	}()
	// Wait until request 1 holds the only worker slot.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never started")
	}

	// Request 2 takes the single queue slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postRun(t, ts, body)
		codes <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Request 3 finds worker and queue full: refused now, not queued.
	resp, rbody := postRun(t, ts, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (body %s)", resp.StatusCode, rbody)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("admitted request %d finished with %d, want 200", i, code)
		}
	}

	ts.Close()
	// Allow the server's per-connection goroutines to wind down.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now vs %d at start", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain checks the drain contract: once draining, /healthz
// reports 503 and new runs are refused, but an in-flight run completes
// normally.
func TestGracefulDrain(t *testing.T) {
	srv := testServer(serverOpts{Workers: 1, Queue: 1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.runFn = func(sys *core.System, w workloads.Workload, b core.Budgets) (stats.Snapshot, error) {
		started <- struct{}{}
		<-release
		return stats.Snapshot{Cycles: 42}, nil
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`
	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		resp, b := postRun(t, ts, body)
		done <- result{resp.StatusCode, b}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never started")
	}

	srv.beginDrain()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	resp2, _ := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run while draining = %d, want 503", resp2.StatusCode)
	}

	// The request admitted before the drain still completes.
	close(release)
	select {
	case r := <-done:
		if r.code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d (%s), want 200", r.code, r.body)
		}
		var rr runResponse
		if err := json.Unmarshal(r.body, &rr); err != nil || rr.Snapshot.Cycles != 42 {
			t.Fatalf("in-flight response corrupted by drain: %s", r.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed after release")
	}
	if n := srv.Inflight(); n != 0 {
		t.Fatalf("Inflight() = %d after drain, want 0", n)
	}
}

// TestPanicIsolation injects a panic into one request's run and checks
// the client gets a 500 while the server keeps serving real runs.
func TestPanicIsolation(t *testing.T) {
	srv := testServer(serverOpts{Workers: 1, Queue: 1})
	real := srv.runFn
	srv.runFn = func(sys *core.System, w workloads.Workload, b core.Budgets) (stats.Snapshot, error) {
		panic(fmt.Sprintf("injected for %s", w.Name))
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`
	resp, rbody := postRun(t, ts, body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking run status = %d, want 500", resp.StatusCode)
	}
	var er errResponse
	if err := json.Unmarshal(rbody, &er); err != nil || er.Error == "" {
		t.Fatalf("panic response not structured JSON: %s", rbody)
	}

	// The poisoned system was abandoned, not re-pooled; the next real
	// run must build a fresh one and succeed.
	srv.runFn = real
	resp2, body2 := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic run status = %d (%s), want 200", resp2.StatusCode, body2)
	}
	built, reused := srv.pool.Counts()
	if built != 2 || reused != 0 {
		t.Fatalf("pool built=%d reused=%d after panic, want 2 built / 0 reused", built, reused)
	}
}

// TestBudgetExceededResponse wires a tiny event budget through the full
// HTTP path: the client gets a structured 504 naming the reason, and
// the interrupted system goes back to the pool for the next request.
func TestBudgetExceededResponse(t *testing.T) {
	srv := testServer(serverOpts{Workers: 1, Queue: 1, MaxEvents: 50})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, body := postRun(t, ts, `{"workload":"FwPool","variant":"CacheRW","scale":0.05}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("over-budget status = %d (%s), want 504", resp.StatusCode, body)
	}
	var er errResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("bad error JSON: %v\n%s", err, body)
	}
	if er.Reason != "max-events" || er.Fired == nil || *er.Fired < 50 || er.Clock == nil || *er.Clock == 0 {
		t.Fatalf("error diagnostics = %+v, want reason=max-events fired>=50 clock>0", er)
	}

	// The interrupted system is reusable: drop the budget and rerun.
	srv.maxEvents = 0
	resp2, _ := postRun(t, ts, `{"workload":"FwPool","variant":"CacheRW","scale":0.05}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("rerun after budget stop = %d, want 200", resp2.StatusCode)
	}
	built, reused := srv.pool.Counts()
	if built != 1 || reused != 1 {
		t.Fatalf("pool built=%d reused=%d, want 1/1 (interrupted system re-pooled)", built, reused)
	}
}
