package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// parsedEvent is one decoded SSE frame.
type parsedEvent struct {
	name string
	data json.RawMessage
}

// parseSSE decodes a full event-stream body into its frames.
func parseSSE(t *testing.T, body io.Reader) []parsedEvent {
	t.Helper()
	var evs []parsedEvent
	var cur parsedEvent
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" {
				evs = append(evs, cur)
				cur = parsedEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning SSE stream: %v", err)
	}
	return evs
}

func postMatrix(t *testing.T, ts *httptest.Server, body string) (*http.Response, []parsedEvent) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/matrix", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		t.Fatalf("matrix status = %d (%s)", resp.StatusCode, buf.String())
	}
	return resp, parseSSE(t, resp.Body)
}

// TestMatrixStreams runs a 2×2 sweep end to end and checks the SSE
// stream: four cell events with monotonic progress, then a done event
// whose totals match the cells' sum.
func TestMatrixStreams(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, evs := postMatrix(t, ts,
		`{"scale":0.05,"workloads":["FwSoft","FwPool"],"variants":["Uncached","CacheRW"]}`)
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 4 cells + 1 done", len(evs))
	}
	var cellSum stats.Snapshot
	for i, ev := range evs[:4] {
		if ev.name != "cell" {
			t.Fatalf("event %d = %q, want cell", i, ev.name)
		}
		var ce matrixCellEvent
		if err := json.Unmarshal(ev.data, &ce); err != nil {
			t.Fatal(err)
		}
		if ce.Done != i+1 || ce.Total != 4 {
			t.Fatalf("cell %d progress = %d/%d, want %d/4", i, ce.Done, ce.Total, i+1)
		}
		if ce.Cached {
			t.Fatalf("cell %d cached on a cache-disabled server", i)
		}
		if ce.Cycles == 0 {
			t.Fatalf("cell %d reported zero cycles", i)
		}
		cellSum.Cycles += ce.Cycles
	}
	if evs[4].name != "done" {
		t.Fatalf("final event = %q, want done", evs[4].name)
	}
	var de matrixDoneEvent
	if err := json.Unmarshal(evs[4].data, &de); err != nil {
		t.Fatal(err)
	}
	if de.Cells != 4 || de.CacheHits != 0 {
		t.Fatalf("done = %+v, want 4 cells / 0 hits", de)
	}
	if de.Totals.Cycles != cellSum.Cycles {
		t.Fatalf("totals cycles %d != sum of cell cycles %d", de.Totals.Cycles, cellSum.Cycles)
	}
}

// TestMatrixSharesCacheWithRun seeds one cell via /run, then sweeps:
// that cell streams as cached, and a second identical sweep is fully
// cached with zero new pool traffic.
func TestMatrixSharesCacheWithRun(t *testing.T) {
	srv := cacheTestServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, _ := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run = %d", resp.StatusCode)
	}

	const sweep = `{"scale":0.05,"workloads":["FwSoft","FwPool"],"variants":["CacheRW"]}`
	_, evs := postMatrix(t, ts, sweep)
	cached := map[string]bool{}
	for _, ev := range evs {
		if ev.name != "cell" {
			continue
		}
		var ce matrixCellEvent
		if err := json.Unmarshal(ev.data, &ce); err != nil {
			t.Fatal(err)
		}
		cached[ce.Workload] = ce.Cached
	}
	if !cached["FwSoft"] || cached["FwPool"] {
		t.Fatalf("cached map = %v, want FwSoft from /run's cache line, FwPool fresh", cached)
	}

	gets := srv.pool.Gets()
	_, evs2 := postMatrix(t, ts, sweep)
	var de matrixDoneEvent
	if err := json.Unmarshal(evs2[len(evs2)-1].data, &de); err != nil {
		t.Fatal(err)
	}
	if de.CacheHits != 2 {
		t.Fatalf("second sweep cache hits = %d, want 2 (fully cached)", de.CacheHits)
	}
	if g := srv.pool.Gets(); g != gets {
		t.Fatalf("fully cached sweep touched the pool: gets %d -> %d", gets, g)
	}

	// And the sweep populated the cache for /run in return.
	resp3, _ := postRun(t, ts, `{"workload":"FwPool","variant":"CacheRW","scale":0.05}`)
	if h := resp3.Header.Get("X-Micached-Cache"); h != "hit" {
		t.Fatalf("/run after sweep X-Micached-Cache = %q, want hit", h)
	}
}

// TestMatrixValidation covers the request-shape rejections.
func TestMatrixValidation(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	for _, tc := range []struct {
		name, body string
	}{
		{"unknown workload", `{"workloads":["NotAWorkload"]}`},
		{"unknown variant", `{"variants":["NotAVariant"]}`},
		{"bad scale", `{"scale":-1}`},
		{"over max scale", `{"scale":99}`},
		{"unknown field", `{"bogus":1}`},
	} {
		resp, err := http.Post(ts.URL+"/matrix", "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/matrix")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /matrix = %d, want 405", resp.StatusCode)
	}
}

// TestMatrixClientDisconnect hangs up mid-stream and checks the sweep
// goroutine unwinds: the admission slot frees and inflight returns to
// zero instead of leaking a worker.
func TestMatrixClientDisconnect(t *testing.T) {
	started := make(chan struct{})
	srv := testServer(serverOpts{Workers: 1, Queue: 1})
	srv.matrixFn = func(cfg core.Config, vs []core.Variant, specs []workloads.Spec,
		scale workloads.Scale, opts core.RunMatrixOpts) ([]core.Result, error) {
		close(started)
		<-opts.Ctx.Done()
		return nil, &core.ErrBudgetExceeded{Reason: core.ReasonCanceled, Cause: opts.Ctx.Err()}
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/matrix",
		strings.NewReader(`{"scale":0.05,"workloads":["FwSoft"],"variants":["CacheRW"]}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, err = io.ReadAll(resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel()
	<-errc

	deadline := time.After(5 * time.Second)
	for srv.Inflight() != 0 {
		select {
		case <-deadline:
			t.Fatalf("inflight = %d after disconnect, want 0", srv.Inflight())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The freed slot admits the next request.
	select {
	case srv.sem <- struct{}{}:
		<-srv.sem
	default:
		t.Fatal("worker slot leaked after mid-stream disconnect")
	}
}

// TestMetricsEndpoint scrapes /metrics after mixed traffic and checks
// the exposition text carries the server, cache, and pool families.
func TestMetricsEndpoint(t *testing.T) {
	srv := cacheTestServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`) // hit
	postMatrix(t, ts, `{"scale":0.05,"workloads":["FwSoft"],"variants":["CacheRW"]}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"micached_run_requests_total 2",
		"micached_matrix_requests_total 1",
		"micached_cache_misses_total 1",
		"micached_cache_entries 1",
		"micached_pool_gets_total 1",
		"micached_pool_puts_total 1",
		"micached_client_gone_total 0",
		"# TYPE micached_inflight gauge",
		"# HELP micached_timeouts_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	if resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /metrics = %d, want 405", resp.StatusCode)
		}
	}
}
