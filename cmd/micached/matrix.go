package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// matrixRequest selects a workload×variant sweep. Empty lists mean
// "all": the zero request reproduces the paper's full Table-2 matrix.
type matrixRequest struct {
	Scale     float64  `json:"scale"`
	Workloads []string `json:"workloads,omitempty"`
	Variants  []string `json:"variants,omitempty"`
}

// matrixCellEvent is the payload of one SSE "cell" event: the cell's
// identity, sweep progress, whether the cache served it, and the two
// headline numbers so a dashboard can plot without parsing snapshots.
type matrixCellEvent struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Cached   bool    `json:"cached"`
	Cycles   uint64  `json:"cycles"`
	GVOPS    float64 `json:"gvops"`
}

// matrixDoneEvent is the payload of the terminal SSE "done" event.
type matrixDoneEvent struct {
	Cells     int            `json:"cells"`
	CacheHits int            `json:"cache_hits"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Totals    stats.Snapshot `json:"totals"`
}

// sseEvent pairs an event name with its JSON payload for the write loop.
type sseEvent struct {
	name string
	data any
}

// handleMatrix runs a workload×variant sweep and streams progress as
// server-sent events: one "cell" event per completed cell, then a
// terminal "done" (or "error") event. The whole sweep occupies a
// single admission slot — cells run sequentially inside it — so a
// matrix request costs the queue exactly what one /run does, just for
// longer. Cells are cache-aware: cached cells are served without
// touching the pool, and fresh cells populate the cache for later
// /run and /matrix requests.
func (s *server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	s.m.matrixRequests.Inc()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "server is draining"})
		return
	}

	var req matrixRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Scale == 0 {
		req.Scale = 1.0
	}
	if !(req.Scale > 0) || req.Scale > s.maxScale {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("scale must be in (0, %g], got %g", s.maxScale, req.Scale)})
		return
	}
	specs := workloads.All()
	if len(req.Workloads) > 0 {
		specs = specs[:0:0]
		for _, name := range req.Workloads {
			sp, err := workloads.ByName(name)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
				return
			}
			specs = append(specs, sp)
		}
	}
	vs := core.AllVariants()
	if len(req.Variants) > 0 {
		vs = vs[:0:0]
		for _, label := range req.Variants {
			v, err := core.VariantByLabel(label)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
				return
			}
			vs = append(vs, v)
		}
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errResponse{Error: "streaming unsupported by connection"})
		return
	}
	if !s.admit(w, r) {
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	total := len(specs) * len(vs)
	// Buffered past the worst case so the sweep goroutine can always
	// finish and close the channel even if the write loop bails early
	// (client gone mid-stream).
	events := make(chan sseEvent, total+2)
	cacheHits := 0
	start := time.Now()

	go func() {
		defer close(events)
		var totals stats.Snapshot
		opts := core.RunMatrixOpts{
			Workers:          1,
			Ctx:              r.Context(),
			MaxEventsPerCell: s.maxEvents,
			CellTimeout:      s.timeout,
			Pool:             s.pool,
			TotalsOut:        &totals,
			OnCell: func(res core.Result, cached bool, done, total int) {
				if cached {
					cacheHits++
				} else if s.cache != nil {
					s.cache.Put(core.CellKey(s.cfg, res.Workload, res.Variant, req.Scale), res.Snap)
				}
				events <- sseEvent{"cell", matrixCellEvent{
					Workload: res.Workload,
					Variant:  res.Variant,
					Done:     done,
					Total:    total,
					Cached:   cached,
					Cycles:   res.Snap.Cycles,
					GVOPS:    res.Snap.GVOPS(s.cfg.GPUClockMHz),
				}}
			},
		}
		if s.cache != nil {
			opts.Lookup = func(spec workloads.Spec, v core.Variant) (stats.Snapshot, bool) {
				return s.cache.Get(core.CellKey(s.cfg, spec.Name, v.Label, req.Scale))
			}
		}
		results, err := s.matrixFn(s.cfg, vs, specs, workloads.Scale(req.Scale), opts)
		if err != nil {
			s.log.Warn("matrix sweep failed", "err", err, "cells_done", len(results))
			events <- sseEvent{"error", errResponse{Error: err.Error()}}
			return
		}
		events <- sseEvent{"done", matrixDoneEvent{
			Cells:     len(results),
			CacheHits: cacheHits,
			ElapsedMS: time.Since(start).Seconds() * 1e3,
			Totals:    totals,
		}}
	}()

	for ev := range events {
		if err := writeSSE(w, ev.name, ev.data); err != nil {
			// The client is gone; the sweep goroutine stops via
			// r.Context() and the buffered channel absorbs its tail.
			s.m.clientGone.Inc()
			s.log.Info("client disconnected mid-matrix", "err", err)
			for range events {
			}
			return
		}
		flusher.Flush()
	}
}

// writeSSE frames one server-sent event: "event: <name>" then the
// JSON payload on a "data:" line and a blank terminator.
func writeSSE(w http.ResponseWriter, name string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, payload)
	return err
}
