package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// cacheTestServer is testServer with the result cache on, sized so
// nothing evicts unless a test wants it to.
func cacheTestServer(opts serverOpts) *server {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 64
	}
	return testServer(opts)
}

// TestCacheHitServesWithoutPool pins the tentpole contract end to end:
// the second identical request reports X-Micached-Cache: hit, costs the
// pool nothing, and returns a snapshot byte-identical to both the first
// response and a direct in-process run.
func TestCacheHitServesWithoutPool(t *testing.T) {
	srv := cacheTestServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`
	resp1, body1 := postRun(t, ts, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run = %d (%s)", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-Micached-Cache"); h != "miss" {
		t.Fatalf("first X-Micached-Cache = %q, want miss", h)
	}
	gets := srv.pool.Gets()

	resp2, body2 := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run = %d (%s)", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-Micached-Cache"); h != "hit" {
		t.Fatalf("second X-Micached-Cache = %q, want hit", h)
	}
	if g := srv.pool.Gets(); g != gets {
		t.Fatalf("cache hit touched the pool: gets %d -> %d", gets, g)
	}

	var rr1, rr2 runResponse
	if err := json.Unmarshal(body1, &rr1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &rr2); err != nil {
		t.Fatal(err)
	}
	if !rr2.Snapshot.Equal(rr1.Snapshot) {
		t.Fatal("cached snapshot differs from the fresh run's")
	}
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		t.Fatal(err)
	}
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.RunOne(testServerConfig(), v, spec, workloads.Scale(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !rr2.Snapshot.Equal(direct.Snap) {
		t.Fatal("cached snapshot differs from a direct in-process run")
	}
}

// TestCacheKeyExcludesCellWorkers pins the canonicalization rule:
// partitioned execution is byte-identical to sequential by contract, so
// a sequential run's cache line serves a cell_workers request too.
func TestCacheKeyExcludesCellWorkers(t *testing.T) {
	srv := cacheTestServer(serverOpts{Queue: 4})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp1, body1 := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("seed run = %d (%s)", resp1.StatusCode, body1)
	}
	resp2, body2 := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"cell_workers":2}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("partitioned run = %d (%s)", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-Micached-Cache"); h != "hit" {
		t.Fatalf("cell_workers=2 X-Micached-Cache = %q, want hit (key must not include cell_workers)", h)
	}
	// The default topology collides with an explicit equivalent spelling.
	resp3, _ := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05,"tiles":1,"topology":"direct"}`)
	if h := resp3.Header.Get("X-Micached-Cache"); h != "hit" {
		t.Fatalf("tiles:1/direct X-Micached-Cache = %q, want hit (WithDefaults canonicalization)", h)
	}
}

// TestCacheSingleFlight fires concurrent identical requests at a
// blocked runFn and checks exactly one simulation happens: the leader
// reports miss, every follower reports hit with the same body.
func TestCacheSingleFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var invocations int
	var mu sync.Mutex
	srv := cacheTestServer(serverOpts{Workers: 4, Queue: 16})
	srv.runFn = func(sys *core.System, w workloads.Workload, b core.Budgets) (stats.Snapshot, error) {
		mu.Lock()
		invocations++
		mu.Unlock()
		close(started)
		<-release
		return stats.Snapshot{Cycles: 42, VectorOps: 7}, nil
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`
	const followers = 5
	type reply struct {
		status int
		header string
		body   []byte
	}
	replies := make(chan reply, followers+1)
	post := func() {
		resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Error(err)
			replies <- reply{}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		replies <- reply{resp.StatusCode, resp.Header.Get("X-Micached-Cache"), buf.Bytes()}
	}
	go post()
	<-started // the leader is inside runFn; every request below is a follower
	for i := 0; i < followers; i++ {
		go post()
	}
	// Followers park on the flight, not on worker slots; give them a
	// moment to arrive so they really do collapse.
	time.Sleep(50 * time.Millisecond)
	close(release)

	misses, hits := 0, 0
	var first *stats.Snapshot
	for i := 0; i < followers+1; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("reply %d status = %d (%s)", i, r.status, r.body)
		}
		switch r.header {
		case "miss":
			misses++
		case "hit":
			hits++
		default:
			t.Fatalf("reply %d X-Micached-Cache = %q", i, r.header)
		}
		var rr runResponse
		if err := json.Unmarshal(r.body, &rr); err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if first == nil {
			first = &rr.Snapshot
		} else if !rr.Snapshot.Equal(*first) {
			t.Fatalf("reply %d snapshot differs across collapsed requests", i)
		}
	}
	if invocations != 1 {
		t.Fatalf("invocations = %d, want 1 (single-flight collapse)", invocations)
	}
	if misses != 1 || hits != followers {
		t.Fatalf("miss/hit split = %d/%d, want 1/%d", misses, hits, followers)
	}
}

// TestCacheEviction bounds the cache at one entry and watches LRU
// replacement through the counters.
func TestCacheEviction(t *testing.T) {
	srv := cacheTestServer(serverOpts{Queue: 4, CacheEntries: 1})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	postRun(t, ts, `{"workload":"FwPool","variant":"CacheRW","scale":0.05}`) // evicts FwSoft
	resp, _ := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	if h := resp.Header.Get("X-Micached-Cache"); h != "miss" {
		t.Fatalf("evicted entry served as %q, want miss", h)
	}
	if _, _, evictions := srv.cache.Counters(); evictions != 2 {
		t.Fatalf("evictions = %d, want 2", evictions)
	}
	if srv.cache.Len() != 1 {
		t.Fatalf("cache Len = %d, want 1", srv.cache.Len())
	}
}

// TestCacheBudgetErrorNotCached trips the event budget and checks the
// failed result is not cached: once the budget is lifted the same key
// runs fresh and succeeds.
func TestCacheBudgetErrorNotCached(t *testing.T) {
	srv := cacheTestServer(serverOpts{Workers: 1, Queue: 1, MaxEvents: 50})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const body = `{"workload":"FwPool","variant":"CacheRW","scale":0.05}`
	resp, _ := postRun(t, ts, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("over-budget status = %d, want 504", resp.StatusCode)
	}
	if srv.cache.Len() != 0 {
		t.Fatal("budget-exceeded result was cached")
	}
	srv.maxEvents = 0
	resp2, _ := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("rerun status = %d, want 200", resp2.StatusCode)
	}
	if h := resp2.Header.Get("X-Micached-Cache"); h != "miss" {
		t.Fatalf("rerun X-Micached-Cache = %q, want miss (error must not poison the key)", h)
	}
}

// TestClientGone499 pins the cancellation bugfix: a client hanging up
// mid-run is a 499 client-gone event — logged at Info, counted apart
// from budget 504s — and the interrupted system still goes back to the
// pool.
func TestClientGone499(t *testing.T) {
	started := make(chan struct{})
	srv := testServer(serverOpts{Workers: 1, Queue: 1})
	srv.runFn = func(sys *core.System, w workloads.Workload, b core.Budgets) (stats.Snapshot, error) {
		close(started)
		<-b.Ctx.Done()
		return stats.Snapshot{}, &core.ErrBudgetExceeded{
			Workload: "FwSoft", Variant: "CacheRW",
			Reason: core.ReasonCanceled, Fired: 10, Cause: b.Ctx.Err(),
		}
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run",
		strings.NewReader(`{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel() // the client hangs up mid-run
	if err := <-errc; err == nil {
		t.Fatal("canceled request did not error client-side")
	}

	// The handler finishes asynchronously after the client is gone.
	deadline := time.After(5 * time.Second)
	for srv.m.clientGone.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("client-gone counter never incremented")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if got := srv.m.timeouts.Load(); got != 0 {
		t.Fatalf("timeouts = %d, want 0 (disconnect must not count as 504)", got)
	}
	if got := srv.m.clientGone.Load(); got != 1 {
		t.Fatalf("clientGone = %d, want 1", got)
	}
	// Interrupted, not broken: the system was re-pooled.
	for srv.pool.Puts() == 0 {
		select {
		case <-deadline:
			t.Fatal("interrupted system never returned to the pool")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestElapsedMSSubMillisecond pins the elapsed_ms fix: a run faster
// than a millisecond reports a fractional value, not a truncated 0
// with lost precision from Microseconds().
func TestElapsedMSSubMillisecond(t *testing.T) {
	srv := testServer(serverOpts{Queue: 4})
	srv.runFn = func(sys *core.System, w workloads.Workload, b core.Budgets) (stats.Snapshot, error) {
		return stats.Snapshot{Cycles: 1}, nil
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, body := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, body)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ElapsedMS <= 0 {
		t.Fatalf("elapsed_ms = %v, want > 0 even for sub-millisecond runs", rr.ElapsedMS)
	}
}
