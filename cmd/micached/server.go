package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// server runs simulation cells from a shared warm SystemPool with
// bounded concurrency and bounded queueing. The zero value is not
// usable; build with newServer.
type server struct {
	cfg  core.Config
	pool *core.SystemPool
	log  *slog.Logger

	// sem holds one slot per concurrent simulation; queueMax bounds
	// how many acquirers may block on it before new arrivals are
	// refused outright.
	sem      chan struct{}
	queueMax int64
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	timeout   time.Duration
	maxEvents uint64
	watchdog  time.Duration
	maxScale  float64

	// runFn is (*core.System).RunBudgeted in production; tests swap it
	// to control timing (backpressure, drain) and failure injection
	// (panic isolation) deterministically.
	runFn func(*core.System, workloads.Workload, core.Budgets) (stats.Snapshot, error)
}

type serverOpts struct {
	Workers   int
	Queue     int
	Timeout   time.Duration
	MaxEvents uint64
	Watchdog  time.Duration
	MaxScale  float64
	Log       *slog.Logger
}

func newServer(cfg core.Config, o serverOpts) *server {
	if o.Log == nil {
		o.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &server{
		cfg:       cfg,
		pool:      core.NewSystemPool(cfg),
		log:       o.Log,
		sem:       make(chan struct{}, o.Workers),
		queueMax:  int64(o.Queue),
		timeout:   o.Timeout,
		maxEvents: o.MaxEvents,
		watchdog:  o.Watchdog,
		maxScale:  o.MaxScale,
		runFn:     (*core.System).RunBudgeted,
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// beginDrain flips the server into shutdown mode: /healthz reports 503
// and new /run requests are refused, while requests already admitted
// (running or queued) proceed to completion.
func (s *server) beginDrain() { s.draining.Store(true) }

// Inflight reports how many admitted runs have not finished.
func (s *server) Inflight() int64 { return s.inflight.Load() }

type runRequest struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Scale    float64 `json:"scale"`
	// Tiles and Topology select a multi-tile NoC system (see
	// core.Config.Topology). Off-default topologies run on a fresh
	// system rather than the shared warm pool, so they pay construction
	// per request; the default (0 / "") keeps the pooled fast path.
	Tiles    int    `json:"tiles,omitempty"`
	Topology string `json:"topology,omitempty"`
	// CellWorkers selects partitioned intra-cell execution (see
	// core.NewSystemWorkers). 0 defaults to 1 (the sequential engine and
	// the warm pool); values above 1 run on a fresh partitioned system,
	// whose results are byte-identical to sequential by contract.
	CellWorkers int `json:"cell_workers,omitempty"`
}

type runResponse struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Scale    float64 `json:"scale"`
	Tiles    int     `json:"tiles,omitempty"`
	Topology string  `json:"topology,omitempty"`
	// CellWorkers echoes the resolved intra-cell worker count the run
	// actually used (1 when the request omitted it).
	CellWorkers int            `json:"cell_workers"`
	ElapsedMS   float64        `json:"elapsed_ms"`
	GVOPS       float64        `json:"gvops"`
	GMRs        float64        `json:"gmrs"`
	Snapshot    stats.Snapshot `json:"snapshot"`
}

type errResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
	Fired  uint64 `json:"events_fired,omitempty"`
	Clock  uint64 `json:"clock,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "server is draining"})
		return
	}

	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad request body: " + err.Error()})
		return
	}
	spec, err := workloads.ByName(req.Workload)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	v, err := core.VariantByLabel(req.Variant)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	if req.Scale == 0 {
		req.Scale = 1.0
	}
	if !(req.Scale > 0) || math.IsInf(req.Scale, 0) || req.Scale > s.maxScale {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("scale must be in (0, %g], got %g", s.maxScale, req.Scale)})
		return
	}
	cellWorkers := req.CellWorkers
	if cellWorkers == 0 {
		cellWorkers = 1
	}
	if cellWorkers < 1 || cellWorkers > core.MaxCellWorkers {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("cell_workers must be in 1..%d, got %d", core.MaxCellWorkers, req.CellWorkers)})
		return
	}
	// An off-default topology reshapes the whole hierarchy, so it cannot
	// reuse pooled systems; validate the derived config now (client
	// error) and build fresh after admission.
	cfg := s.cfg
	topoCustom := req.Tiles > 0 || req.Topology != ""
	if topoCustom {
		if req.Tiles > 0 {
			cfg.Topology.Tiles = req.Tiles
		}
		if req.Topology != "" {
			k, err := noc.ParseKind(req.Topology)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
				return
			}
			cfg.Topology.Kind = k
		}
		if err := cfg.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
			return
		}
	}

	// Admission: take a worker slot if one is free; otherwise wait in
	// the bounded queue. Anything beyond queue capacity is refused NOW
	// — a client retrying against an overloaded server should back
	// off, not stack up goroutines.
	select {
	case s.sem <- struct{}{}:
	default:
		if s.queued.Add(1) > s.queueMax {
			s.queued.Add(-1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errResponse{Error: "server saturated: worker and queue slots full"})
			return
		}
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
		case <-r.Context().Done():
			s.queued.Add(-1)
			writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "canceled while queued"})
			return
		}
	}
	defer func() { <-s.sem }()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// A partitioned run (cell_workers > 1) also builds fresh: the warm
	// pool holds sequential systems, and the two wirings are not
	// interchangeable after construction.
	var sys *core.System
	freshSystem := topoCustom || cellWorkers > 1
	if freshSystem {
		sys, err = core.NewSystemWorkers(cfg, v, cellWorkers)
	} else {
		sys, err = s.pool.Get(v)
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errResponse{Error: err.Error()})
		return
	}

	b := core.Budgets{
		Ctx:              r.Context(),
		MaxEvents:        s.maxEvents,
		Timeout:          s.timeout,
		WatchdogInterval: s.watchdog,
		OnStall: func(si core.StallInfo) {
			s.log.Warn("run stalled", "workload", si.Workload, "variant", si.Variant,
				"fired", si.Fired, "interval", si.Interval)
		},
	}

	start := time.Now()
	snap, runErr, panicked := s.runIsolated(sys, spec.Build(workloads.Scale(req.Scale)), b)
	elapsed := time.Since(start)

	switch {
	case panicked:
		// The system's state is unknown; abandon it to the GC rather
		// than re-pool it. The server itself keeps serving.
		s.log.Error("run panicked", "workload", req.Workload, "variant", req.Variant, "err", runErr)
		writeJSON(w, http.StatusInternalServerError, errResponse{Error: runErr.Error()})
	case runErr == nil:
		if !freshSystem {
			s.pool.Put(sys)
		}
		resp := runResponse{
			Workload:    req.Workload,
			Variant:     req.Variant,
			Scale:       req.Scale,
			CellWorkers: cellWorkers,
			ElapsedMS:   float64(elapsed.Microseconds()) / 1e3,
			GVOPS:       snap.GVOPS(s.cfg.GPUClockMHz),
			GMRs:        snap.GMRs(s.cfg.GPUClockMHz),
			Snapshot:    snap,
		}
		if topoCustom {
			t := cfg.Topology.WithDefaults()
			resp.Tiles = t.Tiles
			resp.Topology = t.Kind.String()
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		var be *core.ErrBudgetExceeded
		var dl *core.ErrDeadlock
		switch {
		case errors.As(runErr, &be):
			// Interrupted, not broken: Put resets the system, and the
			// chaos tests pin that reset-after-interrupt ≡ fresh.
			// Off-default topologies and partitioned systems were never
			// pooled; let the GC take them.
			if !freshSystem {
				s.pool.Put(sys)
			}
			s.log.Warn("run over budget", "workload", req.Workload, "variant", req.Variant,
				"reason", be.Reason, "fired", be.Fired, "elapsed", elapsed)
			writeJSON(w, http.StatusGatewayTimeout, errResponse{
				Error:  runErr.Error(),
				Reason: string(be.Reason),
				Fired:  be.Fired,
				Clock:  uint64(be.Clock),
			})
		case errors.As(runErr, &dl):
			// A deadlock means the model misbehaved; the system's
			// state is not trusted for reuse.
			s.log.Error("run deadlocked", "workload", req.Workload, "variant", req.Variant,
				"clock", dl.Clock, "fired", dl.Fired, "pending", dl.Pending)
			writeJSON(w, http.StatusInternalServerError, errResponse{
				Error: runErr.Error(),
				Fired: dl.Fired,
				Clock: uint64(dl.Clock),
			})
		default:
			writeJSON(w, http.StatusInternalServerError, errResponse{Error: runErr.Error()})
		}
	}
}

// runIsolated runs one cell, converting a panic into an error so one
// bad request cannot take the server down. The caller must not re-pool
// the system when panicked is true.
func (s *server) runIsolated(sys *core.System, w workloads.Workload, b core.Budgets) (snap stats.Snapshot, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("run panicked: %v", p)
			panicked = true
		}
	}()
	snap, err = s.runFn(sys, w, b)
	return snap, err, false
}
