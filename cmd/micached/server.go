package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/persist"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// statusClientClosedRequest is nginx's 499: the client went away before
// the response. The writer is dead, so the status is for the access log
// and the handler's own bookkeeping, not the client.
const statusClientClosedRequest = 499

// server runs simulation cells from a shared warm SystemPool with
// bounded concurrency and bounded queueing. The zero value is not
// usable; build with newServer.
type server struct {
	cfg  core.Config
	pool *core.SystemPool
	log  *slog.Logger

	// cache serves repeat requests from memory: the simulator is
	// deterministic, so the canonical request tuple is a content
	// address for the snapshot. nil = caching disabled.
	cache *resultcache.Cache

	// The persistent tier, attached asynchronously: openStore scans
	// the cache directory in the background and publishes the store
	// (and the breaker guarding it) here when the index is rebuilt.
	// storeDone closes when that settles either way; storeState is the
	// lifecycle for /readyz and /metrics.
	store      atomic.Pointer[persist.Store]
	breaker    atomic.Pointer[resultcache.Breaker]
	storeState atomic.Int32
	storeDone  chan struct{}

	// quar refuses (workload, variant) tuples that keep panicking;
	// wallNS is the EWMA of completed-cell wall time (float64 bits)
	// that Retry-After estimates are derived from.
	quar   *quarantine
	wallNS atomic.Uint64

	// sem holds one slot per concurrent simulation; queueMax bounds
	// how many acquirers may block on it before new arrivals are
	// refused outright.
	sem      chan struct{}
	workers  int
	queueMax int64
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool

	timeout   time.Duration
	maxEvents uint64
	watchdog  time.Duration
	maxScale  float64

	m serverMetrics

	// runFn is (*core.System).RunBudgeted in production; tests swap it
	// to control timing (backpressure, drain) and failure injection
	// (panic isolation, cancellation) deterministically.
	runFn func(*core.System, workloads.Workload, core.Budgets) (stats.Snapshot, error)
	// matrixFn is core.RunMatrixWith in production; tests swap it to
	// drive the SSE stream deterministically.
	matrixFn func(core.Config, []core.Variant, []workloads.Spec, workloads.Scale, core.RunMatrixOpts) ([]core.Result, error)
}

// serverMetrics holds the server-level counters /metrics exposes.
// Queue depth, inflight, and drain state are read live from the
// server's own atomics; everything event-shaped accumulates here.
type serverMetrics struct {
	runRequests    metrics.Counter // POSTs reaching /run
	matrixRequests metrics.Counter // POSTs reaching /matrix
	refused        metrics.Counter // 429: admission refused
	timeouts       metrics.Counter // 504: budget trips
	internalErrors metrics.Counter // 500: panics, deadlocks, build failures
	clientGone     metrics.Counter // 499: client disconnected mid-run
	quarantined    metrics.Counter // 503: refused because the tuple is quarantined
}

type serverOpts struct {
	Workers   int
	Queue     int
	Timeout   time.Duration
	MaxEvents uint64
	Watchdog  time.Duration
	MaxScale  float64
	// CacheEntries bounds the result cache; 0 disables caching (and the
	// X-Micached-Cache header). CacheBytes additionally bounds the
	// accounted snapshot bytes when positive.
	CacheEntries int
	CacheBytes   int64
	// CacheDir enables the persistent tier (requires CacheEntries > 0):
	// completed snapshots are written through to a crash-safe store
	// there and survive restarts. CacheFsync selects its durability
	// policy; StoreFS is the filesystem seam (nil = the real one; tests
	// inject faults through it).
	CacheDir   string
	CacheFsync bool
	StoreFS    faultfs.FS
	// BreakerFailures consecutive store errors trip the disk circuit
	// breaker (default 5); BreakerCooldown is how long it stays open
	// before probing the disk again (default 10s).
	BreakerFailures int
	BreakerCooldown time.Duration
	// QuarantinePanics consecutive panics of one (workload, variant)
	// quarantine that tuple for QuarantineFor (defaults 3, 60s).
	QuarantinePanics int
	QuarantineFor    time.Duration
	Log              *slog.Logger
}

func newServer(cfg core.Config, o serverOpts) *server {
	if o.Log == nil {
		o.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if o.BreakerFailures <= 0 {
		o.BreakerFailures = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 10 * time.Second
	}
	if o.QuarantinePanics <= 0 {
		o.QuarantinePanics = 3
	}
	if o.QuarantineFor <= 0 {
		o.QuarantineFor = time.Minute
	}
	var rc *resultcache.Cache
	if o.CacheEntries > 0 {
		rc = resultcache.New(o.CacheEntries, o.CacheBytes)
	}
	s := &server{
		cfg:       cfg,
		pool:      core.NewSystemPool(cfg),
		log:       o.Log,
		cache:     rc,
		quar:      newQuarantine(o.QuarantinePanics, o.QuarantineFor),
		storeDone: make(chan struct{}),
		sem:       make(chan struct{}, o.Workers),
		workers:   o.Workers,
		queueMax:  int64(o.Queue),
		timeout:   o.Timeout,
		maxEvents: o.MaxEvents,
		watchdog:  o.Watchdog,
		maxScale:  o.MaxScale,
		runFn:     (*core.System).RunBudgeted,
		matrixFn:  core.RunMatrixWith,
	}
	if o.CacheDir != "" && rc != nil {
		s.storeState.Store(storeInitializing)
		go s.openStore(o)
	} else {
		close(s.storeDone)
	}
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/matrix", s.handleMatrix)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// beginDrain flips the server into shutdown mode: /healthz reports 503
// and new /run requests are refused, while requests already admitted
// (running or queued) proceed to completion.
func (s *server) beginDrain() { s.draining.Store(true) }

// Inflight reports how many admitted runs have not finished.
func (s *server) Inflight() int64 { return s.inflight.Load() }

type runRequest struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Scale    float64 `json:"scale"`
	// Tiles and Topology select a multi-tile NoC system (see
	// core.Config.Topology). Off-default topologies run on a fresh
	// system rather than the shared warm pool, so they pay construction
	// per request; the default (0 / "") keeps the pooled fast path.
	Tiles    int    `json:"tiles,omitempty"`
	Topology string `json:"topology,omitempty"`
	// CellWorkers selects partitioned intra-cell execution (see
	// core.NewSystemWorkers). 0 defaults to 1 (the sequential engine and
	// the warm pool); values above 1 run on a fresh partitioned system,
	// whose results are byte-identical to sequential by contract.
	CellWorkers int `json:"cell_workers,omitempty"`
}

type runResponse struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Scale    float64 `json:"scale"`
	Tiles    int     `json:"tiles,omitempty"`
	Topology string  `json:"topology,omitempty"`
	// CellWorkers echoes the resolved intra-cell worker count the run
	// actually used (1 when the request omitted it).
	CellWorkers int            `json:"cell_workers"`
	ElapsedMS   float64        `json:"elapsed_ms"`
	GVOPS       float64        `json:"gvops"`
	GMRs        float64        `json:"gmrs"`
	Snapshot    stats.Snapshot `json:"snapshot"`
}

type errResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
	// Fired and Clock are pointers so a budget trip or deadlock caught
	// at events_fired/clock 0 still serializes its diagnostics
	// ("events_fired":0) instead of silently dropping the fields, while
	// plain request errors omit them entirely.
	Fired *uint64 `json:"events_fired,omitempty"`
	Clock *uint64 `json:"clock,omitempty"`
}

// u64p boxes a diagnostic counter for errResponse.
func u64p(v uint64) *uint64 { return &v }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Cache keys come from core.CellKey — the schema shared with
// micache's -cache-dir store, covering the simulator fingerprint
// (deploy invalidation), the request tuple, and the resolved topology.
// cell_workers is deliberately excluded: partitioned runs are
// byte-identical to sequential by contract (the partition differential
// tests pin it), so every worker count shares one cache line.

// admit reserves a worker slot, waiting in the bounded queue when the
// workers are busy. It reports false after writing the refusal (429) or
// cancellation (503) response; on true the caller owns one sem slot and
// must release it.
func (s *server) admit(w http.ResponseWriter, r *http.Request) bool {
	// Admission: take a worker slot if one is free; otherwise wait in
	// the bounded queue. Anything beyond queue capacity is refused NOW
	// — a client retrying against an overloaded server should back
	// off, not stack up goroutines.
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	if s.queued.Add(1) > s.queueMax {
		s.queued.Add(-1)
		s.m.refused.Inc()
		s.setRetryAfter(w, 0)
		writeJSON(w, http.StatusTooManyRequests, errResponse{Error: "server saturated: worker and queue slots full"})
		return false
	}
	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
		return true
	case <-r.Context().Done():
		s.queued.Add(-1)
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "canceled while queued"})
		return false
	}
}

// errRunAbandoned resolves a flight whose leader bailed before running
// (refused admission, pool failure): waiters see it and retry.
var errRunAbandoned = errors.New("micached: leader abandoned the run before completion")

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "POST only"})
		return
	}
	s.m.runRequests.Inc()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: "server is draining"})
		return
	}

	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad request body: " + err.Error()})
		return
	}
	spec, err := workloads.ByName(req.Workload)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	v, err := core.VariantByLabel(req.Variant)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
		return
	}
	if req.Scale == 0 {
		req.Scale = 1.0
	}
	if !(req.Scale > 0) || math.IsInf(req.Scale, 0) || req.Scale > s.maxScale {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("scale must be in (0, %g], got %g", s.maxScale, req.Scale)})
		return
	}
	cellWorkers := req.CellWorkers
	if cellWorkers == 0 {
		cellWorkers = 1
	}
	if cellWorkers < 1 || cellWorkers > core.MaxCellWorkers {
		writeJSON(w, http.StatusBadRequest, errResponse{
			Error: fmt.Sprintf("cell_workers must be in 1..%d, got %d", core.MaxCellWorkers, req.CellWorkers)})
		return
	}
	// An off-default topology reshapes the whole hierarchy, so it cannot
	// reuse pooled systems; validate the derived config now (client
	// error) and build fresh after admission.
	cfg := s.cfg
	topoCustom := req.Tiles > 0 || req.Topology != ""
	if topoCustom {
		if req.Tiles > 0 {
			cfg.Topology.Tiles = req.Tiles
		}
		if req.Topology != "" {
			k, err := noc.ParseKind(req.Topology)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
				return
			}
			cfg.Topology.Kind = k
		}
		if err := cfg.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
			return
		}
	}

	// A (workload, variant) tuple that keeps panicking is refused
	// before it can burn another worker slot; Retry-After carries the
	// longer of the quarantine remainder and the queue estimate.
	qkey := spec.Name + "/" + v.Label
	if blocked, remaining := s.quar.check(qkey); blocked {
		s.m.quarantined.Inc()
		s.setRetryAfter(w, remaining)
		writeJSON(w, http.StatusServiceUnavailable, errResponse{
			Error: fmt.Sprintf("%s/%s quarantined after repeated panics; retry later", req.Workload, req.Variant)})
		return
	}

	// Cache resolution: a hit is served before any admission or pool
	// traffic; a miss elects this request the key's single-flight
	// leader, so concurrent identical requests wait on this run instead
	// of each burning a worker slot on the same simulation.
	var fl *resultcache.Flight
	key := core.CellKey(cfg, spec.Name, v.Label, req.Scale)
	if s.cache != nil {
		for {
			snap, hit, f, leader := s.cache.Acquire(key)
			if hit {
				s.writeRunResponse(w, req, cfg, topoCustom, cellWorkers, snap, 0, "hit")
				return
			}
			if leader {
				fl = f
				break
			}
			snap, err := f.Wait(r.Context())
			if err == nil {
				s.writeRunResponse(w, req, cfg, topoCustom, cellWorkers, snap, 0, "hit")
				return
			}
			if r.Context().Err() != nil {
				s.m.clientGone.Inc()
				s.log.Info("client disconnected while collapsed on a flight",
					"workload", req.Workload, "variant", req.Variant)
				writeJSON(w, statusClientClosedRequest, errResponse{Error: "client closed request"})
				return
			}
			// The leader failed (budget, panic, abandonment): loop and
			// contend for leadership of a fresh attempt.
		}
	}
	flightDone := false
	finish := func(snap stats.Snapshot, err error) {
		if fl == nil || flightDone {
			return
		}
		flightDone = true
		s.cache.Complete(fl, snap, err)
	}
	// Any early return below (refused admission, build failure) must
	// release the waiters; completed runs overwrite this with the real
	// outcome before the defer fires.
	defer finish(stats.Snapshot{}, errRunAbandoned)

	if !s.admit(w, r) {
		return
	}
	defer func() { <-s.sem }()

	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	// A partitioned run (cell_workers > 1) also builds fresh: the warm
	// pool holds sequential systems, and the two wirings are not
	// interchangeable after construction.
	var sys *core.System
	freshSystem := topoCustom || cellWorkers > 1
	if freshSystem {
		sys, err = core.NewSystemWorkers(cfg, v, cellWorkers)
	} else {
		sys, err = s.pool.Get(v)
	}
	if err != nil {
		s.m.internalErrors.Inc()
		writeJSON(w, http.StatusInternalServerError, errResponse{Error: err.Error()})
		return
	}

	b := core.Budgets{
		Ctx:              r.Context(),
		MaxEvents:        s.maxEvents,
		Timeout:          s.timeout,
		WatchdogInterval: s.watchdog,
		OnStall: func(si core.StallInfo) {
			s.log.Warn("run stalled", "workload", si.Workload, "variant", si.Variant,
				"fired", si.Fired, "interval", si.Interval)
		},
	}

	start := time.Now()
	snap, runErr, panicked := s.runIsolated(sys, spec.Build(workloads.Scale(req.Scale)), b)
	elapsed := time.Since(start)

	switch {
	case panicked:
		// The system's state is unknown; abandon it to the GC rather
		// than re-pool it. The server itself keeps serving — but a
		// tuple that panics repeatedly gets quarantined so it stops
		// costing worker slots.
		finish(stats.Snapshot{}, runErr)
		s.m.internalErrors.Inc()
		if s.quar.recordPanic(qkey) {
			s.log.Error("variant quarantined after repeated panics",
				"workload", req.Workload, "variant", req.Variant)
		}
		s.log.Error("run panicked", "workload", req.Workload, "variant", req.Variant, "err", runErr)
		writeJSON(w, http.StatusInternalServerError, errResponse{Error: runErr.Error()})
	case runErr == nil:
		if !freshSystem {
			s.pool.Put(sys)
		}
		s.quar.recordHealthy(qkey)
		s.observeWall(elapsed)
		finish(snap, nil)
		s.writeRunResponse(w, req, cfg, topoCustom, cellWorkers, snap, elapsed, "miss")
	default:
		finish(stats.Snapshot{}, runErr)
		var be *core.ErrBudgetExceeded
		var dl *core.ErrDeadlock
		switch {
		case errors.As(runErr, &be):
			// Interrupted, not broken: Put resets the system, and the
			// chaos tests pin that reset-after-interrupt ≡ fresh.
			// Off-default topologies and partitioned systems were never
			// pooled; let the GC take them.
			if !freshSystem {
				s.pool.Put(sys)
			}
			if errors.Is(runErr, context.Canceled) {
				// Budgets.Ctx is the request context, so this is the
				// client hanging up mid-run — routine, not a budget
				// problem. The writer is dead; the 499 is for the
				// access log and the metrics, not the client.
				s.m.clientGone.Inc()
				s.log.Info("client disconnected mid-run", "workload", req.Workload,
					"variant", req.Variant, "fired", be.Fired, "elapsed", elapsed)
				writeJSON(w, statusClientClosedRequest, errResponse{
					Error:  "client closed request",
					Reason: string(be.Reason),
					Fired:  u64p(be.Fired),
					Clock:  u64p(uint64(be.Clock)),
				})
				return
			}
			s.m.timeouts.Inc()
			s.log.Warn("run over budget", "workload", req.Workload, "variant", req.Variant,
				"reason", be.Reason, "fired", be.Fired, "elapsed", elapsed)
			writeJSON(w, http.StatusGatewayTimeout, errResponse{
				Error:  runErr.Error(),
				Reason: string(be.Reason),
				Fired:  u64p(be.Fired),
				Clock:  u64p(uint64(be.Clock)),
			})
		case errors.As(runErr, &dl):
			// A deadlock means the model misbehaved; the system's
			// state is not trusted for reuse.
			s.m.internalErrors.Inc()
			s.log.Error("run deadlocked", "workload", req.Workload, "variant", req.Variant,
				"clock", dl.Clock, "fired", dl.Fired, "pending", dl.Pending)
			writeJSON(w, http.StatusInternalServerError, errResponse{
				Error: runErr.Error(),
				Fired: u64p(dl.Fired),
				Clock: u64p(uint64(dl.Clock)),
			})
		default:
			s.m.internalErrors.Inc()
			writeJSON(w, http.StatusInternalServerError, errResponse{Error: runErr.Error()})
		}
	}
}

// writeRunResponse renders a successful /run result. source is "hit"
// or "miss"; the X-Micached-Cache header is only sent when caching is
// enabled, so its presence always means the cache was consulted.
func (s *server) writeRunResponse(w http.ResponseWriter, req runRequest, cfg core.Config,
	topoCustom bool, cellWorkers int, snap stats.Snapshot, elapsed time.Duration, source string) {
	if s.cache != nil {
		w.Header().Set("X-Micached-Cache", source)
	}
	resp := runResponse{
		Workload:    req.Workload,
		Variant:     req.Variant,
		Scale:       req.Scale,
		CellWorkers: cellWorkers,
		ElapsedMS:   elapsed.Seconds() * 1e3,
		GVOPS:       snap.GVOPS(s.cfg.GPUClockMHz),
		GMRs:        snap.GMRs(s.cfg.GPUClockMHz),
		Snapshot:    snap,
	}
	if topoCustom {
		t := cfg.Topology.WithDefaults()
		resp.Tiles = t.Tiles
		resp.Topology = t.Kind.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

// runIsolated runs one cell, converting a panic into an error so one
// bad request cannot take the server down. The caller must not re-pool
// the system when panicked is true.
func (s *server) runIsolated(sys *core.System, w workloads.Workload, b core.Budgets) (snap stats.Snapshot, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("run panicked: %v", p)
			panicked = true
		}
	}()
	snap, err = s.runFn(sys, w, b)
	return snap, err, false
}
