package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/resultcache"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// diskTestServer builds a server with the persistent tier on and waits
// for the background index rebuild, so tests see the attached store.
func diskTestServer(t *testing.T, opts serverOpts) *server {
	t.Helper()
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 64
	}
	srv := testServer(opts)
	<-srv.storeDone
	return srv
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("bad JSON from %s: %v\n%s", url, err, buf.Bytes())
	}
	return resp, m
}

// TestWarmRestartServesFromDisk is the tentpole end to end: a result
// computed by one server process is served as a cache hit by the next
// process sharing the cache directory, without touching the pool, and
// byte-identical to the original.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`

	srvA := diskTestServer(t, serverOpts{Queue: 4, CacheDir: dir})
	tsA := httptest.NewServer(srvA.routes())
	respA, bodyA := postRun(t, tsA, body)
	if respA.StatusCode != http.StatusOK || respA.Header.Get("X-Micached-Cache") != "miss" {
		t.Fatalf("first run = %d cache=%q (%s)", respA.StatusCode, respA.Header.Get("X-Micached-Cache"), bodyA)
	}
	tsA.Close()
	if err := srvA.closeStore(); err != nil {
		t.Fatalf("closeStore: %v", err)
	}

	// "Restart": a fresh server over the same directory.
	srvB := diskTestServer(t, serverOpts{Queue: 4, CacheDir: dir})
	tsB := httptest.NewServer(srvB.routes())
	defer tsB.Close()
	respB, bodyB := postRun(t, tsB, body)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("restarted run = %d (%s)", respB.StatusCode, bodyB)
	}
	if h := respB.Header.Get("X-Micached-Cache"); h != "hit" {
		t.Fatalf("restarted X-Micached-Cache = %q, want hit", h)
	}
	if g := srvB.pool.Gets(); g != 0 {
		t.Fatalf("disk hit touched the pool: gets = %d", g)
	}

	var rrA, rrB runResponse
	if err := json.Unmarshal(bodyA, &rrA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyB, &rrB); err != nil {
		t.Fatal(err)
	}
	if !rrA.Snapshot.Equal(rrB.Snapshot) {
		t.Fatalf("snapshot changed across restart:\nA: %+v\nB: %+v", rrA.Snapshot, rrB.Snapshot)
	}

	// And byte-identical to a cache-off server's fresh run.
	srvOff := testServer(serverOpts{Queue: 4})
	tsOff := httptest.NewServer(srvOff.routes())
	defer tsOff.Close()
	respOff, bodyOff := postRun(t, tsOff, body)
	if respOff.StatusCode != http.StatusOK {
		t.Fatalf("cache-off run = %d (%s)", respOff.StatusCode, bodyOff)
	}
	var rrOff runResponse
	if err := json.Unmarshal(bodyOff, &rrOff); err != nil {
		t.Fatal(err)
	}
	if !rrB.Snapshot.Equal(rrOff.Snapshot) {
		t.Fatalf("disk-served snapshot differs from cache-off run:\ndisk: %+v\noff:  %+v", rrB.Snapshot, rrOff.Snapshot)
	}
}

// TestCorruptEntryResimulatedNotServed: bit-rot the on-disk snapshot
// between restarts; the next server must quarantine it and re-simulate
// rather than serve garbage or crash.
func TestCorruptEntryResimulatedNotServed(t *testing.T) {
	dir := t.TempDir()
	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`

	srvA := diskTestServer(t, serverOpts{Queue: 4, CacheDir: dir})
	tsA := httptest.NewServer(srvA.routes())
	_, bodyA := postRun(t, tsA, body)
	tsA.Close()
	if err := srvA.closeStore(); err != nil {
		t.Fatal(err)
	}

	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files = %v (err %v), want exactly 1", snaps, err)
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	srvB := diskTestServer(t, serverOpts{Queue: 4, CacheDir: dir})
	tsB := httptest.NewServer(srvB.routes())
	defer tsB.Close()
	respB, bodyB := postRun(t, tsB, body)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("run after corruption = %d (%s)", respB.StatusCode, bodyB)
	}
	if h := respB.Header.Get("X-Micached-Cache"); h != "miss" {
		t.Fatalf("corrupt entry served as %q, want miss (re-simulated)", h)
	}
	var rrA, rrB runResponse
	if err := json.Unmarshal(bodyA, &rrA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bodyB, &rrB); err != nil {
		t.Fatal(err)
	}
	if !rrA.Snapshot.Equal(rrB.Snapshot) {
		t.Fatal("re-simulated snapshot differs from the original")
	}
	if st := srvB.store.Load(); st == nil || st.Counters().Corrupt == 0 {
		t.Fatal("corruption was not counted")
	}
}

// TestBreakerTripsToMemoryOnlyAndRecovers drives the disk failure path
// end to end: injected write errors trip the breaker, requests keep
// succeeding memory-only with zero store traffic, and after the
// cooldown a probe re-attaches the healed disk.
func TestBreakerTripsToMemoryOnlyAndRecovers(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	inj.Inject(faultfs.Rule{Op: faultfs.OpWrite, Err: errors.New("disk gone"), FlipBit: -1, Times: 100})
	srv := diskTestServer(t, serverOpts{
		Queue: 4, CacheDir: t.TempDir(), StoreFS: inj,
		BreakerFailures: 2, BreakerCooldown: 200 * time.Millisecond,
	})
	srv.runFn = func(_ *core.System, _ workloads.Workload, _ core.Budgets) (stats.Snapshot, error) {
		return stats.Snapshot{Cycles: 1234, VectorOps: 8, GPUMemRequests: 4}, nil
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	// Two failing write-throughs trip the breaker; both requests still 200.
	for i := 0; i < 2; i++ {
		resp, body := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.0`+strconv.Itoa(i+1)+`}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d during disk failure = %d (%s)", i, resp.StatusCode, body)
		}
	}
	br := srv.breaker.Load()
	if br.State() != resultcache.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", br.State())
	}

	// /readyz keeps answering 200 but names the degraded subsystem.
	resp, ready := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz during degradation = %d", resp.StatusCode)
	}
	if s, _ := ready["status"].(string); s != "degraded" {
		t.Fatalf("/readyz status = %v, want degraded\n%v", ready["status"], ready)
	}
	found := false
	if list, ok := ready["degraded"].([]any); ok {
		for _, d := range list {
			if d == "disk-breaker-open" {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("/readyz degraded list missing disk-breaker-open: %v", ready)
	}

	// Open breaker = memory-only: no store traffic for new requests.
	creates := inj.OpCount(faultfs.OpCreate)
	resp3, body3 := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.03}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("memory-only request = %d (%s)", resp3.StatusCode, body3)
	}
	if c := inj.OpCount(faultfs.OpCreate); c != creates {
		t.Fatalf("open breaker let a write through: creates %d -> %d", creates, c)
	}

	// Disk heals; after the cooldown the next write-through is the
	// probe that closes the breaker, and entries reach disk again.
	inj.Reset()
	time.Sleep(250 * time.Millisecond)
	resp4, body4 := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.04}`)
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request = %d (%s)", resp4.StatusCode, body4)
	}
	if br.State() != resultcache.BreakerClosed {
		t.Fatalf("breaker state after healed probe = %v, want closed", br.State())
	}
	if st := srv.store.Load(); st.Len() == 0 {
		t.Fatal("healed store holds no entries")
	}
	if br.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", br.Trips())
	}
}

// TestReadyzLifecycle holds the startup directory scan at a barrier to
// observe the initializing state deterministically, then releases it
// and watches readiness settle; draining flips it back to 503.
func TestReadyzLifecycle(t *testing.T) {
	barrier := make(chan struct{})
	inj := faultfs.NewInjector(nil)
	inj.Inject(faultfs.Rule{Op: faultfs.OpReadDir, Barrier: barrier, FlipBit: -1})

	opts := serverOpts{Queue: 4, CacheDir: t.TempDir(), StoreFS: inj, CacheEntries: 64}
	srv := testServer(opts) // not diskTestServer: must observe mid-open
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, ready := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while index rebuilding = %d, want 503\n%v", resp.StatusCode, ready)
	}
	if s, _ := ready["status"].(string); s != "initializing" {
		t.Fatalf("/readyz status = %v, want initializing", ready["status"])
	}
	// Liveness is unaffected by readiness: /healthz stays 200.
	if hresp, _ := getJSON(t, ts.URL+"/healthz"); hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while initializing = %d, want 200", hresp.StatusCode)
	}

	close(barrier)
	<-srv.storeDone
	resp, ready = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after open = %d\n%v", resp.StatusCode, ready)
	}
	if s, _ := ready["status"].(string); s != "ok" {
		t.Fatalf("/readyz status = %v, want ok", ready["status"])
	}

	srv.beginDrain()
	resp, ready = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", resp.StatusCode)
	}
	if s, _ := ready["status"].(string); s != "draining" {
		t.Fatalf("/readyz status = %v, want draining", ready["status"])
	}
}

// TestOpenFailureDegradesToMemoryOnly: an unreadable cache directory
// must not stop the server — it serves memory-only and /readyz names
// the loss.
func TestOpenFailureDegradesToMemoryOnly(t *testing.T) {
	inj := faultfs.NewInjector(nil)
	inj.Inject(faultfs.Rule{Op: faultfs.OpReadDir, Err: errors.New("mount lost"), FlipBit: -1})
	srv := diskTestServer(t, serverOpts{Queue: 4, CacheDir: t.TempDir(), StoreFS: inj})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	if got := srv.storeState.Load(); got != storeFailed {
		t.Fatalf("storeState = %d, want storeFailed", got)
	}
	resp, ready := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 (serving memory-only)", resp.StatusCode)
	}
	if s, _ := ready["status"].(string); s != "degraded" {
		t.Fatalf("/readyz status = %v, want degraded", ready["status"])
	}
	r, body := postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("memory-only run = %d (%s)", r.StatusCode, body)
	}
}

// TestQuarantineAfterRepeatedPanics: a deterministically-panicking
// tuple gets 500s until the threshold, then 503 + Retry-After without
// burning a worker slot; once healed, the post-expiry probe clears it.
func TestQuarantineAfterRepeatedPanics(t *testing.T) {
	srv := cacheTestServer(serverOpts{
		Queue: 4, QuarantinePanics: 2, QuarantineFor: 300 * time.Millisecond,
	})
	poison := true
	srv.runFn = func(_ *core.System, _ workloads.Workload, _ core.Budgets) (stats.Snapshot, error) {
		if poison {
			panic("model corrupted")
		}
		return stats.Snapshot{Cycles: 7, VectorOps: 2, GPUMemRequests: 1}, nil
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	const body = `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`
	for i := 0; i < 2; i++ {
		resp, _ := postRun(t, ts, body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("panic %d = %d, want 500", i, resp.StatusCode)
		}
	}

	gets := srv.pool.Gets()
	resp, rbody := postRun(t, ts, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quarantined request = %d (%s), want 503", resp.StatusCode, rbody)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("quarantine Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(rbody), "quarantined") {
		t.Fatalf("503 body does not explain the quarantine: %s", rbody)
	}
	// The refusal never reached admission or the pool.
	if g := srv.pool.Gets(); g != gets {
		t.Fatalf("quarantined request touched the pool: gets %d -> %d", gets, g)
	}
	if srv.m.quarantined.Load() != 1 {
		t.Fatalf("quarantine refusals = %d, want 1", srv.m.quarantined.Load())
	}

	// Other tuples are unaffected.
	poison = false
	respOK, bodyOK := postRun(t, ts, `{"workload":"FwAct","variant":"CacheRW","scale":0.05}`)
	if respOK.StatusCode != http.StatusOK {
		t.Fatalf("unrelated tuple = %d (%s)", respOK.StatusCode, bodyOK)
	}

	// /readyz names the quarantine while it lasts.
	rresp, ready := getJSON(t, ts.URL+"/readyz")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d", rresp.StatusCode)
	}
	listed := false
	if list, ok := ready["degraded"].([]any); ok {
		for _, d := range list {
			if d == "variants-quarantined" {
				listed = true
			}
		}
	}
	if !listed {
		t.Fatalf("/readyz degraded list missing variants-quarantined: %v", ready)
	}

	// After the window, the tuple is probed again; healed → 200 and
	// the quarantine is fully cleared.
	time.Sleep(350 * time.Millisecond)
	respProbe, bodyProbe := postRun(t, ts, body)
	if respProbe.StatusCode != http.StatusOK {
		t.Fatalf("post-expiry probe = %d (%s)", respProbe.StatusCode, bodyProbe)
	}
	if n := srv.quar.count(); n != 0 {
		t.Fatalf("quarantined tuples after healthy probe = %d, want 0", n)
	}
}

// TestRetryAfterScalesWithQueue pins the satellite: the header is
// derived from queue depth and the cell wall-time moving average, with
// a floor of one second.
func TestRetryAfterScalesWithQueue(t *testing.T) {
	srv := testServer(serverOpts{Workers: 2, Queue: 4})

	if got := srv.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle Retry-After = %d, want floor 1", got)
	}
	// 8 queued cells at ~2s each across 2 workers ≈ 8s of backlog.
	for i := 0; i < 32; i++ {
		srv.observeWall(2 * time.Second)
	}
	srv.queued.Store(8)
	got := srv.retryAfterSeconds()
	if got < 6 || got > 10 {
		t.Fatalf("Retry-After with 8×2s queue over 2 workers = %d, want ~8", got)
	}
	srv.queued.Store(10_000)
	if got := srv.retryAfterSeconds(); got != 60 {
		t.Fatalf("Retry-After cap = %d, want 60", got)
	}
	srv.queued.Store(0)
}

// TestSaturated429CarriesComputedRetryAfter: the 429 path sends the
// computed header, not the old hardcoded "1".
func TestSaturated429CarriesComputedRetryAfter(t *testing.T) {
	srv := testServer(serverOpts{Workers: 1, Queue: 0})
	block := make(chan struct{})
	srv.runFn = func(_ *core.System, _ workloads.Workload, _ core.Budgets) (stats.Snapshot, error) {
		<-block
		return stats.Snapshot{Cycles: 1}, nil
	}
	for i := 0; i < 16; i++ {
		srv.observeWall(5 * time.Second)
	}
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	started := make(chan struct{})
	go func() {
		close(started)
		postRun(t, ts, `{"workload":"FwSoft","variant":"CacheRW","scale":0.05}`)
	}()
	<-started
	// Wait until the first request owns the only worker slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the worker slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postRun(t, ts, `{"workload":"FwAct","variant":"CacheRW","scale":0.05}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request = %d (%s), want 429", resp.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	close(block)
}

// TestMetricsExposePersistAndBreaker: the new families appear (with
// zero values) as soon as a cache directory is configured — the CI
// crash smoke greps micached_persist_corrupt_total.
func TestMetricsExposePersistAndBreaker(t *testing.T) {
	srv := diskTestServer(t, serverOpts{Queue: 4, CacheDir: t.TempDir()})
	ts := httptest.NewServer(srv.routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"micached_disk_hits_total 0",
		"micached_disk_misses_total",
		"micached_disk_errors_total 0",
		"micached_persist_corrupt_total 0",
		"micached_persist_writes_total 0",
		"micached_persist_write_errors_total 0",
		"micached_persist_read_errors_total 0",
		"micached_persist_entries 0",
		"micached_breaker_state 0",
		"micached_breaker_trips_total 0",
		"micached_quarantined_variants 0",
		"micached_quarantine_refused_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Memory-only servers must not emit the disk families at all.
	srvOff := cacheTestServer(serverOpts{Queue: 4})
	tsOff := httptest.NewServer(srvOff.routes())
	defer tsOff.Close()
	respOff, err := http.Get(tsOff.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer respOff.Body.Close()
	buf.Reset()
	if _, err := buf.ReadFrom(respOff.Body); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "micached_persist_") {
		t.Error("memory-only /metrics exposes persist families")
	}
}

// TestMatrixSharesPersistentStore: cells computed by /matrix land in
// the disk store under the shared CellKey schema, so a later /run (or
// another binary) hits them.
func TestMatrixSharesPersistentStore(t *testing.T) {
	dir := t.TempDir()
	srv := diskTestServer(t, serverOpts{Queue: 4, CacheDir: dir})
	ts := httptest.NewServer(srv.routes())
	resp, err := http.Post(ts.URL+"/matrix", "application/json",
		strings.NewReader(`{"scale":0.05,"workloads":["FwSoft"],"variants":["CacheRW"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	if _, err := sink.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	if err := srv.closeStore(); err != nil {
		t.Fatal(err)
	}

	st := srv.store.Load()
	key := core.CellKey(testServerConfig(), "FwSoft", "CacheRW", 0.05)
	found := false
	for _, k := range st.Keys() {
		if k == key {
			found = true
		}
	}
	if !found {
		t.Fatalf("matrix cell not persisted under the shared key %q; store holds %v", key, st.Keys())
	}
}
