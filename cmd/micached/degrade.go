package main

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/persist"
	"repro/internal/resultcache"
)

// Disk-store lifecycle, tracked so /readyz can distinguish "still
// rebuilding the index" from "tried and failed" from "not configured".
const (
	storeNone         int32 = iota // no MICACHED_CACHE_DIR; memory-only by choice
	storeInitializing              // Open is scanning the directory
	storeReady                     // attached behind the breaker
	storeFailed                    // Open failed; memory-only by necessity
)

// openStore opens the persistent tier in the background so the server
// can accept traffic (memory-only) while a large cache directory is
// still being scanned. On success the store is attached to the result
// cache behind a circuit breaker; on failure the server logs once and
// stays memory-only — a bad disk never stops the binary from serving.
func (s *server) openStore(o serverOpts) {
	defer close(s.storeDone)
	st, err := persist.Open(o.CacheDir, persist.Options{FS: o.StoreFS, Fsync: o.CacheFsync})
	if err != nil {
		s.storeState.Store(storeFailed)
		s.log.Error("disk cache unavailable; serving memory-only", "dir", o.CacheDir, "err", err)
		return
	}
	br := resultcache.NewBreaker(st, o.BreakerFailures, o.BreakerCooldown)
	s.store.Store(st)
	s.breaker.Store(br)
	s.cache.SetStore(br)
	s.storeState.Store(storeReady)
	c := st.Counters()
	s.log.Info("disk cache ready", "dir", o.CacheDir, "entries", st.Len(),
		"corrupt", c.Corrupt, "readErrors", c.ReadErrors)
}

// closeStore waits for any in-flight Open and flushes the store (a
// directory fsync under the always policy). Called after the HTTP
// drain so no request is still writing through.
func (s *server) closeStore() error {
	<-s.storeDone
	if st := s.store.Load(); st != nil {
		return st.Close()
	}
	return nil
}

// handleReadyz is readiness, as opposed to /healthz's liveness: a 503
// here means "do not route new traffic to me" (draining, or the disk
// index is still rebuilding and a restart storm would stampede the
// backends), while a 200 may still carry a non-empty "degraded" list
// naming subsystems that are limping — serving, but worth alerting on.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readiness struct {
		Status   string   `json:"status"`
		Degraded []string `json:"degraded,omitempty"`
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, readiness{Status: "draining"})
		return
	}
	if s.storeState.Load() == storeInitializing {
		writeJSON(w, http.StatusServiceUnavailable, readiness{
			Status: "initializing", Degraded: []string{"disk-index-rebuilding"}})
		return
	}
	var degraded []string
	if s.storeState.Load() == storeFailed {
		degraded = append(degraded, "disk-store-unavailable")
	}
	if br := s.breaker.Load(); br != nil && br.State() != resultcache.BreakerClosed {
		degraded = append(degraded, "disk-breaker-open")
	}
	if s.queueMax > 0 && s.queued.Load() >= s.queueMax {
		degraded = append(degraded, "admission-saturated")
	}
	if s.quar.count() > 0 {
		degraded = append(degraded, "variants-quarantined")
	}
	status := "ok"
	if len(degraded) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, readiness{Status: status, Degraded: degraded})
}

// observeWall folds one completed simulation's wall time into an
// exponentially-weighted moving average (α = 0.2 — a few requests of
// memory, so a single outlier cell does not dominate Retry-After).
func (s *server) observeWall(d time.Duration) {
	const alpha = 0.2
	for {
		old := s.wallNS.Load()
		var next float64
		if old == 0 {
			next = float64(d.Nanoseconds())
		} else {
			next = (1-alpha)*math.Float64frombits(old) + alpha*float64(d.Nanoseconds())
		}
		if s.wallNS.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// retryAfterSeconds estimates when retrying is worthwhile: the current
// queue drained at the moving-average cell wall time across the worker
// pool. Floor 1 (the header is integer seconds and "now" is never the
// right advice for a saturated server), capped at 60 so a burst never
// tells clients to go away for minutes.
func (s *server) retryAfterSeconds() int64 {
	avg := math.Float64frombits(s.wallNS.Load())
	if avg <= 0 {
		avg = float64(time.Second.Nanoseconds())
	}
	depth := float64(s.queued.Load())
	secs := int64(math.Ceil(depth * avg / float64(s.workers) / float64(time.Second.Nanoseconds())))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// setRetryAfter writes the computed Retry-After header, raising it to
// atLeast when a longer wait is already known (quarantine expiry).
func (s *server) setRetryAfter(w http.ResponseWriter, atLeast time.Duration) {
	secs := s.retryAfterSeconds()
	if ql := int64(math.Ceil(atLeast.Seconds())); ql > secs {
		secs = ql
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// quarantine tracks per-(workload,variant) panic streaks. A cell that
// panics repeatedly is near-certainly deterministic poison — the same
// request will panic again, burning a worker slot and an isolation
// recovery each time — so after threshold consecutive panics the tuple
// is quarantined: refused with 503 + Retry-After until the window
// expires. One healthy completion clears the streak entirely; an
// expired quarantine re-arms at one-strike so a still-broken cell is
// re-quarantined by its next panic instead of earning a fresh streak.
type quarantine struct {
	threshold int
	window    time.Duration

	mu      sync.Mutex
	entries map[string]*quarEntry
}

type quarEntry struct {
	panics int
	until  time.Time // zero = counting, not quarantined
}

func newQuarantine(threshold int, window time.Duration) *quarantine {
	if threshold < 1 {
		threshold = 1
	}
	return &quarantine{threshold: threshold, window: window, entries: make(map[string]*quarEntry)}
}

// check reports whether key is quarantined and, if so, how long
// remains. An expired quarantine re-arms the entry at one strike
// below the threshold and admits the request as a probe.
func (q *quarantine) check(key string) (blocked bool, remaining time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.entries[key]
	if !ok || e.until.IsZero() {
		return false, 0
	}
	if rem := time.Until(e.until); rem > 0 {
		return true, rem
	}
	e.until = time.Time{}
	e.panics = q.threshold - 1
	return false, 0
}

// recordPanic counts one panic; reaching the threshold starts the
// quarantine window and reports true (the caller logs it once).
func (q *quarantine) recordPanic(key string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.entries[key]
	if e == nil {
		e = &quarEntry{}
		q.entries[key] = e
	}
	e.panics++
	if e.panics >= q.threshold && e.until.IsZero() {
		e.until = time.Now().Add(q.window)
		return true
	}
	return false
}

// recordHealthy clears the streak: the cell completed, so earlier
// panics were not deterministic poison.
func (q *quarantine) recordHealthy(key string) {
	q.mu.Lock()
	delete(q.entries, key)
	q.mu.Unlock()
}

// count reports how many tuples are currently quarantined.
func (q *quarantine) count() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, e := range q.entries {
		if !e.until.IsZero() && time.Until(e.until) > 0 {
			n++
		}
	}
	return n
}
