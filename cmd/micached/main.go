// Command micached serves the simulator over HTTP: POST a (workload,
// policy, scale) cell to /run and get the statistics snapshot back as
// JSON, or POST a sweep selection to /matrix and watch it stream
// per-cell progress as server-sent events. It exists for sweeping
// experiments from scripts and notebooks without paying a process
// start (and system construction) per cell — a warm SystemPool is
// shared across requests.
//
// Results are cached: the simulator is deterministic, so the canonical
// (workload, variant, scale, topology) tuple content-addresses its
// snapshot, and repeated requests are served from an LRU without
// simulating. Concurrent identical misses collapse into one run
// (single-flight). The X-Micached-Cache response header reports
// hit/miss, and GET /metrics exposes the server, cache, and pool
// counters in Prometheus text format.
//
// Every run is bounded: requests carry the server's wall-clock timeout,
// event budget, and livelock watchdog (see internal/core.Budgets), so a
// wedged or runaway cell returns a structured 504 instead of pinning a
// worker forever. Admission is bounded too: at most MICACHED_WORKERS
// cells simulate concurrently, at most MICACHED_QUEUE more may wait,
// and everything beyond that is refused with 429 immediately. A client
// that disconnects mid-run stops its simulation cooperatively and is
// logged (and counted) as a 499, not an error.
//
// Configuration is environment-only (one binary, no flags):
//
//	MICACHED_ADDR           listen address          (default :8080)
//	MICACHED_WORKERS        concurrent simulations  (default GOMAXPROCS)
//	MICACHED_QUEUE          admission queue depth   (default 64)
//	MICACHED_TIMEOUT        per-run wall budget     (default 30s, 0 = none)
//	MICACHED_MAX_EVENTS     per-run event budget    (default 0 = none)
//	MICACHED_WATCHDOG       stall detector interval (default 5s, 0 = off)
//	MICACHED_MAX_SCALE      largest accepted scale  (default 1.0)
//	MICACHED_CUS            compute-unit override   (default Table 1's 64)
//	MICACHED_CACHE_ENTRIES  result-cache capacity   (default 512, 0 = off)
//	MICACHED_CACHE_BYTES    result-cache byte bound (default 64MiB, 0 = none)
//
// Persistence and degradation (see the README's "Persistence &
// degraded modes" section):
//
//	MICACHED_CACHE_DIR         snapshot store directory (default "" = memory-only)
//	MICACHED_CACHE_FSYNC       durability: always|never (default always)
//	MICACHED_BREAKER_FAILURES  disk errors that trip the breaker (default 5)
//	MICACHED_BREAKER_COOLDOWN  open time before a probe     (default 10s)
//	MICACHED_QUARANTINE_PANICS panics that quarantine a cell (default 3)
//	MICACHED_QUARANTINE_FOR    quarantine window            (default 60s)
//
// When MICACHED_CACHE_DIR is set, completed snapshots are written
// through to a crash-safe content-addressed store and served across
// restarts; corrupt or torn entries are quarantined at startup, never
// served. A failing disk trips a circuit breaker into memory-only mode
// (probing to recover); /readyz reports such degraded states while
// /healthz stays pure liveness.
//
// SIGTERM or SIGINT drains gracefully: /healthz and /readyz flip to
// 503 so load balancers stop routing, in-flight runs finish (bounded
// by their own budgets), queued requests complete, the disk store is
// flushed, and only then does the process exit.
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "micached:", err)
		os.Exit(1)
	}
}

func run() error {
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	cfg := core.DefaultConfig()
	cus, err := envInt("MICACHED_CUS", 0)
	if err != nil {
		return err
	}
	if cus > 0 {
		cfg.GPU.CUs = cus
	}

	workers, err := envInt("MICACHED_WORKERS", runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	queue, err := envInt("MICACHED_QUEUE", 64)
	if err != nil {
		return err
	}
	timeout, err := envDuration("MICACHED_TIMEOUT", 30*time.Second)
	if err != nil {
		return err
	}
	maxEvents, err := envUint("MICACHED_MAX_EVENTS", 0)
	if err != nil {
		return err
	}
	watchdog, err := envDuration("MICACHED_WATCHDOG", 5*time.Second)
	if err != nil {
		return err
	}
	maxScale, err := envFloat("MICACHED_MAX_SCALE", 1.0)
	if err != nil {
		return err
	}
	cacheEntries, err := envInt("MICACHED_CACHE_ENTRIES", 512)
	if err != nil {
		return err
	}
	cacheBytes, err := envInt("MICACHED_CACHE_BYTES", 64<<20)
	if err != nil {
		return err
	}
	cacheDir := os.Getenv("MICACHED_CACHE_DIR")
	fsyncPolicy := os.Getenv("MICACHED_CACHE_FSYNC")
	if fsyncPolicy == "" {
		fsyncPolicy = "always"
	}
	if fsyncPolicy != "always" && fsyncPolicy != "never" {
		return fmt.Errorf("MICACHED_CACHE_FSYNC=%q: must be always or never", fsyncPolicy)
	}
	breakerFailures, err := envInt("MICACHED_BREAKER_FAILURES", 5)
	if err != nil {
		return err
	}
	breakerCooldown, err := envDuration("MICACHED_BREAKER_COOLDOWN", 10*time.Second)
	if err != nil {
		return err
	}
	quarPanics, err := envInt("MICACHED_QUARANTINE_PANICS", 3)
	if err != nil {
		return err
	}
	quarFor, err := envDuration("MICACHED_QUARANTINE_FOR", time.Minute)
	if err != nil {
		return err
	}
	if workers < 1 || queue < 0 {
		return fmt.Errorf("MICACHED_WORKERS must be >= 1 and MICACHED_QUEUE >= 0")
	}
	if !(maxScale > 0) || math.IsInf(maxScale, 0) {
		return fmt.Errorf("MICACHED_MAX_SCALE must be positive and finite")
	}
	if cacheEntries < 0 || cacheBytes < 0 {
		return fmt.Errorf("MICACHED_CACHE_ENTRIES and MICACHED_CACHE_BYTES must be >= 0")
	}
	if breakerFailures < 1 || quarPanics < 1 {
		return fmt.Errorf("MICACHED_BREAKER_FAILURES and MICACHED_QUARANTINE_PANICS must be >= 1")
	}
	if cacheDir != "" && cacheEntries == 0 {
		return fmt.Errorf("MICACHED_CACHE_DIR requires MICACHED_CACHE_ENTRIES > 0")
	}

	srv := newServer(cfg, serverOpts{
		Workers:          workers,
		Queue:            queue,
		Timeout:          timeout,
		MaxEvents:        maxEvents,
		Watchdog:         watchdog,
		MaxScale:         maxScale,
		CacheEntries:     cacheEntries,
		CacheBytes:       int64(cacheBytes),
		CacheDir:         cacheDir,
		CacheFsync:       fsyncPolicy == "always",
		BreakerFailures:  breakerFailures,
		BreakerCooldown:  breakerCooldown,
		QuarantinePanics: quarPanics,
		QuarantineFor:    quarFor,
		Log:              logger,
	})

	addr := os.Getenv("MICACHED_ADDR")
	if addr == "" {
		addr = ":8080"
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("micached listening", "addr", addr, "workers", workers, "queue", queue,
		"timeout", timeout, "maxEvents", maxEvents, "watchdog", watchdog,
		"cacheEntries", cacheEntries, "cacheBytes", cacheBytes,
		"cacheDir", cacheDir, "fsync", fsyncPolicy)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain: refuse new work, let in-flight and queued runs finish.
	// Their own budgets bound how long that can take; the shutdown
	// context is a final backstop above the largest of them.
	stop() // a second signal kills the process the default way
	srv.beginDrain()
	logger.Info("draining", "inflight", srv.Inflight())
	backstop := 2*timeout + 30*time.Second
	if timeout <= 0 {
		backstop = 5 * time.Minute
	}
	sctx, cancel := context.WithTimeout(context.Background(), backstop)
	defer cancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Flush the disk store only after the HTTP drain: no handler is
	// still writing through, so the final directory fsync makes every
	// committed snapshot durable for the next boot.
	if err := srv.closeStore(); err != nil {
		logger.Warn("disk cache close failed", "err", err)
	}
	logger.Info("drained, exiting")
	return nil
}

func envInt(name string, def int) (int, error) {
	s := os.Getenv(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", name, s, err)
	}
	return v, nil
}

func envUint(name string, def uint64) (uint64, error) {
	s := os.Getenv(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", name, s, err)
	}
	return v, nil
}

func envFloat(name string, def float64) (float64, error) {
	s := os.Getenv(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", name, s, err)
	}
	return v, nil
}

func envDuration(name string, def time.Duration) (time.Duration, error) {
	s := os.Getenv(name)
	if s == "" {
		return def, nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", name, s, err)
	}
	return v, nil
}
