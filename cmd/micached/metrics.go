package main

import (
	"net/http"

	"repro/internal/metrics"
	"repro/internal/persist"
	"repro/internal/resultcache"
)

// handleMetrics exposes the server's operational counters in Prometheus
// text exposition format. Everything here is either an atomic counter
// (metrics.Counter accumulated at event sites) or a gauge read live
// from the server's own state, so the scrape itself costs nothing and
// takes no locks beyond the cache's size accessors.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "GET only"})
		return
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	ms := []metrics.Metric{
		{Name: "micached_run_requests_total", Help: "POST requests reaching /run.",
			Kind: metrics.KindCounter, Value: float64(s.m.runRequests.Load())},
		{Name: "micached_matrix_requests_total", Help: "POST requests reaching /matrix.",
			Kind: metrics.KindCounter, Value: float64(s.m.matrixRequests.Load())},
		{Name: "micached_refused_total", Help: "Requests refused at admission (HTTP 429).",
			Kind: metrics.KindCounter, Value: float64(s.m.refused.Load())},
		{Name: "micached_timeouts_total", Help: "Runs stopped by a server budget (HTTP 504).",
			Kind: metrics.KindCounter, Value: float64(s.m.timeouts.Load())},
		{Name: "micached_errors_total", Help: "Internal failures: panics, deadlocks, build errors (HTTP 500).",
			Kind: metrics.KindCounter, Value: float64(s.m.internalErrors.Load())},
		{Name: "micached_client_gone_total", Help: "Requests whose client disconnected mid-run (HTTP 499).",
			Kind: metrics.KindCounter, Value: float64(s.m.clientGone.Load())},
		{Name: "micached_quarantine_refused_total", Help: "Requests refused because their (workload, variant) is quarantined (HTTP 503).",
			Kind: metrics.KindCounter, Value: float64(s.m.quarantined.Load())},
		{Name: "micached_quarantined_variants", Help: "(workload, variant) tuples currently quarantined after repeated panics.",
			Kind: metrics.KindGauge, Value: float64(s.quar.count())},
		{Name: "micached_queue_depth", Help: "Requests currently waiting for a worker slot.",
			Kind: metrics.KindGauge, Value: float64(s.queued.Load())},
		{Name: "micached_inflight", Help: "Admitted requests currently running.",
			Kind: metrics.KindGauge, Value: float64(s.inflight.Load())},
		{Name: "micached_draining", Help: "1 while the server is draining for shutdown.",
			Kind: metrics.KindGauge, Value: b2f(s.draining.Load())},
	}
	if s.cache != nil {
		hits, misses, evictions := s.cache.Counters()
		ms = append(ms,
			metrics.Metric{Name: "micached_cache_hits_total", Help: "Result-cache hits (including single-flight followers).",
				Kind: metrics.KindCounter, Value: float64(hits)},
			metrics.Metric{Name: "micached_cache_misses_total", Help: "Result-cache misses (simulations actually run).",
				Kind: metrics.KindCounter, Value: float64(misses)},
			metrics.Metric{Name: "micached_cache_evictions_total", Help: "Result-cache entries evicted by the entry or byte bound.",
				Kind: metrics.KindCounter, Value: float64(evictions)},
			metrics.Metric{Name: "micached_cache_entries", Help: "Result-cache resident entries.",
				Kind: metrics.KindGauge, Value: float64(s.cache.Len())},
			metrics.Metric{Name: "micached_cache_bytes", Help: "Result-cache accounted bytes.",
				Kind: metrics.KindGauge, Value: float64(s.cache.Bytes())},
		)
	}
	// Persistent-tier metrics appear once a cache directory is
	// configured, even while the store is still opening (or failed to):
	// dashboards should see zeros and the breaker state, not a gap.
	if s.storeState.Load() != storeNone {
		dh, dm, de := s.cache.DiskCounters()
		ms = append(ms,
			metrics.Metric{Name: "micached_disk_hits_total", Help: "Lookups served from the persistent tier.",
				Kind: metrics.KindCounter, Value: float64(dh)},
			metrics.Metric{Name: "micached_disk_misses_total", Help: "Persistent-tier lookups that missed.",
				Kind: metrics.KindCounter, Value: float64(dm)},
			metrics.Metric{Name: "micached_disk_errors_total", Help: "Persistent-tier operations that returned an error.",
				Kind: metrics.KindCounter, Value: float64(de)},
		)
		var pc persist.Counters
		var entries int
		if st := s.store.Load(); st != nil {
			pc = st.Counters()
			entries = st.Len()
		}
		ms = append(ms,
			metrics.Metric{Name: "micached_persist_corrupt_total", Help: "Snapshot files quarantined as corrupt (checksum, truncation, version, or key mismatch).",
				Kind: metrics.KindCounter, Value: float64(pc.Corrupt)},
			metrics.Metric{Name: "micached_persist_writes_total", Help: "Snapshot files committed to the store.",
				Kind: metrics.KindCounter, Value: float64(pc.Writes)},
			metrics.Metric{Name: "micached_persist_write_errors_total", Help: "Snapshot writes that failed before commit.",
				Kind: metrics.KindCounter, Value: float64(pc.WriteErrors)},
			metrics.Metric{Name: "micached_persist_read_errors_total", Help: "Snapshot reads that failed with an I/O error (not corruption).",
				Kind: metrics.KindCounter, Value: float64(pc.ReadErrors)},
			metrics.Metric{Name: "micached_persist_entries", Help: "Snapshot files indexed by the persistent store.",
				Kind: metrics.KindGauge, Value: float64(entries)},
		)
		var state, trips float64
		if br := s.breaker.Load(); br != nil {
			switch br.State() {
			case resultcache.BreakerOpen:
				state = 1
			case resultcache.BreakerHalfOpen:
				state = 2
			}
			trips = float64(br.Trips())
		}
		ms = append(ms,
			metrics.Metric{Name: "micached_breaker_state", Help: "Disk circuit breaker: 0 closed, 1 open (memory-only), 2 half-open (probing).",
				Kind: metrics.KindGauge, Value: state},
			metrics.Metric{Name: "micached_breaker_trips_total", Help: "Times the disk circuit breaker opened.",
				Kind: metrics.KindCounter, Value: trips},
		)
	}
	built, reused := s.pool.Counts()
	ms = append(ms,
		metrics.Metric{Name: "micached_pool_gets_total", Help: "Systems handed out by the warm pool (built + reused).",
			Kind: metrics.KindCounter, Value: float64(s.pool.Gets())},
		metrics.Metric{Name: "micached_pool_puts_total", Help: "Systems returned to the warm pool (and reset).",
			Kind: metrics.KindCounter, Value: float64(s.pool.Puts())},
		metrics.Metric{Name: "micached_pool_built_total", Help: "Systems constructed from scratch by the pool.",
			Kind: metrics.KindCounter, Value: float64(built)},
		metrics.Metric{Name: "micached_pool_reused_total", Help: "Pool gets served by a recycled warm system.",
			Kind: metrics.KindCounter, Value: float64(reused)},
	)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteText(w, ms)
}
