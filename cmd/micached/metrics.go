package main

import (
	"net/http"

	"repro/internal/metrics"
)

// handleMetrics exposes the server's operational counters in Prometheus
// text exposition format. Everything here is either an atomic counter
// (metrics.Counter accumulated at event sites) or a gauge read live
// from the server's own state, so the scrape itself costs nothing and
// takes no locks beyond the cache's size accessors.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errResponse{Error: "GET only"})
		return
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	ms := []metrics.Metric{
		{Name: "micached_run_requests_total", Help: "POST requests reaching /run.",
			Kind: metrics.KindCounter, Value: float64(s.m.runRequests.Load())},
		{Name: "micached_matrix_requests_total", Help: "POST requests reaching /matrix.",
			Kind: metrics.KindCounter, Value: float64(s.m.matrixRequests.Load())},
		{Name: "micached_refused_total", Help: "Requests refused at admission (HTTP 429).",
			Kind: metrics.KindCounter, Value: float64(s.m.refused.Load())},
		{Name: "micached_timeouts_total", Help: "Runs stopped by a server budget (HTTP 504).",
			Kind: metrics.KindCounter, Value: float64(s.m.timeouts.Load())},
		{Name: "micached_errors_total", Help: "Internal failures: panics, deadlocks, build errors (HTTP 500).",
			Kind: metrics.KindCounter, Value: float64(s.m.internalErrors.Load())},
		{Name: "micached_client_gone_total", Help: "Requests whose client disconnected mid-run (HTTP 499).",
			Kind: metrics.KindCounter, Value: float64(s.m.clientGone.Load())},
		{Name: "micached_queue_depth", Help: "Requests currently waiting for a worker slot.",
			Kind: metrics.KindGauge, Value: float64(s.queued.Load())},
		{Name: "micached_inflight", Help: "Admitted requests currently running.",
			Kind: metrics.KindGauge, Value: float64(s.inflight.Load())},
		{Name: "micached_draining", Help: "1 while the server is draining for shutdown.",
			Kind: metrics.KindGauge, Value: b2f(s.draining.Load())},
	}
	if s.cache != nil {
		hits, misses, evictions := s.cache.Counters()
		ms = append(ms,
			metrics.Metric{Name: "micached_cache_hits_total", Help: "Result-cache hits (including single-flight followers).",
				Kind: metrics.KindCounter, Value: float64(hits)},
			metrics.Metric{Name: "micached_cache_misses_total", Help: "Result-cache misses (simulations actually run).",
				Kind: metrics.KindCounter, Value: float64(misses)},
			metrics.Metric{Name: "micached_cache_evictions_total", Help: "Result-cache entries evicted by the entry or byte bound.",
				Kind: metrics.KindCounter, Value: float64(evictions)},
			metrics.Metric{Name: "micached_cache_entries", Help: "Result-cache resident entries.",
				Kind: metrics.KindGauge, Value: float64(s.cache.Len())},
			metrics.Metric{Name: "micached_cache_bytes", Help: "Result-cache accounted bytes.",
				Kind: metrics.KindGauge, Value: float64(s.cache.Bytes())},
		)
	}
	built, reused := s.pool.Counts()
	ms = append(ms,
		metrics.Metric{Name: "micached_pool_gets_total", Help: "Systems handed out by the warm pool (built + reused).",
			Kind: metrics.KindCounter, Value: float64(s.pool.Gets())},
		metrics.Metric{Name: "micached_pool_puts_total", Help: "Systems returned to the warm pool (and reset).",
			Kind: metrics.KindCounter, Value: float64(s.pool.Puts())},
		metrics.Metric{Name: "micached_pool_built_total", Help: "Systems constructed from scratch by the pool.",
			Kind: metrics.KindCounter, Value: float64(built)},
		metrics.Metric{Name: "micached_pool_reused_total", Help: "Pool gets served by a recycled warm system.",
			Kind: metrics.KindCounter, Value: float64(reused)},
	)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteText(w, ms)
}
