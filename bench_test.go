// Package repro_test is the benchmark harness: one benchmark per paper
// table and figure (Tables 1–2, Figures 4–13), plus ablation benchmarks
// for the design choices called out in DESIGN.md §6.
//
// The figure benchmarks share two simulation matrices (static policies
// and the full variant set) computed once per `go test -bench` process at
// a reduced scale; each benchmark then reports its figure's headline
// numbers as custom metrics. Use cmd/micache for full-scale runs and
// printed tables.
package repro_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/event"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// cachePortFunc adapts a func to cache.Port for microbenchmarks.
type cachePortFunc func(*mem.Request)

func (f cachePortFunc) Submit(r *mem.Request) { f(r) }

// newBenchCache builds a small cache instance for hit-path benchmarks.
func newBenchCache(sim *event.Sim, lower cache.Port) *cache.Cache {
	return cache.New(cache.Config{
		Name: "bench", Sets: 64, Ways: 8,
		HitLatency: 4, LookupLatency: 1, FillLatency: 1,
		MSHRs: 16, BypassEntries: 32, PortsPerCycle: 4,
	}, sim, lower)
}

// benchScale keeps whole-matrix benchmarks in the tens of seconds.
const benchScale = workloads.Scale(0.15)

func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.GPU.CUs = 32
	cfg.L2.SizeBytes = 1 << 20 // keep footprint:capacity regimes at benchScale
	return cfg
}

var (
	staticOnce sync.Once
	staticM    *core.Matrix
	allOnce    sync.Once
	allM       *core.Matrix
)

func staticMatrix(b *testing.B) *core.Matrix {
	b.Helper()
	staticOnce.Do(func() {
		// Built through the parallel path (Workers=0 → GOMAXPROCS);
		// results are deterministic regardless of worker count.
		rs, err := core.RunMatrix(benchConfig(), core.StaticVariants(), workloads.All(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		staticM = core.NewMatrix(rs)
	})
	if staticM == nil {
		b.Fatal("static matrix unavailable")
	}
	return staticM
}

func allMatrix(b *testing.B) *core.Matrix {
	b.Helper()
	allOnce.Do(func() {
		rs, err := core.RunMatrix(benchConfig(), core.AllVariants(), workloads.All(), benchScale)
		if err != nil {
			b.Fatal(err)
		}
		allM = core.NewMatrix(rs)
	})
	if allM == nil {
		b.Fatal("full matrix unavailable")
	}
	return allM
}

// renderFig regenerates figure n from matrix m on every iteration and
// reports the named per-workload values as metrics.
func renderFig(b *testing.B, m *core.Matrix, n int, metrics map[string][2]string) {
	cfg := benchConfig()
	figs := report.Figures(cfg.GPUClockMHz)
	fig := figs[n]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report.RenderFigure(io.Discard, fig, m, false)
	}
	b.StopTimer()
	for name, wc := range metrics {
		b.ReportMetric(fig.Value(m, wc[0], wc[1]), name)
	}
}

// --- Tables ---

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		report.RenderTable1(io.Discard, cfg)
	}
}

func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report.RenderTable2(io.Discard, benchScale)
	}
	b.ReportMetric(float64(len(workloads.All())), "workloads")
}

// --- Figures 4–5: bandwidth characterization (CacheR) ---

func BenchmarkFig4GVOPS(b *testing.B) {
	m := staticMatrix(b)
	renderFig(b, m, 4, map[string][2]string{
		"SGEMM_gvops": {"SGEMM", "CacheR"},
		"FwAct_gvops": {"FwAct", "CacheR"},
	})
}

func BenchmarkFig5GMRs(b *testing.B) {
	m := staticMatrix(b)
	renderFig(b, m, 5, map[string][2]string{
		"FwAct_gmrs":  {"FwAct", "CacheR"},
		"FwSoft_gmrs": {"FwSoft", "CacheR"},
	})
}

// --- Figures 6–9: static policy comparison ---

func BenchmarkFig6ExecTime(b *testing.B) {
	m := staticMatrix(b)
	renderFig(b, m, 6, map[string][2]string{
		"FwAct_CacheR_norm":  {"FwAct", "CacheR"},
		"BwBN_CacheRW_norm":  {"BwBN", "CacheRW"},
		"SGEMM_CacheRW_norm": {"SGEMM", "CacheRW"},
	})
}

func BenchmarkFig7MemDemand(b *testing.B) {
	m := staticMatrix(b)
	renderFig(b, m, 7, map[string][2]string{
		"FwFc_CacheR_demand":  {"FwFc", "CacheR"},
		"FwAct_CacheR_demand": {"FwAct", "CacheR"},
	})
}

func BenchmarkFig8CacheStalls(b *testing.B) {
	m := staticMatrix(b)
	renderFig(b, m, 8, map[string][2]string{
		"FwAct_Uncached_stalls": {"FwAct", "Uncached"},
		"FwAct_CacheRW_stalls":  {"FwAct", "CacheRW"},
	})
}

func BenchmarkFig9RowHits(b *testing.B) {
	m := staticMatrix(b)
	renderFig(b, m, 9, map[string][2]string{
		"FwAct_Uncached_rowhit": {"FwAct", "Uncached"},
		"FwAct_CacheRW_rowhit":  {"FwAct", "CacheRW"},
	})
}

// --- Figures 10–13: optimization stack ---

func BenchmarkFig10Optimizations(b *testing.B) {
	m := allMatrix(b)
	renderFig(b, m, 10, map[string][2]string{
		"FwAct_PCby_vs_best": {"FwAct", "CacheRW-PCby"},
		"BwBN_PCby_vs_best":  {"BwBN", "CacheRW-PCby"},
	})
}

func BenchmarkFig11OptMemDemand(b *testing.B) {
	m := allMatrix(b)
	renderFig(b, m, 11, map[string][2]string{
		"FwFc_PCby_demand": {"FwFc", "CacheRW-PCby"},
	})
}

func BenchmarkFig12OptStalls(b *testing.B) {
	m := allMatrix(b)
	renderFig(b, m, 12, map[string][2]string{
		"FwAct_AB_stalls": {"FwAct", "CacheRW-AB"},
	})
}

func BenchmarkFig13OptRowHits(b *testing.B) {
	m := allMatrix(b)
	renderFig(b, m, 13, map[string][2]string{
		"BwAct_CR_rowhit": {"BwAct", "CacheRW-CR"},
	})
}

// --- Matrix throughput ---

// matrixBenchSpecs is a small spec subset so per-iteration matrix runs
// stay around a second.
func matrixBenchSpecs(b *testing.B) []workloads.Spec {
	b.Helper()
	var specs []workloads.Spec
	for _, name := range []string{"FwSoft", "BwSoft", "FwPool", "BwPool"} {
		s, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

// BenchmarkRunMatrixSequential is the Workers=1 reference for the
// parallel speedup trajectory.
func BenchmarkRunMatrixSequential(b *testing.B) {
	cfg := benchConfig()
	specs := matrixBenchSpecs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunMatrixWith(cfg, core.StaticVariants(), specs, benchScale,
			core.RunMatrixOpts{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunMatrixParallel runs the same matrix across GOMAXPROCS
// workers with a persistent SystemPool, the configuration a sweep or
// long-lived harness would use: after the first iteration warms the
// pool, cells run on reset systems and system construction disappears
// from the profile. On multicore hosts ns/op should approach the
// sequential time divided by the core count.
func BenchmarkRunMatrixParallel(b *testing.B) {
	cfg := benchConfig()
	specs := matrixBenchSpecs(b)
	pool := core.NewSystemPool(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunMatrixWith(cfg, core.StaticVariants(), specs, benchScale,
			core.RunMatrixOpts{Pool: pool}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunMatrixWorkers sweeps the worker count on a pooled matrix,
// exposing the scaling curve of the lock-free aggregation path: with
// per-worker totals slabs and slot-array results there is no shared
// write on the per-cell path, so on multicore hosts ns/op should fall
// near-linearly until the matrix runs out of cells or the host out of
// cores. (On a single-core host all counts collapse to the sequential
// time.)
func BenchmarkRunMatrixWorkers(b *testing.B) {
	cfg := benchConfig()
	specs := matrixBenchSpecs(b)
	for _, workers := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			pool := core.NewSystemPool(cfg)
			var tot stats.Snapshot
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunMatrixWith(cfg, core.StaticVariants(), specs, benchScale,
					core.RunMatrixOpts{Workers: workers, Pool: pool, TotalsOut: &tot}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tot.Cycles), "sim_cycles")
		})
	}
}

// BenchmarkRunMatrixTiles sweeps the new topology axis: the same pooled
// matrix on a monolithic system and on 2- and 4-tile crossbar systems.
// The tiles=1 case must track BenchmarkRunMatrixParallel (the lowering
// is zero-cost); the multi-tile counts expose the NoC's per-hop event
// overhead and the sliced-L2 hit-rate shift on identical work.
func BenchmarkRunMatrixTiles(b *testing.B) {
	specs := matrixBenchSpecs(b)
	for _, tiles := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("tiles=%d", tiles), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Topology.Tiles = tiles
			pool := core.NewSystemPool(cfg)
			var tot stats.Snapshot
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunMatrixWith(cfg, core.StaticVariants(), specs, benchScale,
					core.RunMatrixOpts{Pool: pool, TotalsOut: &tot}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tot.Cycles), "sim_cycles")
		})
	}
}

// BenchmarkRunMatrixParallelColdStart is the no-shared-pool reference:
// every iteration uses a transient pool scoped to the call, so each
// variant's first cell pays full system construction. The allocs/op gap
// to BenchmarkRunMatrixParallel is the cold-start cost the pool removes.
func BenchmarkRunMatrixParallelColdStart(b *testing.B) {
	cfg := benchConfig()
	specs := matrixBenchSpecs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunMatrixWith(cfg, core.StaticVariants(), specs, benchScale,
			core.RunMatrixOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- System lifecycle (cold construction vs pooled reset) ---

// BenchmarkNewSystem pins the cold-start cost of building one fully
// wired system — the price every matrix cell used to pay, and the one
// BenchmarkSystemReset shows the pool avoiding.
func BenchmarkNewSystem(b *testing.B) {
	cfg := benchConfig()
	v, err := core.VariantByLabel("CacheRW-PCby")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewSystem(cfg, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemReset pins the cost of returning a used system to its
// cold state. The contract is zero allocations: Reset only clears and
// truncates what construction and the run already allocated.
func BenchmarkSystemReset(b *testing.B) {
	cfg := benchConfig()
	v, err := core.VariantByLabel("CacheRW-PCby")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, v)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		b.Fatal(err)
	}
	sys.Run(spec.Build(benchScale))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset()
	}
}

// BenchmarkSystemResetRun measures one full pooled cell — reset plus
// re-run — for direct comparison with BenchmarkEndToEndSmallWorkload
// (which builds a fresh system per run).
func BenchmarkSystemResetRun(b *testing.B) {
	cfg := benchConfig()
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, v)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		b.Fatal(err)
	}
	w := spec.Build(benchScale)
	sys.Run(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset()
		sys.Run(w)
	}
}

// --- Single-cell benchmarks (intra-cell parallelism) ---

// BenchmarkRunOneCell pins the cost of one hot simulation cell — the
// unit the partitioned engine tries to speed up. Two sizes: the paper's
// CM workload at scale 0.3 on the full Table 1 machine (the realistic
// hot cell; CM's conv GEMM dims are scale-insensitive, so it stays a
// multi-second cell), and a CI-sized FwSoft cell on the reduced bench
// machine that keeps the bench-smoke workflow's iteration sub-second.
func BenchmarkRunOneCell(b *testing.B) {
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		workload string
		cfg      core.Config
		scale    workloads.Scale
	}{
		{"CM-0.3", "CM", core.DefaultConfig(), 0.3},
		{"FwSoft-ci", "FwSoft", benchConfig(), benchScale},
	} {
		b.Run(tc.name, func(b *testing.B) {
			spec, err := workloads.ByName(tc.workload)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := core.NewSystem(tc.cfg, v)
			if err != nil {
				b.Fatal(err)
			}
			w := spec.Build(tc.scale)
			sys.Run(w) // warm capacities so the loop is steady-state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Reset()
				if _, err := sys.Run(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunOneCellWorkers runs the CI-sized cell under CellWorkers ∈
// {1, 2, 4} for a direct sequential-vs-partitioned comparison. Note the
// current partitioned engine fires events in exact global order (the
// byte-identity contract), so workers > 1 measures rotation overhead,
// not speedup — see the intra-cell parallelism section in README.md.
func BenchmarkRunOneCellWorkers(b *testing.B) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		b.Fatal(err)
	}
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		b.Fatal(err)
	}
	w := spec.Build(benchScale)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sys, err := core.NewSystemWorkers(benchConfig(), v, workers)
			if err != nil {
				b.Fatal(err)
			}
			sys.Run(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Reset()
				if _, err := sys.Run(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Component microbenchmarks (simulator throughput) ---
//
// These track the zero-allocation hot-path contract: the event engine
// must not allocate per event, and the cache hit path must not allocate
// beyond the caller's own request object. Run with -benchmem; a rise in
// allocs/op here is a regression.

func BenchmarkEventEngine(b *testing.B) {
	sim := event.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			sim.Schedule(1, tick)
		}
	}
	b.ReportAllocs()
	sim.Schedule(1, tick)
	sim.Run()
}

// BenchmarkEventEngineMixed exercises the heap with a fan of pending
// events rather than a single chain, so sift costs at realistic queue
// depths show up in the trajectory.
func BenchmarkEventEngineMixed(b *testing.B) {
	sim := event.New()
	const fan = 256
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			// Vary the delay so events interleave across cycles.
			sim.Schedule(event.Cycle(n%7+1), tick)
		}
	}
	b.ReportAllocs()
	for i := 0; i < fan && i < b.N; i++ {
		n++
		sim.Schedule(event.Cycle(i%13+1), tick)
	}
	sim.Run()
}

func BenchmarkCacheHitPath(b *testing.B) {
	// Steady-state hit throughput of one cache instance. The single
	// alloc/op is the benchmark's own request literal; the cache side
	// is allocation-free.
	sim := event.New()
	sink := cachePortFunc(func(r *mem.Request) {
		if r.Done != nil {
			sim.Schedule(10, r.Done)
		}
	})
	c := newBenchCache(sim, sink)
	c.Submit(&mem.Request{ID: 1, Line: 0x1000, Kind: mem.Load})
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Submit(&mem.Request{ID: uint64(i), Line: 0x1000, Kind: mem.Load})
		sim.Run()
	}
}

// BenchmarkCacheHitPathSteady reuses one request object across
// iterations, exposing the cache's own allocation count (target: zero).
func BenchmarkCacheHitPathSteady(b *testing.B) {
	sim := event.New()
	sink := cachePortFunc(func(r *mem.Request) {
		if r.Done != nil {
			sim.Schedule(10, r.Done)
		}
	})
	c := newBenchCache(sim, sink)
	req := &mem.Request{ID: 1, Line: 0x1000, Kind: mem.Load}
	c.Submit(req)
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.ID = uint64(i)
		c.Submit(req)
		sim.Run()
	}
}

func BenchmarkDRAMStream(b *testing.B) {
	sim := event.New()
	d := dram.New(dram.Default(), sim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(&mem.Request{ID: uint64(i), Line: mem.Addr(i * mem.LineSize), Kind: mem.Load})
		if i%256 == 255 {
			sim.Run()
		}
	}
	sim.Run()
}

func BenchmarkEndToEndSmallWorkload(b *testing.B) {
	spec, err := workloads.ByName("FwSoft")
	if err != nil {
		b.Fatal(err)
	}
	v, err := core.VariantByLabel("CacheRW")
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunOne(cfg, v, spec, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}
