package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Ablation benchmarks quantify the design choices DESIGN.md §6 calls out.
// Each sub-benchmark runs a full simulation per iteration and reports the
// simulated execution time, so the effect of the knob is visible directly
// in the metric column.

func ablate(b *testing.B, cfg core.Config, workload, variant string) {
	b.Helper()
	spec, err := workloads.ByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	v, err := core.VariantByLabel(variant)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		r, err := core.RunOne(cfg, v, spec, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Snap.Cycles
	}
	b.ReportMetric(float64(cycles), "sim_cycles")
}

// BenchmarkAblationMLP varies the per-wavefront outstanding-request limit:
// the latency-hiding knob that determines how much memory-level
// parallelism hides DRAM latency on the streaming workloads.
func BenchmarkAblationMLP(b *testing.B) {
	for _, mlp := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("mlp=%d", mlp), func(b *testing.B) {
			cfg := benchConfig()
			cfg.GPU.MLPLimit = mlp
			ablate(b, cfg, "FwAct", "Uncached")
		})
	}
}

// BenchmarkAblationL1Sets varies L1 set count at constant capacity: the
// 16-set geometry of Table 1 is why streaming fills block allocation; more
// sets spread pending fills and reduce stalls.
func BenchmarkAblationL1Sets(b *testing.B) {
	for _, ways := range []int{16, 8, 4} {
		sets := (16 << 10) / 64 / ways
		b.Run(fmt.Sprintf("sets=%d", sets), func(b *testing.B) {
			cfg := benchConfig()
			cfg.L1.Ways = ways
			ablate(b, cfg, "FwAct", "CacheR")
		})
	}
}

// BenchmarkAblationFRFCFS varies the memory scheduler's row-hit search
// depth: lookahead 1 degenerates to FCFS and loses the row locality that
// FR-FCFS recovers from interleaved wavefront streams.
func BenchmarkAblationFRFCFS(b *testing.B) {
	for _, look := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("lookahead=%d", look), func(b *testing.B) {
			cfg := benchConfig()
			cfg.DRAM.Lookahead = look
			ablate(b, cfg, "FwAct", "Uncached")
		})
	}
}

// BenchmarkAblationPCby varies the predictor's bypass threshold: 0 never
// bypasses, high thresholds bypass aggressively and give up reuse.
func BenchmarkAblationPCby(b *testing.B) {
	for _, thr := range []int8{0, 2, 5} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Predictor.Threshold = thr
			ablate(b, cfg, "FwPool", "CacheRW-PCby")
		})
	}
}

// BenchmarkAblationRinse varies the dirty-block-index capacity: a small
// index forgets rows and loses rinse opportunities.
func BenchmarkAblationRinse(b *testing.B) {
	for _, rows := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			cfg := benchConfig()
			cfg.RinserRows = rows
			ablate(b, cfg, "BwPool", "CacheRW-CR")
		})
	}
}

// BenchmarkAblationInterleave varies the channel interleave granularity:
// line-granularity interleaving shreds per-wavefront spatial locality at
// the row buffers.
func BenchmarkAblationInterleave(b *testing.B) {
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("lines=%d", g), func(b *testing.B) {
			cfg := benchConfig()
			cfg.DRAM.InterleaveLines = g
			ablate(b, cfg, "FwAct", "Uncached")
		})
	}
}
