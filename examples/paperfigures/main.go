// Paperfigures: regenerate every table and figure of the paper's
// evaluation in one run (equivalent to `micache -all`), at a reduced
// scale by default so it completes quickly.
//
//	go run ./examples/paperfigures [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload size multiplier")
	flag.Parse()

	cfg := core.DefaultConfig()
	sc := workloads.Scale(*scale)

	report.RenderTable1(os.Stdout, cfg)
	report.RenderTable2(os.Stdout, sc)

	start := time.Now()
	results, err := core.RunMatrix(cfg, core.AllVariants(), workloads.All(), sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(%d simulations in %v)\n\n", len(results), time.Since(start).Round(time.Millisecond))

	m := core.NewMatrix(results)
	figs := report.Figures(cfg.GPUClockMHz)
	for n := 4; n <= 13; n++ {
		report.RenderFigure(os.Stdout, figs[n], m, false)
	}
}
