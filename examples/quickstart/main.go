// Quickstart: build the Table 1 APU, run one MI workload under one cache
// policy, and print the statistics the paper's figures are made of.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	// The default configuration is the paper's Table 1 system: a 64-CU
	// GPU at 1.6 GHz with 16 KB L1s, a 4 MB shared L2 and 16-channel
	// HBM2, coherently coupled through a directory.
	cfg := core.DefaultConfig()

	// Pick a workload from Table 2 and a caching policy.
	spec, err := workloads.ByName("FwFc")
	if err != nil {
		log.Fatal(err)
	}
	variant, err := core.VariantByLabel("CacheRW")
	if err != nil {
		log.Fatal(err)
	}

	// Run at a reduced scale so the quickstart finishes in seconds.
	result, err := core.RunOne(cfg, variant, spec, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	s := result.Snap
	fmt.Printf("%s under %s\n", result.Workload, result.Variant)
	fmt.Printf("  execution time: %d cycles (%.3f ms at %.0f MHz)\n",
		s.Cycles, float64(s.Cycles)/(cfg.GPUClockMHz*1e3), cfg.GPUClockMHz)
	fmt.Printf("  compute bandwidth: %.0f GVOPS\n", s.GVOPS(cfg.GPUClockMHz))
	fmt.Printf("  memory requests:   %.2f GMR/s\n", s.GMRs(cfg.GPUClockMHz))
	fmt.Printf("  DRAM accesses:     %d (row hit rate %.1f%%)\n",
		s.DRAM.Accesses(), 100*s.DRAM.RowHitRate())
	fmt.Printf("  L1 hit rate %.1f%%, L2 hit rate %.1f%%\n",
		100*s.L1.HitRate(), 100*s.L2.HitRate())
	fmt.Printf("  cache stalls per request: %.3f\n", s.StallsPerRequest())
}
