// Policysweep: reproduce the paper's core observation — there is no
// one-size-fits-all GPU caching policy — by sweeping all three static
// policies over one workload from each sensitivity class and printing a
// Figure 6-style comparison.
//
//	go run ./examples/policysweep [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload size multiplier")
	flag.Parse()

	cfg := core.DefaultConfig()

	// One representative per class (Section VI.A).
	var picks []workloads.Spec
	for _, name := range []string{"SGEMM", "FwFc", "FwAct"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		picks = append(picks, spec)
	}

	results, err := core.RunMatrix(cfg, core.StaticVariants(), picks,
		workloads.Scale(*scale))
	if err != nil {
		log.Fatal(err)
	}
	m := core.NewMatrix(results)

	headers := []string{"Workload", "Class", "Uncached", "CacheR", "CacheRW", "Best policy"}
	var rows [][]string
	for _, spec := range picks {
		base := m.MustGet(spec.Name, "Uncached").Snap.Cycles
		best, _ := m.StaticBest(spec.Name)
		row := []string{spec.Name, spec.Class.String()}
		for _, v := range core.StaticVariants() {
			c := m.MustGet(spec.Name, v.Label).Snap.Cycles
			row = append(row, fmt.Sprintf("%.3f", float64(c)/float64(base)))
		}
		row = append(row, best)
		rows = append(rows, row)
	}
	report.Table(os.Stdout, "Execution time normalized to Uncached (cf. Figure 6)", headers, rows)
	fmt.Println("\nNote how the best static policy differs per class — the paper's",
		"motivation for adaptive caching (Section VII).")
}
