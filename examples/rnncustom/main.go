// Rnncustom: build custom RNN workloads with the public kernel API — the
// DeepBench-style configurability the paper describes (Section V.C:
// "highly configurable ... many different sequence lengths, hidden layer
// sizes, and batch sizes") — and measure how the CacheRW benefit grows
// when a backward pass consumes forward-saved state.
//
//	go run ./examples/rnncustom
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	cfg := core.DefaultConfig()

	// Sweep hidden-layer sizes via the Scale knob (hidden size scales
	// with it; see internal/workloads/rnn.go).
	scales := []workloads.Scale{0.5, 1.0, 2.0}
	headers := []string{"Workload", "Scale", "Uncached", "CacheR", "CacheRW", "CacheRW speedup"}
	var rows [][]string

	for _, name := range []string{"FwLSTM", "FwBwLSTM"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, sc := range scales {
			results, err := core.RunMatrix(cfg, core.StaticVariants(),
				[]workloads.Spec{spec}, sc)
			if err != nil {
				log.Fatal(err)
			}
			m := core.NewMatrix(results)
			base := m.MustGet(name, "Uncached").Snap.Cycles
			rw := m.MustGet(name, "CacheRW").Snap.Cycles
			row := []string{name, fmt.Sprintf("%.1f", float64(sc))}
			for _, v := range core.StaticVariants() {
				c := m.MustGet(name, v.Label).Snap.Cycles
				row = append(row, fmt.Sprintf("%.3f", float64(c)/float64(base)))
			}
			row = append(row, fmt.Sprintf("%.1f%%", 100*(1-float64(rw)/float64(base))))
			rows = append(rows, row)
		}
	}
	report.Table(os.Stdout,
		"RNN cache-policy sensitivity across model sizes (normalized to Uncached)",
		headers, rows)
	fmt.Println("\nThe forward+backward variants benefit most from CacheRW: the",
		"backward pass reads gate activations the forward pass left dirty in the L2.")
}
